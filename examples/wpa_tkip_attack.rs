//! End-to-end WPA-TKIP attack demo (Section 5).
//!
//! Builds a real TKIP network in software (temporal key, MIC key, per-packet
//! key mixing, Michael, ICV), injects identical TCP packets, captures the
//! encrypted copies, and runs the MIC-key recovery attack. The keystream model
//! used for the likelihoods is the synthetic per-TSC model (see DESIGN.md,
//! substitution #2) so the demo finishes in seconds; swap in
//! `TkipTrafficModel::Empirical` via the fig8 experiment for the faithful path.
//!
//! ```text
//! cargo run --release --example wpa_tkip_attack
//! ```

use crypto_prims::michael::MichaelKey;
use rc4_attacks::experiments::fig8::{run, Fig8Config, TkipTrafficModel};
use wpa_tkip::{
    injection::{InjectionConfig, InjectionSimulator},
    mpdu::{decapsulate, encapsulate, FrameAddressing},
    net::{build_tcp_msdu, Ipv4Header, TcpHeader},
    Tsc,
};

fn main() {
    println!("== 1. Build the injected TCP packet (LLC/SNAP + IPv4 + TCP + 7-byte payload) ==");
    let ip = Ipv4Header::tcp([192, 168, 1, 7], [203, 0, 113, 10], 7, 64);
    let tcp = TcpHeader {
        src_port: 52311,
        dst_port: 80,
        seq: 0x1000_0000,
        ack: 0x2000_0000,
        flags: 0x18,
        window: 29200,
    };
    let msdu = build_tcp_msdu(&ip, &tcp, b"ATTACK!");
    println!(
        "MSDU is {} bytes; the MIC/ICV trailer therefore sits at keystream positions {}..{} — \
         the strongly biased region the paper selects with the 7-byte payload",
        msdu.len(),
        msdu.len() + 1,
        msdu.len() + 12
    );

    println!("\n== 2. TKIP encapsulation round-trip on a software network ==");
    let tk = [0xA5u8; 16];
    let mic_key = MichaelKey {
        l: 0x1234_5678,
        r: 0x9ABC_DEF0,
    };
    let addressing = FrameAddressing {
        dst: [0x00, 0x0c, 0x29, 0x11, 0x22, 0x33],
        src: [0x00, 0x0c, 0x29, 0x44, 0x55, 0x66],
        transmitter: [0x00, 0x0c, 0x29, 0x44, 0x55, 0x66],
        priority: 0,
    };
    let mpdu = encapsulate(&tk, mic_key, &addressing, Tsc(1), &msdu);
    let plain = decapsulate(&tk, mic_key, &addressing, &mpdu).expect("round trip");
    assert_eq!(plain, msdu);
    println!(
        "encapsulate/decapsulate round-trips; ciphertext is {} bytes",
        mpdu.ciphertext.len()
    );

    println!("\n== 3. Injection / capture simulation ==");
    let mut sim = InjectionSimulator::new(
        tk,
        mic_key,
        addressing,
        msdu.clone(),
        InjectionConfig::default(),
    )
    .expect("valid config");
    let captures = sim.capture(2_000);
    println!(
        "captured {} unique encrypted copies (the live attack gathers ~9.5 * 2^20 in about {:.1} hours at 2500 pkt/s)",
        captures.len(),
        sim.seconds_for((9.5 * (1u64 << 20) as f64) as u64) / 3600.0
    );

    println!("\n== 4. MIC-key recovery sweep (Fig. 8 / Fig. 9 shape) ==");
    let config = Fig8Config {
        capture_counts: vec![1 << 11, 1 << 13, 1 << 15],
        trials: 8,
        max_candidates: 1 << 14,
        payload_len: msdu.len(),
        model: TkipTrafficModel::Synthetic { relative_bias: 0.5 },
        seed: 0xDE30,
    };
    match run(&config) {
        Ok((points, report)) => {
            print!("{}", report.render());
            if let Some(best) = points.last() {
                println!(
                    "\nAt {} captures the MIC key is recovered in {:.0}% of trials; \
                     with the key an attacker can inject and decrypt packets (Sect. 5).",
                    best.captures,
                    best.success_full_list * 100.0
                );
            }
        }
        Err(e) => eprintln!("attack sweep failed: {e}"),
    }
}
