//! End-to-end WPA-TKIP attack demo (Section 5), driven through the
//! experiment registry.
//!
//! The attack itself lives in the registered `tkip-attack` experiment
//! (`rc4_attacks::experiments::tkip_attack`): build the injected TCP packet,
//! round-trip it through real TKIP encapsulation, sniff encrypted copies,
//! recover the MIC key statistically and forge packets with it. This demo
//! shows the registry workflow — instantiate by name, override the config,
//! watch progress on stderr — which is exactly what `repro run tkip-attack`
//! does.
//!
//! ```text
//! cargo run --release --example wpa_tkip_attack
//! ```

use std::sync::Arc;

use rc4_attacks::{
    context::StderrSink,
    experiments::{tkip_attack::TkipAttackConfig, Scale},
    ExperimentContext, Registry,
};
use serde::Serialize;

fn main() {
    let registry = Registry::with_defaults();
    let mut experiment = registry
        .create("tkip-attack")
        .expect("tkip-attack is a built-in experiment");
    println!("{} — {}\n", experiment.name(), experiment.summary());

    // Install a complete config derived from the quick preset (configs are
    // replaced wholesale, never merged) — the same override mechanism
    // `repro run --config file.json` uses.
    let config = TkipAttackConfig {
        captures: 8_192,
        trials: 8,
        relative_bias: 0.9,
        ..TkipAttackConfig::for_scale(Scale::Quick)
    };
    experiment
        .set_config_value(&config.to_value())
        .expect("hand-built config is valid");
    println!("config:\n{}\n", experiment.config_json());

    let ctx = ExperimentContext::new().with_sink(Arc::new(StderrSink));
    match experiment.run(&ctx) {
        Ok(report) => {
            print!("{}", report.render());
            println!(
                "\nWith the recovered MIC key an attacker can inject and decrypt \
                 arbitrary packets towards the client (Sect. 5); `repro run \
                 tkip-attack --scale laptop` runs the faithful larger sweep."
            );
        }
        Err(e) => eprintln!("attack failed: {e}"),
    }
}
