//! Bias hunting: reproduce (at laptop scale) the Section-3 methodology —
//! generate keystream datasets, run the hypothesis tests, and print the
//! Table 1 / Fig. 4 / Fig. 5 / Fig. 6 style reports.
//!
//! Run with (scale optional: quick | laptop | extended):
//!
//! ```text
//! cargo run --release --example bias_hunting -- laptop
//! ```

use rc4_attacks::experiments::{
    biases::{
        eq345_equalities, fig4_fm_shortterm, fig5_z1z2, fig6_single_byte, longterm_aligned,
        table1_fm_longterm, table2_new_biases, BiasScale,
    },
    Scale,
};

fn scale_from_args() -> (Scale, BiasScale) {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "quick".to_string());
    let scale = Scale::parse(&name).unwrap_or_else(|| {
        eprintln!("unknown scale '{name}' (expected quick | laptop | extended)");
        std::process::exit(2);
    });
    let bias_scale = match scale {
        Scale::Quick => BiasScale::quick(),
        Scale::Laptop => BiasScale::default(),
        Scale::Extended => BiasScale {
            keys: 1 << 25,
            longterm_keys: 1 << 10,
            longterm_block: 1 << 18,
            ..BiasScale::default()
        },
    };
    (scale, bias_scale)
}

fn main() {
    let (scale, bias_scale) = scale_from_args();
    println!("bias hunt at {scale:?} scale: {bias_scale:?}\n");

    let reports = [
        table1_fm_longterm(&bias_scale),
        fig4_fm_shortterm(&bias_scale, &[1, 2, 5, 17, 64, 130, 257]),
        table2_new_biases(&bias_scale),
        eq345_equalities(&bias_scale),
        fig5_z1z2(&bias_scale, &[4, 16, 32, 64, 128, 256]),
        fig6_single_byte(&bias_scale),
        longterm_aligned(&bias_scale),
    ];
    for report in reports {
        match report {
            Ok(r) => println!("{}", r.render()),
            Err(e) => eprintln!("experiment failed: {e}"),
        }
    }
    println!("Note: weaker biases need more keys to reach significance; run with `extended`");
    println!("or use the `repro` binary (crates/bench) for the full regeneration sweep.");
}
