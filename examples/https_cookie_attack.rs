//! End-to-end HTTPS cookie attack demo (Section 6), driven through the
//! experiment registry.
//!
//! The attack itself lives in the registered `tls-cookie` experiment
//! (`rc4_attacks::experiments::tls_cookie`): build the manipulated request of
//! Listing 3, capture encrypted copies over real TLS RC4-SHA1 connections,
//! accumulate FM + ABSAB statistics and brute-force the ranked candidate
//! list. Real biases need ~2^30 captures for a hit, so this demo pairs the
//! end-to-end pipeline with the `fig10` experiment, whose sampled mode shows
//! the success curve at paper-scale request counts.
//!
//! ```text
//! cargo run --release --example https_cookie_attack
//! ```

use std::sync::Arc;

use rc4_attacks::{
    context::StderrSink,
    experiments::{fig10::Fig10Config, tls_cookie::TlsCookieConfig, Scale},
    ExperimentContext, Registry,
};
use serde::Serialize;

fn main() {
    let registry = Registry::with_defaults();
    let ctx = ExperimentContext::new().with_sink(Arc::new(StderrSink));

    println!("== 1. The end-to-end pipeline over real TLS traffic ==");
    let mut pipeline = registry
        .create("tls-cookie")
        .expect("tls-cookie is a built-in experiment");
    // Configs are replaced wholesale (never merged), so one complete
    // config derived from the quick preset is all that is needed.
    let config = TlsCookieConfig {
        captures: 5_000,
        ..TlsCookieConfig::for_scale(Scale::Quick)
    };
    pipeline
        .set_config_value(&config.to_value())
        .expect("hand-built config is valid");
    match pipeline.run(&ctx) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => eprintln!("pipeline failed: {e}"),
    }

    println!("\n== 2. The Fig. 10 success curve in sampled mode ==");
    let mut sweep = registry
        .create("fig10")
        .expect("fig10 is a built-in experiment");
    let sweep_config = Fig10Config {
        request_counts: vec![1 << 29, 1 << 31, 1 << 33],
        trials: 4,
        cookie_len: 8,
        candidates: 1 << 12,
        absab_relations: 48,
        ..Fig10Config::for_scale(Scale::Quick)
    };
    sweep
        .set_config_value(&sweep_config.to_value())
        .expect("hand-built config is valid");
    match sweep.run(&ctx) {
        Ok(report) => {
            print!("{}", report.render());
            println!(
                "\nThe candidate-list rule reaches the paper's ~94% at 9 x 2^27 requests; \
                 `repro run fig10 --scale laptop` sweeps the full curve."
            );
        }
        Err(e) => eprintln!("sweep failed: {e}"),
    }
}
