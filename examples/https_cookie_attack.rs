//! End-to-end HTTPS cookie attack demo (Section 6).
//!
//! Drives a real TLS (RC4-SHA1) record layer carrying the manipulated request
//! of Listing 3, captures the encrypted requests, accumulates Fluhrer–McGrew
//! and ABSAB statistics, and shows the Fig. 10-style sweep in sampled mode.
//!
//! ```text
//! cargo run --release --example https_cookie_attack
//! ```

use plaintext_recovery::charset::Charset;
use rc4_attacks::experiments::fig10::{run, Fig10Config};
use tls_rc4::{
    attack::{brute_force_rate_seconds, CookieAttackConfig, CookieStatistics},
    http::RequestTemplate,
    traffic::{TrafficConfig, TrafficGenerator},
};

fn main() {
    println!("== 1. The manipulated request ==");
    let mut template = RequestTemplate::new("site.com", "auth", 16);
    template.align_cookie(0, 0, tls_rc4::record::MAC_LEN);
    let cookie = b"dGhpc2lzc2VjcmV0";
    let request = template.build(cookie).expect("cookie length matches");
    println!(
        "request is {} bytes ({} known before the cookie, 16 secret, {} known after)",
        request.len(),
        template.cookie_offset(),
        template.known_suffix().len()
    );

    println!("\n== 2. Victim traffic over real TLS RC4-SHA1 connections ==");
    let mut traffic =
        TrafficGenerator::new(template.clone(), cookie.to_vec(), TrafficConfig::default())
            .expect("valid traffic config");
    let captures = traffic.capture(5_000).expect("captures");
    println!(
        "captured {} encrypted requests; the paper's 9 * 2^27 requests take about {:.0} hours at 4450 req/s",
        captures.len(),
        traffic.hours_for(9 * (1u64 << 27))
    );

    println!("\n== 3. Accumulating FM + ABSAB statistics at the cookie positions ==");
    let mut stats = CookieStatistics::new(&template, 64).expect("valid template");
    for cap in &captures {
        stats.add(cap).expect("aligned capture");
    }
    let attack_config = CookieAttackConfig {
        candidates: 64,
        ..CookieAttackConfig::default()
    };
    let candidates =
        tls_rc4::attack::cookie_candidates(&stats, &attack_config).expect("candidate generation");
    println!(
        "generated {} ranked cookie candidates from {} captures (far too few for success — the real \
         attack needs ~2^30; see the sweep below)",
        candidates.len(),
        stats.requests()
    );
    println!(
        "brute-forcing 2^23 candidates at 20000 req/s would take {:.1} minutes",
        brute_force_rate_seconds(1 << 23, 20_000) / 60.0
    );

    println!("\n== 4. Fig. 10 sweep in sampled mode ==");
    let config = Fig10Config {
        request_counts: vec![1 << 29, 1 << 31, 1 << 33],
        trials: 4,
        cookie_len: 8,
        charset: Charset::base64(),
        candidates: 1 << 12,
        absab_relations: 48,
        ..Fig10Config::default()
    };
    match run(&config) {
        Ok((points, report)) => {
            print!("{}", report.render());
            if let Some(best) = points.last() {
                println!(
                    "\nAt {} sampled requests the candidate-list brute force succeeds in {:.0}% of trials — \
                     the same qualitative behaviour as the paper's 94% at 9 * 2^27.",
                    best.requests,
                    best.success_list * 100.0
                );
            }
        }
        Err(e) => eprintln!("sweep failed: {e}"),
    }
}
