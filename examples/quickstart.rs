//! Quickstart: generate RC4 keystream statistics, detect the classic biases
//! with sound hypothesis tests, and recover a repeated plaintext byte.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use plaintext_recovery::{
    candidates::most_likely, charset::Charset, counts::SingleCounts, likelihood::SingleLikelihoods,
};
use rc4_attacks::experiments::biases::{headline_detection, BiasScale};
use rc4_stats::{single::SingleByteDataset, worker::generate, GenerationConfig};
use stat_tests::chisq::chi_squared_uniform;

fn main() {
    println!("== 1. RC4 keystream basics ==");
    let ks = rc4::keystream(b"Key", 8).expect("valid key");
    println!("keystream(\"Key\")[..8] = {:02x?}", ks);

    println!("\n== 2. Empirical single-byte statistics (2^17 keys) ==");
    let mut dataset = SingleByteDataset::new(32);
    generate(&mut dataset, &GenerationConfig::with_keys(1 << 17).seed(1))
        .expect("generation succeeds");
    let z2 = dataset.probability(2, 0);
    println!(
        "Pr[Z2 = 0]  = {:.6}  (uniform would be {:.6}; Mantin-Shamir predicts ~{:.6})",
        z2,
        1.0 / 256.0,
        2.0 / 256.0
    );
    let test = chi_squared_uniform(dataset.counts_at(2)).expect("test runs");
    println!(
        "chi-squared uniformity test at position 2: statistic = {:.1}, p-value = {:.3e}",
        test.statistic, test.p_value
    );

    println!("\n== 3. Headline bias detection report ==");
    let report = headline_detection(&BiasScale {
        keys: 1 << 17,
        ..BiasScale::quick()
    })
    .expect("experiment runs");
    print!("{}", report.render());

    println!("== 4. Recovering a repeated plaintext byte from the Z2 bias ==");
    // Encrypt the same byte under many keys and use the empirical distribution
    // of Z2 to recover it from the ciphertext distribution alone.
    let secret = b'S';
    let mut counts = SingleCounts::new(vec![2]).expect("valid positions");
    let mut key = [0u8; 16];
    for i in 0u32..200_000 {
        key[..4].copy_from_slice(&i.to_le_bytes());
        key[4..8].copy_from_slice(&(i ^ 0xDEAD_BEEF).to_le_bytes());
        let ks = rc4::keystream(&key, 2).expect("valid key");
        counts.record(&[0, secret ^ ks[1]]);
    }
    let likelihood =
        SingleLikelihoods::from_counts(counts.counts_at(0), dataset.distribution(2).as_slice())
            .expect("well-formed inputs");
    let best = most_likely(&[likelihood], &Charset::full()).expect("candidates exist");
    println!(
        "true byte = {:?}, recovered = {:?} ({} ciphertexts)",
        secret as char,
        best.plaintext[0] as char,
        counts.ciphertexts()
    );
    assert_eq!(best.plaintext[0], secret);
    println!("\nDone — see the other examples for the full WPA-TKIP and HTTPS attacks.");
}
