//! Integration test: the full bias-hunting pipeline across crates —
//! keystream generation (`rc4` + `rc4-stats`), hypothesis testing
//! (`stat-tests`) and the analytic catalogue (`rc4-biases`).

use rc4_biases::{fm::fm_biases_at, UNIFORM_PAIR, UNIFORM_SINGLE};
use rc4_stats::{
    longterm::LongTermDataset, pairs::PairDataset, single::SingleByteDataset, worker::generate,
    GenerationConfig, KeystreamCollector,
};
use stat_tests::{
    chisq::chi_squared_uniform, holm::holm_rejections, mtest::m_test_independence,
    proportion::proportion_test,
};

/// The Mantin–Shamir bias must be detected end-to-end: generate keys with the
/// worker pool, test position 2 for uniformity, and confirm the flagged value is 0.
#[test]
fn mantin_shamir_detected_end_to_end() {
    let mut ds = SingleByteDataset::new(4);
    generate(
        &mut ds,
        &GenerationConfig::with_keys(1 << 16).workers(2).seed(11),
    )
    .unwrap();

    let uniform_test = chi_squared_uniform(ds.counts_at(2)).unwrap();
    assert!(uniform_test.rejects(), "p = {}", uniform_test.p_value);

    let z2_zero = proportion_test(ds.count(2, 0), ds.keystreams(), UNIFORM_SINGLE).unwrap();
    assert!(z2_zero.test.rejects());
    assert!(
        z2_zero.relative_bias > 0.5,
        "bias {}",
        z2_zero.relative_bias
    );

    // Position 1 is much closer to uniform: its strongest single-value deviation
    // is far weaker than the Z2 = 0 one.
    let z1_zero = proportion_test(ds.count(1, 0), ds.keystreams(), UNIFORM_SINGLE).unwrap();
    assert!(z1_zero.relative_bias.abs() < z2_zero.relative_bias);
}

/// Holm correction over all 256 values of position 2 must still single out value 0.
#[test]
fn holm_correction_flags_only_strong_values() {
    let mut ds = SingleByteDataset::new(2);
    generate(&mut ds, &GenerationConfig::with_keys(1 << 15).seed(7)).unwrap();
    let n = ds.keystreams();
    let p_values: Vec<f64> = (0..=255u8)
        .map(|v| {
            proportion_test(ds.count(2, v), n, UNIFORM_SINGLE)
                .unwrap()
                .test
                .p_value
        })
        .collect();
    let rejected = holm_rejections(&p_values, 1e-4);
    assert!(
        rejected.contains(&0),
        "value 0 must be flagged: {rejected:?}"
    );
    assert!(rejected.len() <= 8, "too many values flagged: {rejected:?}");
}

/// The consecutive-pair dataset + M-test must flag position pairs that carry a
/// Fluhrer–McGrew bias, while the analytic catalogue predicts the right cells.
#[test]
fn fm_digraphs_consistent_between_catalogue_and_measurement() {
    let mut ds = PairDataset::consecutive(4).unwrap();
    generate(&mut ds, &GenerationConfig::with_keys(1 << 16).seed(3)).unwrap();

    // The catalogue says position 1 carries the strong (0,0) digraph.
    let biases = fm_biases_at(1);
    assert!(biases.iter().any(|b| b.first == 0 && b.second == 0));

    // Independence testing of the measured pair must at least produce a valid
    // result; at 2^16 keys the dependence itself may not reach significance,
    // so only the plumbing and the direction of the (0,0) cell are checked.
    let idx = ds.pair_index(1, 2).unwrap();
    let m = m_test_independence(ds.joint_counts(idx), 256, 256).unwrap();
    assert!(m.test.p_value >= 0.0 && m.test.p_value <= 1.0);
    let q = ds.relative_bias(idx, 0, 0);
    assert!(q.is_some());
}

/// Long-term dataset bookkeeping: digraph samples appear at every PRGA counter
/// value and aligned pairs are collected, with probabilities near 2^-16.
#[test]
fn longterm_dataset_counts_are_consistent() {
    let mut ds = LongTermDataset::new(255, 2048).unwrap();
    generate(&mut ds, &GenerationConfig::with_keys(64).seed(5)).unwrap();
    assert_eq!(ds.keystreams(), 64);
    assert_eq!(ds.total_digraphs(), 64 * 2047);
    assert!(ds.aligned_samples() > 0);
    // Every PRGA counter value received samples.
    for i in [0u8, 1, 77, 255] {
        assert!(ds.digraph_samples(i) > 0, "counter {i} has no samples");
    }
    // A typical digraph probability is within an order of magnitude of 2^-16
    // (it cannot be exactly uniform at this scale, but must not be wildly off).
    let p = ds.digraph_probability(10, 1, 2);
    assert!(p < UNIFORM_PAIR * 20.0);
}
