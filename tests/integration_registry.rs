//! Integration test: the experiment registry is the single entry point to the
//! whole reproduction — every registered experiment must instantiate,
//! serde-roundtrip its configuration, and run to completion at `Quick` scale
//! under a default context.

use std::sync::Arc;

use rc4_attacks::{
    context::{CancelHandle, MemorySink},
    experiments::Scale,
    ExperimentContext, ExperimentError, Registry,
};

/// The full paper pipeline is registered: 11 figure/table experiments plus
/// the two end-to-end attacks.
#[test]
fn registry_lists_the_full_paper_pipeline() {
    let registry = Registry::with_defaults();
    assert!(
        registry.len() >= 13,
        "expected >= 13 experiments, got: {:?}",
        registry.names()
    );
    for name in [
        "headline",
        "table1",
        "fig4",
        "table2",
        "eq345",
        "fig5",
        "fig6",
        "longterm",
        "fig7",
        "fig8",
        "fig10",
        "tkip-attack",
        "tls-cookie",
    ] {
        assert!(
            registry.find(name).is_some(),
            "experiment '{name}' missing from the default registry"
        );
    }
}

/// Unknown names error (they never panic) and the error carries the complete
/// registered-name list, so CLI messages can never go stale.
#[test]
fn unknown_experiment_error_lists_registered_names() {
    let registry = Registry::with_defaults();
    let Err(err) = registry.create("fig99") else {
        panic!("lookup of 'fig99' should fail");
    };
    match err {
        ExperimentError::UnknownExperiment { name, registered } => {
            assert_eq!(name, "fig99");
            assert_eq!(registered.len(), registry.len());
            assert!(registered.contains(&"tkip-attack".to_string()));
        }
        other => panic!("unexpected error: {other}"),
    }
}

/// Every experiment's configuration roundtrips unchanged through JSON at
/// every scale (`config -> JSON -> config`).
#[test]
fn every_config_serde_roundtrips_unchanged() {
    let registry = Registry::with_defaults();
    for entry in registry.entries() {
        for scale in Scale::ALL {
            let mut experiment = entry.create();
            experiment.apply_scale(scale);
            let before = experiment.config_value();
            let json = experiment.config_json();
            let mut other = entry.create();
            other.set_config_json(&json).unwrap_or_else(|e| {
                panic!(
                    "{}@{:?}: config failed to re-parse: {e}",
                    entry.name(),
                    scale
                )
            });
            assert_eq!(
                other.config_value(),
                before,
                "{}@{:?}: config changed across a JSON roundtrip",
                entry.name(),
                scale
            );
        }
    }
}

/// Every registered experiment runs to completion at `Quick` scale, produces
/// a non-empty report, and reports progress through the context sink.
#[test]
fn every_experiment_runs_at_quick_scale() {
    let registry = Registry::with_defaults();
    let sink = Arc::new(MemorySink::new());
    let ctx = ExperimentContext::new().with_sink(sink.clone());
    for entry in registry.entries() {
        let mut experiment = entry.create();
        experiment.apply_scale(Scale::Quick);
        let report = experiment
            .run(&ctx)
            .unwrap_or_else(|e| panic!("{} failed at quick scale: {e}", entry.name()));
        assert!(
            !report.rows.is_empty(),
            "{} produced an empty report",
            entry.name()
        );
        assert!(
            !report.render().is_empty(),
            "{} renders to nothing",
            entry.name()
        );
    }
    // Each experiment emitted at least its start/finish pair.
    let events = sink.events();
    for entry in registry.entries() {
        assert!(
            events.contains(&format!("{}: started", entry.name())),
            "no started event for {} in {events:?}",
            entry.name()
        );
        assert!(
            events.contains(&format!("{}: finished", entry.name())),
            "no finished event for {}",
            entry.name()
        );
    }
}

/// Cancelling MID-RUN during a parallel empirical fig7 recovery at
/// `--workers 4` aborts promptly with `ExperimentError::Cancelled` and
/// leaves no partial shard in the dataset cache: the cache only ever stores
/// completed datasets via atomic tmp+rename, so a cancelled generation must
/// leave the cache directory empty (no `.ds` files, no temp droppings).
#[test]
fn mid_run_cancellation_of_parallel_recovery_leaves_no_partial_shards() {
    use rc4_attacks::experiments::fig7::{run_with_context, Fig7Config};
    use rc4_attacks::experiments::CountSource;
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!(
        "repro-cancel-parallel-recovery-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Enough keys that the 25 ms timer below always lands inside the
    // parallel dataset generation (2^21 keys of 259-byte keystreams is
    // hundreds of milliseconds on any hardware); even in the unlikely case
    // generation finishes first, the trial grid's executor still observes
    // the flag and the run must report Cancelled either way.
    let config = Fig7Config {
        ciphertext_counts: vec![1 << 30],
        trials: 4,
        absab_relations: 8,
        source: CountSource::Empirical { keys: 1 << 21 },
        ..Fig7Config::quick()
    };
    let handle = CancelHandle::new();
    let ctx = ExperimentContext::new()
        .with_workers(4)
        .with_cancel(handle.clone())
        .with_cache_dir(&dir)
        .unwrap();

    let started = Instant::now();
    let result = std::thread::scope(|scope| {
        let canceller = handle.clone();
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            canceller.cancel();
        });
        run_with_context(&config, &ctx)
    });
    let elapsed = started.elapsed();
    assert_eq!(result, Err(ExperimentError::Cancelled));
    assert!(
        elapsed < Duration::from_secs(20),
        "cancellation was not prompt: took {elapsed:?}"
    );

    // No partial shard corruption: the cancelled generation must not have
    // persisted anything at all.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(
        leftovers.is_empty(),
        "cancelled run left files in the cache: {leftovers:?}"
    );

    // A rerun without cancellation must succeed from the same (empty) cache
    // directory and store exactly one complete, loadable dataset.
    let ctx = ExperimentContext::new()
        .with_workers(4)
        .with_cache_dir(&dir)
        .unwrap();
    run_with_context(&config, &ctx).expect("uncancelled rerun succeeds");
    let stored: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(stored.len(), 1, "expected one cached dataset: {stored:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A pre-raised cancellation flag aborts every experiment with
/// `ExperimentError::Cancelled` before any heavy work happens.
#[test]
fn cancellation_reaches_every_experiment() {
    let registry = Registry::with_defaults();
    let handle = CancelHandle::new();
    handle.cancel();
    let ctx = ExperimentContext::new().with_cancel(handle);
    for entry in registry.entries() {
        let mut experiment = entry.create();
        // Laptop scale on purpose: cancellation must bite before the heavy
        // loops, so this still returns instantly.
        experiment.apply_scale(Scale::Laptop);
        match experiment.run(&ctx) {
            Err(ExperimentError::Cancelled) => {}
            Ok(_) => panic!("{} ignored the cancellation flag", entry.name()),
            Err(other) => panic!("{} failed with {other} instead of Cancelled", entry.name()),
        }
    }
}
