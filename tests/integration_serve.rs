//! Integration test: the resident `reprod` job server end to end.
//!
//! One in-process server, real TCP clients. Covers the tentpole guarantees:
//!
//! * two concurrent clients submitting the *same* empirical-dataset
//!   experiment share one generation (single-flight) and receive
//!   byte-identical results, themselves byte-identical to the one-shot
//!   `repro run --json` document for the same seed/scale;
//! * worker budgets never leak into results (one job runs with 2 workers,
//!   one with 1);
//! * graceful drain while a third job is still running leaves the ledger
//!   fully terminal, the straggler either done or cancelled;
//! * a restarted server serves completed results from the previous
//!   incarnation out of its persisted ledger.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rc4_attacks::{context::NullSink, experiments::Scale, ExperimentContext, Registry};
use rc4_serve::{Client, JobSpec, JobStatus, Server, ServerConfig};

/// What the one-shot CLI would print for `repro run table2 --scale quick
/// --seed 5 --json`: the pretty-printed single-report array plus the
/// trailing newline of `println!`.
fn one_shot_document(name: &str, seed: u64) -> String {
    let registry = Registry::with_defaults();
    let mut experiment = registry.create(name).expect("experiment exists");
    experiment.apply_scale(Scale::Quick);
    let ctx = ExperimentContext::new()
        .with_seed(seed)
        .with_sink(Arc::new(NullSink));
    let report = experiment.run(&ctx).expect("one-shot run succeeds");
    format!(
        "{}\n",
        serde_json::to_string_pretty(&vec![report]).expect("report serializes")
    )
}

fn temp_state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rc4-serve-integration-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Submits, watches to completion, and fetches the result document,
/// returning the document plus the job's dataset-cache event lines.
fn run_job_to_done(addr: &str, spec: JobSpec) -> (String, Vec<String>) {
    let mut client = Client::connect(addr).expect("client connects");
    let id = client.submit(spec).expect("submit succeeds");
    let mut cache_lines = Vec::new();
    let (status, dropped) = client
        .watch(id, 0, |_seq, line| {
            if line.contains("dataset cache") {
                cache_lines.push(line.to_string());
            }
        })
        .expect("watch reaches a terminal state");
    assert_eq!(status, JobStatus::Done, "job {id} should finish");
    assert_eq!(dropped, 0, "quick jobs fit the event buffer");
    let document = client.result(id).expect("done job has a result");
    (document, cache_lines)
}

#[test]
fn serve_end_to_end_single_flight_byte_identity_and_drain() {
    let state_dir = temp_state_dir("e2e");
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir: state_dir.clone(),
        budget: 4,
        default_workers: 1,
        cache_dir: Some(state_dir.join("cache")),
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    // The addr file lets CLI clients find the ephemeral port.
    let advertised = std::fs::read_to_string(state_dir.join("addr")).expect("addr file exists");
    assert_eq!(advertised.trim(), addr);

    // --- Two concurrent clients, same empirical dataset, different worker
    // budgets. `table2` measures biases from real RC4 keystreams, so both
    // jobs need the identical pair dataset (same seed => same cache key).
    let spec = |workers: u64| JobSpec {
        name: "table2".to_string(),
        scale: "quick".to_string(),
        seed: 5,
        priority: 0,
        workers,
    };
    let (doc_a, (doc_b, lines_b)) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run_job_to_done(&addr, spec(2)));
        let b = scope.spawn(|| run_job_to_done(&addr, spec(1)));
        (a.join().expect("client A").0, b.join().expect("client B"))
    });

    assert_eq!(doc_a, doc_b, "same-spec jobs must be byte-identical");
    let expected = one_shot_document("table2", 5);
    assert_eq!(
        doc_a, expected,
        "server results must be byte-identical to the one-shot CLI document"
    );

    // Exactly one generation across both jobs: one miss+stored pair total,
    // every other cache interaction a hit. (Which job generated depends on
    // scheduling; the union is what single-flight pins down.)
    let mut client = Client::connect(&addr).expect("client connects");
    let status = client.status().expect("status responds");
    let flights = status.field("flights").expect("status carries flights");
    match flights.field("begun").expect("flights.begun") {
        serde::Value::UInt(n) => assert!(*n >= 2, "both jobs entered the flight table"),
        other => panic!("flights.begun should be an integer, got {other:?}"),
    }
    let all_lines: Vec<String> = lines_b; // job A's lines checked via totals below
    let stored_total = all_lines.iter().filter(|l| l.contains("stored")).count();
    let miss_total = all_lines.iter().filter(|l| l.contains("miss")).count();
    let hit_total = all_lines.iter().filter(|l| l.contains("hit")).count();
    // Job B either generated (miss+stored, A hit) or hit A's entry; in both
    // cases it never generated *and* hit the same key.
    assert!(
        (miss_total == 1 && stored_total == 1 && hit_total == 0)
            || (miss_total == 0 && stored_total == 0 && hit_total == 1),
        "job B must either generate once or hit the shared entry, got {all_lines:?}"
    );

    // --- One executor-driven job (fig8 quick maps its trials through
    // rc4-exec) so the metrics snapshot below spans all three instrumented
    // layers, then the `metrics` frame itself.
    let (fig8_doc, _) = run_job_to_done(
        &addr,
        JobSpec {
            name: "fig8".to_string(),
            scale: "quick".to_string(),
            seed: 5,
            priority: 0,
            workers: 1,
        },
    );
    assert!(!fig8_doc.is_empty(), "fig8 job produced no result");

    let metrics = client.metrics().expect("metrics frame responds");
    let counter = |name: &str| -> u64 {
        match metrics
            .field("counters")
            .ok()
            .and_then(|c| c.field(name).ok())
        {
            Some(serde::Value::UInt(n)) => *n,
            other => panic!("counter `{name}` missing or non-integer: {other:?}"),
        }
    };
    // Serving layer: all three jobs so far were admitted and finished.
    assert!(counter("serve.jobs.submitted") >= 3);
    assert!(counter("serve.jobs.done") >= 3);
    // Store layer: both table2 jobs entered the flight table, so exactly
    // one led and the other coalesced onto it.
    assert!(counter("store.singleflight.begun") >= 2);
    assert!(
        counter("store.singleflight.coalesced") >= 1,
        "concurrent same-key jobs must coalesce onto one generation"
    );
    assert!(counter("store.cache.stored") >= 1);
    // Executor layer, populated by the fig8 job.
    assert!(counter("exec.map.calls") >= 1);
    let histograms = metrics.field("histograms").expect("metrics histograms");
    for name in ["serve.queue_wait_us", "serve.run_us", "exec.map_us"] {
        assert!(
            histograms.field(name).is_ok(),
            "histogram `{name}` missing from the metrics frame"
        );
    }

    // --- Result-with-telemetry: same document bytes, plus the scheduling
    // timings recorded for a job this incarnation ran.
    let (doc_tel, telemetry) = client
        .result_with_telemetry(1)
        .expect("telemetry-augmented result responds");
    assert_eq!(
        doc_tel, expected,
        "--telemetry must not change result bytes"
    );
    let telemetry = telemetry.expect("live-incarnation jobs carry telemetry");
    for field in ["queue_wait_us", "budget_wait_us", "run_us", "workers"] {
        assert!(
            matches!(telemetry.field(field), Ok(serde::Value::UInt(_))),
            "telemetry lacks `{field}`: {telemetry:?}"
        );
    }

    // --- Drain during a third running job. fig7-stream runs for tens of
    // seconds at quick scale and polls cancellation per ingest batch, so the
    // short drain deadline forces the cancelled path.
    let third = client
        .submit(JobSpec {
            name: "fig7-stream".to_string(),
            scale: "quick".to_string(),
            seed: 1,
            priority: 0,
            workers: 1,
        })
        .expect("third submit succeeds");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let running = client.jobs().expect("jobs responds").iter().any(|job| {
            matches!(job.field("id"), Ok(serde::Value::UInt(id)) if *id == third)
                && matches!(job.field("status"), Ok(serde::Value::Str(s)) if s == "running")
        });
        if running {
            break;
        }
        assert!(Instant::now() < deadline, "third job never started running");
        std::thread::sleep(Duration::from_millis(20));
    }
    let summary = client.shutdown(100).expect("shutdown drains");
    assert!(
        matches!(summary.field("drained"), Ok(serde::Value::Bool(true))),
        "shutdown must report a completed drain"
    );
    server_thread
        .join()
        .expect("server thread joins")
        .expect("server exits cleanly");

    // Admission refused after the drain started: the listener is gone.
    assert!(
        Client::connect(&addr).is_err() || {
            let mut c = Client::connect(&addr).unwrap();
            c.submit(spec(1)).is_err()
        },
        "a drained server must not admit new jobs"
    );

    // The persisted ledger is valid JSON with every record terminal and the
    // third job done-or-cancelled.
    let ledger_text =
        std::fs::read_to_string(state_dir.join("ledger.json")).expect("ledger persisted");
    let ledger: serde::Value = serde_json::from_str(&ledger_text).expect("ledger parses");
    let serde::Value::Array(jobs) = ledger.field("jobs").expect("ledger has jobs").clone() else {
        panic!("ledger jobs should be an array");
    };
    assert_eq!(jobs.len(), 4, "four jobs were admitted");
    for job in &jobs {
        let Ok(serde::Value::Str(status)) = job.field("status") else {
            panic!("every record carries a status");
        };
        assert!(
            ["done", "failed", "cancelled"].contains(&status.as_str()),
            "post-drain ledger must be fully terminal, got {status}"
        );
    }
    let third_status = jobs
        .iter()
        .find(|j| matches!(j.field("id"), Ok(serde::Value::UInt(id)) if *id == third))
        .and_then(|j| match j.field("status") {
            Ok(serde::Value::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .expect("third job is in the ledger");
    assert!(
        third_status == "cancelled" || third_status == "done",
        "drained running job must be done or cancelled, got {third_status}"
    );

    // --- Restart on the same state directory: completed results survive.
    let restarted = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir: state_dir.clone(),
        budget: 2,
        default_workers: 1,
        cache_dir: Some(state_dir.join("cache")),
    })
    .expect("server restarts on the same state dir");
    let addr2 = restarted.local_addr().to_string();
    let restarted_thread = std::thread::spawn(move || restarted.run());

    let mut client2 = Client::connect(&addr2).expect("client connects to restarted server");
    let records = client2.jobs().expect("restarted server lists jobs");
    assert_eq!(records.len(), 4, "the ledger history survives restarts");
    let doc_after_restart = client2
        .result(1)
        .expect("completed result served across incarnations");
    assert_eq!(
        doc_after_restart, expected,
        "restart must not change stored result bytes"
    );
    // Telemetry is in-memory per incarnation: the restarted server serves
    // the bytes but reports no timings for jobs it never ran.
    let (doc_tel2, telemetry2) = client2
        .result_with_telemetry(1)
        .expect("telemetry-augmented result responds across incarnations");
    assert_eq!(doc_tel2, expected);
    assert!(
        telemetry2.is_none(),
        "prior-incarnation jobs must report no telemetry, got {telemetry2:?}"
    );
    // Watching a previous-incarnation job replays its persisted event log
    // from disk and then reports the terminal state instead of hanging.
    let mut replayed = Vec::new();
    let (status, _) = client2
        .watch(1, 0, |_seq, line| replayed.push(line.to_string()))
        .expect("watch terminates");
    assert_eq!(status, JobStatus::Done);
    assert!(
        replayed.iter().any(|l| l.contains("dataset cache")),
        "restart watch must replay the on-disk event log, got {replayed:?}"
    );

    client2.shutdown(1_000).expect("restarted server drains");
    restarted_thread
        .join()
        .expect("restarted thread joins")
        .expect("restarted server exits cleanly");
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// Priority ordering: with a budget of 1, a high-priority job submitted
/// later overtakes queued lower-priority work, and cancelling a queued job
/// never runs it.
#[test]
fn serve_priority_order_and_queued_cancel() {
    let state_dir = temp_state_dir("priority");
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir: state_dir.clone(),
        budget: 1,
        default_workers: 1,
        cache_dir: Some(state_dir.join("cache")),
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&addr).expect("client connects");
    let submit = |client: &mut Client, seed: u64, priority: i64| {
        client
            .submit(JobSpec {
                name: "table2".to_string(),
                scale: "quick".to_string(),
                seed,
                priority,
                workers: 1,
            })
            .expect("submit succeeds")
    };
    // Occupies the single slot while the rest queue behind it.
    let first = submit(&mut client, 1, 0);
    let low = submit(&mut client, 2, -5);
    let high = submit(&mut client, 3, 5);
    let doomed = submit(&mut client, 4, -5);

    assert_eq!(
        client.cancel(doomed).expect("cancel responds"),
        JobStatus::Cancelled,
        "a queued job cancels immediately"
    );

    // High priority overtakes: the moment `high` completes, `low` cannot
    // have finished yet — with one slot it can only start after `high`.
    let (status, _) = client.watch(high, 0, |_, _| {}).expect("watch terminates");
    assert_eq!(status, JobStatus::Done, "high-priority job should finish");
    let low_done_already = client.jobs().expect("jobs responds").iter().any(|job| {
        matches!(job.field("id"), Ok(serde::Value::UInt(id)) if *id == low)
            && matches!(job.field("status"), Ok(serde::Value::Str(s)) if s == "done")
    });
    assert!(
        !low_done_already,
        "priority 5 must be scheduled before priority -5"
    );
    for id in [first, low] {
        let (status, _) = client.watch(id, 0, |_, _| {}).expect("watch terminates");
        assert_eq!(status, JobStatus::Done, "job {id} should finish");
    }
    // The high-priority job must have produced the same bytes as a one-shot
    // run — scheduling order and queue pressure never leak into results.
    let high_doc = client.result(high).expect("high-priority result");
    assert_eq!(high_doc, one_shot_document("table2", 3));
    assert!(
        client.result(doomed).is_err(),
        "a cancelled job has no result"
    );

    client.shutdown(5_000).expect("shutdown drains");
    server_thread
        .join()
        .expect("server thread joins")
        .expect("server exits cleanly");
    let _ = std::fs::remove_dir_all(&state_dir);
}
