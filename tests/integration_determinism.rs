//! Integration test: reproducibility guarantees the rest of the test suite
//! (and CI) relies on.
//!
//! Every randomized component in the workspace draws from an explicitly
//! seeded generator — dataset generation derives per-worker streams from
//! `(seed, worker)`, the traffic simulators take a seed in their configs, and
//! the vendored proptest seeds each property from the test's name. These
//! tests pin the guarantee end to end: identical configurations must yield
//! bit-identical results, regardless of worker count.

use rc4_attacks::{experiments::Scale, ExperimentContext, Registry};
use rc4_stats::{
    pairs::PairDataset, single::SingleByteDataset, worker::generate, GenerationConfig,
};
use wpa_tkip::injection::{InjectionConfig, InjectionSimulator};
use wpa_tkip::mpdu::FrameAddressing;

/// The same generation config must produce bit-identical statistics on every
/// run — this is what makes the statistical assertions elsewhere in the suite
/// safe from flakiness.
#[test]
fn dataset_generation_is_bit_identical_across_runs() {
    let config = GenerationConfig::with_keys(10_000).seed(0xD5EED).workers(2);
    let mut a = SingleByteDataset::new(8);
    let mut b = SingleByteDataset::new(8);
    generate(&mut a, &config).unwrap();
    generate(&mut b, &config).unwrap();
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
}

/// Multi-worker runs must not depend on thread scheduling: worker `w` derives
/// its keys from `(seed, w)`, so repeated runs of the same configuration are
/// bit-identical even though the OS interleaves the workers differently.
/// (Different worker *counts* partition the key space differently and are
/// documented to produce different — equally valid — key sets.)
#[test]
fn multi_worker_generation_is_scheduling_independent() {
    for workers in [2, 3, 8] {
        let config = GenerationConfig::with_keys(5_000).seed(42).workers(workers);
        let mut a = PairDataset::consecutive(3).unwrap();
        let mut b = PairDataset::consecutive(3).unwrap();
        generate(&mut a, &config).unwrap();
        generate(&mut b, &config).unwrap();
        assert_eq!(
            a.to_json().unwrap(),
            b.to_json().unwrap(),
            "{workers}-worker run is not reproducible"
        );
    }
}

/// The traffic simulator backing the TKIP attack tests replays identically
/// for a fixed seed, including its lossy retransmission schedule.
#[test]
fn injection_simulator_replays_identically() {
    let addressing = FrameAddressing {
        dst: [2, 0, 0, 0, 0, 1],
        src: [2, 0, 0, 0, 0, 2],
        transmitter: [2, 0, 0, 0, 0, 2],
        priority: 0,
    };
    let config = InjectionConfig {
        retransmission_rate: 0.2,
        loss_rate: 0.1,
        ..InjectionConfig::default()
    };
    let key = crypto_prims::michael::MichaelKey { l: 1, r: 2 };
    let make = || {
        InjectionSimulator::new(
            [0x3C; 16],
            key,
            addressing,
            b"identical payload bytes".to_vec(),
            config.clone(),
        )
        .unwrap()
    };
    let caps_a = make().capture(64);
    let caps_b = make().capture(64);
    assert_eq!(caps_a.len(), caps_b.len());
    for (a, b) in caps_a.iter().zip(&caps_b) {
        assert_eq!(a.tsc, b.tsc);
        assert_eq!(a.ciphertext, b.ciphertext);
    }
}

/// Experiments run through the registry are deterministic end to end: the
/// same context seed yields byte-identical report JSON, and a different seed
/// changes the measured numbers. (The `repro` CLI equivalent — byte-identical
/// `repro run all --json` output — is pinned in `crates/bench/tests/repro_cli.rs`.)
#[test]
fn registry_experiments_are_byte_identical_for_a_fixed_seed() {
    let registry = Registry::with_defaults();
    // One statistics-pipeline experiment, one simulation, one end-to-end
    // attack — enough to cover all three seeding paths without re-running the
    // full quick suite (which integration_registry.rs already does once).
    for name in ["headline", "fig7", "tkip-attack"] {
        let run_with_seed = |seed: u64| {
            let mut experiment = registry.create(name).unwrap();
            experiment.apply_scale(Scale::Quick);
            let ctx = ExperimentContext::new().with_seed(seed).with_workers(2);
            serde_json::to_string(&experiment.run(&ctx).unwrap()).unwrap()
        };
        assert_eq!(
            run_with_seed(0xD5EED),
            run_with_seed(0xD5EED),
            "{name}: same seed produced different JSON"
        );
    }
    // Seed sensitivity is asserted on the statistics pipeline, whose measured
    // probabilities always shift with the key set. (The attack experiments'
    // quick-scale reports are aggregate rates that can legitimately coincide
    // across seeds.)
    let run_headline = |seed: u64| {
        let mut experiment = registry.create("headline").unwrap();
        experiment.apply_scale(Scale::Quick);
        let ctx = ExperimentContext::new().with_seed(seed);
        serde_json::to_string(&experiment.run(&ctx).unwrap()).unwrap()
    };
    assert_ne!(
        run_headline(0xD5EED),
        run_headline(0xD5EED + 1),
        "the context seed does not reach the dataset generation"
    );
}
