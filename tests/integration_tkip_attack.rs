//! Integration test: the WPA-TKIP attack pipeline across crates — real TKIP
//! encapsulation (`wpa-tkip`), candidate generation (`plaintext-recovery`),
//! Michael inversion (`crypto-prims`) and the Fig. 8 experiment driver
//! (`rc4-attacks`).

use crypto_prims::michael::MichaelKey;
use rc4_attacks::experiments::fig8::{run, Fig8Config, TkipTrafficModel};
use wpa_tkip::{
    injection::{InjectionConfig, InjectionSimulator},
    keymix::mix_key,
    mpdu::{decapsulate, derive_mic_key, encapsulate, FrameAddressing, TRAILER_LEN},
    net::{build_tcp_msdu, Ipv4Header, TcpHeader},
    Tsc,
};

fn addressing() -> FrameAddressing {
    FrameAddressing {
        dst: [0x02, 0x00, 0x00, 0x00, 0x00, 0x01],
        src: [0x02, 0x00, 0x00, 0x00, 0x00, 0x02],
        transmitter: [0x02, 0x00, 0x00, 0x00, 0x00, 0x02],
        priority: 0,
    }
}

/// A full software WPA-TKIP "network": the injected TCP packet round-trips
/// through encapsulation, a genie decryption of one captured frame yields the
/// MIC whose inversion recovers the MIC key, and that key then validates (and
/// can forge) further frames.
#[test]
fn tkip_network_roundtrip_and_mic_key_inversion() {
    let ip = Ipv4Header::tcp([10, 0, 0, 5], [198, 51, 100, 1], 7, 64);
    let tcp = TcpHeader {
        src_port: 40000,
        dst_port: 80,
        seq: 7,
        ack: 9,
        flags: 0x18,
        window: 512,
    };
    let msdu = build_tcp_msdu(&ip, &tcp, b"payload");
    assert_eq!(
        msdu.len(),
        55,
        "7-byte payload places the trailer at position 56"
    );

    let tk = [0x3Cu8; 16];
    let mic_key = MichaelKey {
        l: 0xAABB_CCDD,
        r: 0x0011_2233,
    };
    let mut sim = InjectionSimulator::new(
        tk,
        mic_key,
        addressing(),
        msdu.clone(),
        InjectionConfig {
            retransmission_rate: 0.05,
            loss_rate: 0.02,
            ..InjectionConfig::default()
        },
    )
    .unwrap();
    let captures = sim.capture(100);
    assert_eq!(captures.len(), 100);

    // Every captured frame decapsulates correctly with the network keys.
    for cap in captures.iter().take(5) {
        let mpdu = wpa_tkip::mpdu::EncryptedMpdu {
            tsc: cap.tsc,
            ciphertext: cap.ciphertext.clone(),
        };
        let plain = decapsulate(&tk, mic_key, &addressing(), &mpdu).unwrap();
        assert_eq!(plain, msdu);
    }

    // "Genie" decryption of one frame (the attack's end state): knowing the
    // plaintext trailer, Michael inversion recovers the MIC key.
    let cap = &captures[0];
    let key = mix_key(&tk, &addressing().transmitter, cap.tsc);
    let mut plain = cap.ciphertext.clone();
    rc4::apply(&key, &mut plain).unwrap();
    let mic: [u8; 8] = plain[msdu.len()..msdu.len() + 8].try_into().unwrap();
    let recovered = derive_mic_key(&addressing(), &msdu, &mic);
    assert_eq!(recovered, mic_key);

    // The recovered key forges a brand-new packet the receiver accepts.
    let forged_payload = build_tcp_msdu(&ip, &tcp, b"FORGED!");
    let forged = encapsulate(&tk, recovered, &addressing(), Tsc(0xFFFF), &forged_payload);
    let accepted = decapsulate(&tk, mic_key, &addressing(), &forged).unwrap();
    assert_eq!(accepted, forged_payload);
}

/// The Fig. 8 driver exercises the statistical attack end to end and its output
/// obeys the paper's qualitative relationships.
#[test]
fn fig8_driver_produces_monotone_success_and_trailer_consistency() {
    let config = Fig8Config {
        capture_counts: vec![1 << 9, 1 << 12],
        trials: 4,
        max_candidates: 1 << 10,
        payload_len: 55,
        model: TkipTrafficModel::Synthetic { relative_bias: 0.9 },
        seed: 1,
    };
    let (points, report) = run(&config).unwrap();
    assert_eq!(points.len(), 2);
    assert!(points[1].success_full_list >= points[0].success_full_list);
    for p in &points {
        assert!(p.success_full_list >= p.success_top2);
        assert!(p.success_full_list >= 0.0 && p.success_full_list <= 1.0);
    }
    let text = report.render();
    assert!(text.contains("fig8_fig9"));
    assert!(text.contains("captures"));
    // The trailer the attack searches for is always MIC + ICV = 12 bytes.
    assert_eq!(TRAILER_LEN, 12);
}
