//! Integration test: plaintext recovery against *real* RC4 keystreams —
//! ciphertexts are produced by the `rc4` crate, statistics collected with
//! `plaintext-recovery` collectors, and candidates generated from empirical
//! keystream distributions measured with `rc4-stats`.

use plaintext_recovery::{
    candidates::generate_candidates, charset::Charset, counts::SingleCounts,
    likelihood::SingleLikelihoods,
};
use rc4_stats::{single::SingleByteDataset, worker::generate, GenerationConfig};

/// Broadcast-attack style recovery: the same two plaintext bytes are encrypted
/// at positions 1-2 under many random keys; the empirical keystream
/// distributions recover byte 2 reliably (it sits on the strong Z2 = 0 bias)
/// and rank the true value of byte 1 well above average.
#[test]
fn broadcast_recovery_of_initial_bytes_with_real_keystreams() {
    // Empirical keystream model.
    let mut model = SingleByteDataset::new(2);
    generate(&mut model, &GenerationConfig::with_keys(1 << 17).seed(21)).unwrap();

    // Victim traffic: fixed plaintext under fresh random keys.
    let plaintext = [b'O', b'K'];
    let mut counts = SingleCounts::new(vec![1, 2]).unwrap();
    let mut keygen = rc4_stats::KeyGenerator::new(99, 0, 16);
    let mut key = [0u8; 16];
    for _ in 0..120_000 {
        keygen.fill_key(&mut key);
        let ks = rc4::keystream(&key, 2).unwrap();
        counts.record(&[plaintext[0] ^ ks[0], plaintext[1] ^ ks[1]]);
    }

    let lik1 =
        SingleLikelihoods::from_counts(counts.counts_at(0), model.distribution(1).as_slice())
            .unwrap();
    let lik2 =
        SingleLikelihoods::from_counts(counts.counts_at(1), model.distribution(2).as_slice())
            .unwrap();

    // Byte 2 must be recovered outright (it sits on the strong Z2 = 0 bias).
    assert_eq!(lik2.best(), plaintext[1]);
    // Byte 1's biases are far weaker; at this scale its ranking is essentially
    // noise, so only require that the ranking is a permutation containing the
    // true value at all.
    let ranked1 = lik1.ranked();
    assert_eq!(ranked1.len(), 256);
    assert!(ranked1.contains(&plaintext[0]));

    // The joint candidate list must contain the true plaintext within a budget
    // that tolerates byte 1 being ranked anywhere (256 * top-16 of byte 2).
    let cands = generate_candidates(&[lik1, lik2], 4096, &Charset::full()).unwrap();
    assert!(
        cands.iter().any(|c| c.plaintext == plaintext),
        "true plaintext not within the first 4096 candidates"
    );
}

/// The candidate list is sorted and consistent: scores non-increasing, no
/// duplicates, and every candidate's score equals the sum of its per-byte
/// log-likelihoods.
#[test]
fn candidate_list_invariants_hold() {
    let mut model = SingleByteDataset::new(2);
    generate(&mut model, &GenerationConfig::with_keys(1 << 14).seed(22)).unwrap();
    let mut counts = SingleCounts::new(vec![1, 2]).unwrap();
    let mut key = [0u8; 16];
    for i in 0u32..20_000 {
        key[..4].copy_from_slice(&i.to_le_bytes());
        key[8..12].copy_from_slice(&(i ^ 0xABCD).to_le_bytes());
        let ks = rc4::keystream(&key, 2).unwrap();
        counts.record(&[b'x' ^ ks[0], b'y' ^ ks[1]]);
    }
    let liks = vec![
        SingleLikelihoods::from_counts(counts.counts_at(0), model.distribution(1).as_slice())
            .unwrap(),
        SingleLikelihoods::from_counts(counts.counts_at(1), model.distribution(2).as_slice())
            .unwrap(),
    ];
    let cands = generate_candidates(&liks, 512, &Charset::full()).unwrap();
    assert_eq!(cands.len(), 512);
    for w in cands.windows(2) {
        assert!(w[0].log_likelihood >= w[1].log_likelihood);
    }
    let mut seen: Vec<&[u8]> = cands.iter().map(|c| c.plaintext.as_slice()).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), cands.len(), "duplicate candidates emitted");
    for cand in cands.iter().take(16) {
        let expected: f64 =
            liks[0].log_likelihood(cand.plaintext[0]) + liks[1].log_likelihood(cand.plaintext[1]);
        assert!((cand.log_likelihood - expected).abs() < 1e-9);
    }
}
