//! Integration test: the HTTPS cookie attack pipeline across crates — real TLS
//! record encryption (`tls-rc4`), statistics and candidate generation
//! (`plaintext-recovery`), and the Fig. 10 experiment driver (`rc4-attacks`).

use plaintext_recovery::charset::Charset;
use rc4_attacks::experiments::fig10::{run, Fig10Config};
use tls_rc4::{
    attack::{brute_force_cookie, cookie_candidates, CookieAttackConfig, CookieStatistics},
    http::RequestTemplate,
    traffic::{TrafficConfig, TrafficGenerator},
};

/// End-to-end plumbing over real TLS traffic: captures flow through the
/// statistics into a ranked candidate list over the cookie alphabet, and the
/// brute-force driver reports hits/misses faithfully.
#[test]
fn tls_capture_to_candidate_pipeline() {
    let cookie = b"c00kieVALUE00xyz";
    let mut template = RequestTemplate::new("site.com", "auth", cookie.len());
    template.align_cookie(0, 17, tls_rc4::record::MAC_LEN);
    let mut traffic = TrafficGenerator::new(
        template.clone(),
        cookie.to_vec(),
        TrafficConfig {
            requests_per_connection: 1 << 14,
            ..TrafficConfig::default()
        },
    )
    .unwrap();

    let mut stats = CookieStatistics::new(&template, 32).unwrap();
    for cap in traffic.capture(600).unwrap() {
        stats.add(&cap).unwrap();
    }
    assert_eq!(stats.requests(), 600);
    assert_eq!(stats.cookie_len(), cookie.len());

    let config = CookieAttackConfig {
        candidates: 128,
        ..CookieAttackConfig::default()
    };
    let candidates = cookie_candidates(&stats, &config).unwrap();
    assert!(!candidates.is_empty());
    for cand in &candidates {
        assert_eq!(cand.plaintext.len(), cookie.len());
        assert!(config.charset.accepts(&cand.plaintext));
    }
    for w in candidates.windows(2) {
        assert!(w[0].log_likelihood >= w[1].log_likelihood);
    }

    // The brute forcer finds a planted candidate and reports a miss otherwise.
    let outcome = brute_force_cookie(&candidates, |guess| guess == candidates[3].plaintext);
    assert_eq!(outcome.candidate_index, Some(3));
    assert_eq!(outcome.attempts, 4);
    let miss = brute_force_cookie(&candidates, |_| false);
    assert!(miss.cookie.is_none());
    assert_eq!(miss.attempts, candidates.len());
}

/// The Fig. 10 driver (sampled mode) succeeds at large request counts and the
/// candidate-list rule dominates the single-candidate rule.
#[test]
fn fig10_driver_candidate_list_dominates() {
    let config = Fig10Config {
        request_counts: vec![1 << 33],
        trials: 2,
        cookie_len: 4,
        charset: Charset::hex_lower(),
        candidates: 256,
        absab_relations: 32,
        cookie_position: 321,
        source: rc4_attacks::experiments::CountSource::Analytic,
        seed: 9,
    };
    let (points, report) = run(&config).unwrap();
    assert_eq!(points.len(), 1);
    let p = points[0];
    assert!(p.success_list >= p.success_top1);
    assert!(
        p.success_list > 0.4,
        "success too low: {p:?}\n{}",
        report.render()
    );
}
