//! Differential verification harness: every accelerated path in the
//! workspace is checked against an independent scalar reference.
//!
//! Two families of contracts are pinned here, at the workspace root so the
//! checks span crate boundaries:
//!
//! * **Keystream engines** — every [`rc4_accel::AutoBatch`] backend the host
//!   can run (avx512 / avx2 / neon / portable) plus the lane-free
//!   [`rc4::batch::ScalarBatch`] must emit byte-identical keystreams to the
//!   single-key `rc4::keystream` cipher, across exhaustive small sweeps of
//!   key lengths, stream lengths, partial batches, and chunked fills, and
//!   across proptest-randomized keys.
//! * **Recovery kernels** — every `_with_exec` recovery variant (single /
//!   dense / sparse likelihoods, candidate generation, TLS cookie
//!   likelihoods) must be *bit-identical* (`f64::to_bits`) to a naive
//!   textbook reimplementation written here from the paper's equations, and
//!   invariant across executor worker counts. This is what licenses the
//!   blocked/SIMD scoring in `rc4_accel::score`: same per-slot accumulation
//!   order, same results, down to the last ulp.

use plaintext_recovery::{
    candidates::{generate_candidates, generate_candidates_with_exec},
    charset::Charset,
    likelihood::{PairLikelihoods, SingleLikelihoods},
};
use proptest::proptest;
use rc4::batch::{check_schedule, KeystreamBatch, ScalarBatch};
use rc4_accel::{AutoBatch, Engine};
use rc4_exec::Executor;

/// Deterministic pseudo-random byte soup for exhaustive sweeps (no RNG
/// dependency needed; any fixed permutation-ish stream works).
fn splat(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

/// Every batch engine the host supports, plus the scalar lane-loop batch.
fn all_backends() -> Vec<Box<dyn KeystreamBatch>> {
    let mut backends: Vec<Box<dyn KeystreamBatch>> = vec![Box::new(ScalarBatch::new(8))];
    for name in rc4_accel::available_engines() {
        let engine = Engine::parse(name).expect("available_engines yields known names");
        backends.push(Box::new(
            AutoBatch::with_engine(engine).expect("available engine constructs"),
        ));
    }
    backends
}

/// Reference keystreams via the scalar cipher, packed lane-major to match
/// the `KeystreamBatch::fill` layout.
fn reference_lane_major(keys: &[u8], key_len: usize, lanes: usize, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(lanes * len);
    for lane in 0..lanes {
        let key = &keys[lane * key_len..][..key_len];
        out.extend_from_slice(&rc4::keystream(key, len).expect("valid key"));
    }
    out
}

/// Exhaustive small sweep: every backend, several key lengths (including the
/// 1-byte minimum, the 16-byte bench shape, and the 256-byte maximum),
/// several stream lengths (including 0, 1, and lengths that straddle the
/// engines' internal staging chunks), full and partial batches.
#[test]
fn every_keystream_backend_matches_the_scalar_cipher_exhaustively() {
    for backend in &mut all_backends() {
        let lanes = backend.lanes();
        for key_len in [1usize, 3, 5, 16, 31, 256] {
            for batch in [lanes, 1, lanes / 2 + 1] {
                let batch = batch.clamp(1, lanes);
                let keys = splat((key_len * 1000 + batch) as u64, batch * key_len);
                backend.schedule(&keys, key_len).expect("valid schedule");
                assert_eq!(backend.scheduled(), batch, "{}", backend.name());
                for len in [0usize, 1, 2, 67, 68, 255, 256, 257, 1024] {
                    let mut got = vec![0u8; batch * len];
                    backend.schedule(&keys, key_len).expect("valid schedule");
                    backend.fill(&mut got, len);
                    let want = reference_lane_major(&keys, key_len, batch, len);
                    assert_eq!(
                        got,
                        want,
                        "engine {} diverged at key_len={key_len} batch={batch} len={len}",
                        backend.name()
                    );
                }
            }
        }
    }
}

/// Chunked fills continue the keystream exactly where the previous fill
/// stopped, for every backend — the streaming-ingest contract.
#[test]
fn every_keystream_backend_streams_across_chunked_fills() {
    for backend in &mut all_backends() {
        let lanes = backend.lanes();
        let key_len = 16;
        let keys = splat(7, lanes * key_len);
        backend.schedule(&keys, key_len).expect("valid schedule");
        let total = 613; // deliberately not a multiple of any staging chunk
        let mut streamed = vec![0u8; lanes * total];
        let mut filled = 0usize;
        for chunk in [1usize, 63, 64, 129, 256, 100] {
            let chunk = chunk.min(total - filled);
            let mut part = vec![0u8; lanes * chunk];
            backend.fill(&mut part, chunk);
            for lane in 0..lanes {
                streamed[lane * total + filled..][..chunk]
                    .copy_from_slice(&part[lane * chunk..][..chunk]);
            }
            filled += chunk;
        }
        assert_eq!(filled, total);
        let want = reference_lane_major(&keys, key_len, lanes, total);
        assert_eq!(streamed, want, "engine {} broke streaming", backend.name());
    }
}

proptest! {
    /// Randomized differential: arbitrary keys and stream lengths agree with
    /// the scalar cipher on every available backend.
    #[test]
    fn keystream_backends_match_scalar_on_random_keys(
        seed in proptest::any::<u64>(),
        key_len in 1usize..64,
        len in 0usize..700,
    ) {
        for backend in &mut all_backends() {
            let lanes = backend.lanes();
            let keys = splat(seed, lanes * key_len);
            backend.schedule(&keys, key_len).expect("valid schedule");
            let mut got = vec![0u8; lanes * len];
            backend.fill(&mut got, len);
            let want = reference_lane_major(&keys, key_len, lanes, len);
            assert_eq!(got, want, "engine {} diverged", backend.name());
        }
    }
}

/// Invalid key lengths are rejected identically by the shared validator and
/// every backend.
#[test]
fn every_keystream_backend_rejects_invalid_key_lengths() {
    for backend in &mut all_backends() {
        let lanes = backend.lanes();
        for key_len in [0usize, 257] {
            assert!(check_schedule(&vec![0u8; lanes * key_len.max(1)], key_len, lanes).is_err());
            assert!(
                backend
                    .schedule(&vec![0u8; lanes * key_len.max(1)], key_len)
                    .is_err(),
                "engine {} accepted key_len={key_len}",
                backend.name()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery kernels vs naive textbook references.
// ---------------------------------------------------------------------------

/// Textbook Eq. 11/12: `log[mu] = Σ_c N[c] · ln p[c ^ mu]`, `c` ascending,
/// zero counts skipped — the historical scalar loop, written independently.
fn naive_single(counts: &[u64], probs: &[f64]) -> Vec<f64> {
    let ln_p: Vec<f64> = probs.iter().map(|&p| p.max(1e-300).ln()).collect();
    let mut log = vec![0.0f64; 256];
    for (mu, slot) in log.iter_mut().enumerate() {
        for (c, &n) in counts.iter().enumerate() {
            if n > 0 {
                *slot += ln_p[c ^ mu] * n as f64;
            }
        }
    }
    log
}

/// Textbook Eq. 13: `log[mu1,mu2] = Σ N[c1,c2] · ln p[c1^mu1, c2^mu2]`,
/// non-zero cells in ascending index order.
fn naive_dense(counts: &[u64], probs: &[f64]) -> Vec<f64> {
    let ln_p: Vec<f64> = probs.iter().map(|&p| p.max(1e-300).ln()).collect();
    let mut log = vec![0.0f64; 65536];
    for (idx, slot) in log.iter_mut().enumerate() {
        let (mu1, mu2) = (idx >> 8, idx & 0xff);
        for (cidx, &n) in counts.iter().enumerate() {
            if n > 0 {
                let (c1, c2) = (cidx >> 8, cidx & 0xff);
                *slot += ln_p[(c1 ^ mu1) << 8 | (c2 ^ mu2)] * n as f64;
            }
        }
    }
    log
}

/// Textbook Eq. 15: `log[mu1,mu2] = N·ln u + Σ_cells N[k1^mu1, k2^mu2] ·
/// (ln p - ln u)`, cells in list order, zero counts *not* skipped.
fn naive_sparse(counts: &[u64], cells: &[(u8, u8, f64)], uniform: f64, total: u64) -> Vec<f64> {
    let ln_u = uniform.ln();
    let mut log = vec![total as f64 * ln_u; 65536];
    for (idx, slot) in log.iter_mut().enumerate() {
        let (mu1, mu2) = (idx >> 8, idx & 0xff);
        for &(k1, k2, p) in cells {
            let n = counts[(k1 as usize ^ mu1) << 8 | (k2 as usize ^ mu2)];
            *slot += (n as f64) * (p.ln() - ln_u);
        }
    }
    log
}

fn assert_bits_equal(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: slot {i} diverged ({g:e} vs {w:e})"
        );
    }
}

/// Single-byte likelihoods: the blocked/SIMD builder is bit-identical to the
/// naive reference, for the serial executor and for every worker count.
#[test]
fn single_likelihoods_are_bit_identical_to_the_naive_reference() {
    let mut counts = [0u64; 256];
    for (i, c) in counts.iter_mut().enumerate() {
        // Mix of zeros (exercising the zero-skip) and growing magnitudes.
        *c = if i % 3 == 0 {
            0
        } else {
            (i as u64 * 977) % 40961
        };
    }
    let probs: Vec<f64> = (0..256)
        .map(|i| {
            if i % 5 == 0 {
                0.0
            } else {
                1.0 / 256.0 + (i as f64 - 128.0) * 1e-6
            }
        })
        .collect();
    let want = naive_single(&counts, &probs);
    let serial = SingleLikelihoods::from_counts(&counts, &probs).unwrap();
    assert_bits_equal(serial.as_slice(), &want, "single serial");
    for workers in [1usize, 2, 4, 7] {
        let exec = Executor::new(workers);
        let got = SingleLikelihoods::from_counts_with_exec(&counts, &probs, &exec).unwrap();
        assert_bits_equal(got.as_slice(), &want, "single with_exec");
    }
}

/// Dense pair likelihoods: bit-identical to the naive Eq. 13 reference
/// across worker counts.
#[test]
fn dense_pair_likelihoods_are_bit_identical_to_the_naive_reference() {
    let mut counts = vec![0u64; 65536];
    for k in 0..700usize {
        counts[(k * 8191) % 65536] = 1 + (k as u64 % 11);
    }
    let probs: Vec<f64> = (0..65536)
        .map(|i| 1.0 / 65536.0 + ((i % 257) as f64 - 128.0) * 1e-9)
        .collect();
    let want = naive_dense(&counts, &probs);
    let serial = PairLikelihoods::from_counts_dense(&counts, &probs).unwrap();
    assert_bits_equal(serial.as_slice(), &want, "dense serial");
    for workers in [2usize, 5] {
        let exec = Executor::new(workers);
        let got = PairLikelihoods::from_counts_dense_with_exec(&counts, &probs, &exec).unwrap();
        assert_bits_equal(got.as_slice(), &want, "dense with_exec");
    }
}

/// Sparse pair likelihoods: bit-identical to the naive Eq. 15 reference
/// across worker counts, on a Fluhrer–McGrew-shaped cell list.
#[test]
fn sparse_pair_likelihoods_are_bit_identical_to_the_naive_reference() {
    let mut counts = vec![0u64; 65536];
    for (k, slot) in counts.iter_mut().enumerate() {
        *slot = ((k * 2654435761) >> 13) as u64 % 97;
    }
    let cells: &[(u8, u8, f64)] = &[
        (0, 0, 1.1 / 65536.0),
        (0, 1, 0.9 / 65536.0),
        (1, 255, 1.05 / 65536.0),
        (255, 255, 1.2 / 65536.0),
        (0x80, 0x7f, 0.95 / 65536.0),
    ];
    let total: u64 = counts.iter().sum();
    let want = naive_sparse(&counts, cells, 1.0 / 65536.0, total);
    let serial = PairLikelihoods::from_counts_sparse(&counts, cells, 1.0 / 65536.0, total).unwrap();
    assert_bits_equal(serial.as_slice(), &want, "sparse serial");
    for workers in [3usize, 8] {
        let exec = Executor::new(workers);
        let got = PairLikelihoods::from_counts_sparse_with_exec(
            &counts,
            cells,
            1.0 / 65536.0,
            total,
            &exec,
        )
        .unwrap();
        assert_bits_equal(got.as_slice(), &want, "sparse with_exec");
    }
}

proptest! {
    /// Randomized differential for the scoring kernel feeding all three
    /// builders: random counts and probabilities stay bit-identical to the
    /// naive single-byte reference under a pooled executor.
    #[test]
    fn random_single_likelihoods_stay_bit_identical(
        seed in proptest::any::<u64>(),
        workers in 1usize..6,
    ) {
        let bytes = splat(seed, 512);
        let counts: Vec<u64> = bytes[..256].iter().map(|&b| (b as u64).saturating_sub(64)).collect();
        let probs: Vec<f64> = bytes[256..].iter().map(|&b| b as f64 / 32640.0).collect();
        let want = naive_single(&counts, &probs);
        let exec = Executor::new(workers);
        let got = SingleLikelihoods::from_counts_with_exec(&counts, &probs, &exec).unwrap();
        assert_bits_equal(got.as_slice(), &want, "proptest single");
    }
}

/// Candidate generation (batched Algorithm 1 reconstruction): identical
/// output to the serial path for every worker count, and every candidate's
/// score is exactly the sum of its per-byte log-likelihoods — on a list
/// long enough (150 ranks, 5 positions, 64-char alphabet) to exercise
/// multiple reconstruction blocks and rank chunks.
#[test]
fn candidate_generation_is_identical_across_worker_counts() {
    let positions = 5usize;
    let liks: Vec<SingleLikelihoods> = (0..positions)
        .map(|pos| {
            let log: Vec<f64> = (0..256)
                .map(|v| (((v * 31 + pos * 17) % 101) as f64).mul_add(0.125, -6.0))
                .collect();
            SingleLikelihoods::from_log_values(log).unwrap()
        })
        .collect();
    let charset = Charset::base64();
    let want = generate_candidates(&liks, 150, &charset).unwrap();
    assert_eq!(want.len(), 150);
    for cand in &want {
        let score: f64 = cand
            .plaintext
            .iter()
            .enumerate()
            .map(|(pos, &b)| liks[pos].log_likelihood(b))
            .sum();
        assert_eq!(score.to_bits(), cand.log_likelihood.to_bits());
    }
    for workers in [1usize, 2, 4, 9] {
        let exec = Executor::new(workers);
        let got = generate_candidates_with_exec(&liks, 150, &charset, &exec).unwrap();
        assert_eq!(got, want, "candidates diverged at workers={workers}");
    }
}

/// TLS cookie likelihoods: the executor variant is bit-identical to the
/// serial one for every worker count and every bias-family combination.
#[test]
fn tls_cookie_likelihoods_are_bit_identical_across_worker_counts() {
    use tls_rc4::{
        attack::{CookieAttackConfig, CookieStatistics},
        http::RequestTemplate,
        traffic::{TrafficConfig, TrafficGenerator},
    };
    let cookie = b"deadbeef";
    let mut template = RequestTemplate::new("site.test", "auth", cookie.len());
    template.align_cookie(0, 17, tls_rc4::record::MAC_LEN);
    let mut traffic = TrafficGenerator::new(
        template.clone(),
        cookie.to_vec(),
        TrafficConfig {
            requests_per_connection: 1 << 12,
            ..TrafficConfig::default()
        },
    )
    .unwrap();
    let mut stats = CookieStatistics::new(&template, 16).unwrap();
    for cap in traffic.capture(200).unwrap() {
        stats.add(&cap).unwrap();
    }
    for (use_fm, use_absab) in [(true, true), (true, false), (false, true)] {
        let config = CookieAttackConfig {
            use_fm,
            use_absab,
            ..CookieAttackConfig::default()
        };
        let want = stats.likelihoods(&config).unwrap();
        for workers in [2usize, 4] {
            let exec = Executor::new(workers);
            let got = stats.likelihoods_with_exec(&config, &exec).unwrap();
            assert_eq!(got.len(), want.len());
            for (t, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_bits_equal(
                    g.as_slice(),
                    w.as_slice(),
                    &format!("tls fm={use_fm} absab={use_absab} transition {t}"),
                );
            }
        }
    }
}
