//! Vendored, offline subset of the `criterion` crate.
//!
//! Implements the benchmark API this workspace uses — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — with a
//! simple adaptive wall-clock measurement loop instead of criterion's
//! statistical machinery. Results are printed per benchmark; when the
//! `CRITERION_JSON` environment variable names a file, one JSON line per
//! benchmark is appended to it so baselines can be recorded
//! (`BENCH_*.json`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Workload size metadata used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
    /// The measured routine processes this many logical elements per iteration.
    Elements(u64),
}

/// Identifier of a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Values accepted as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, storing the mean time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate a batch size targeting ~10ms per sample.
        let mut batch: u64 = 1;
        let target = Duration::from_millis(10);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 24 {
                break;
            }
            // Grow towards the target, at least doubling.
            batch = (batch * 2).max(
                (batch as f64 * target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)) as u64,
            );
        }

        let samples = self.sample_size.clamp(3, 100);
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
            best = best.min(ns);
            total += ns;
        }
        // Mean is reported; the minimum is folded in to damp scheduler noise.
        self.ns_per_iter = 0.5 * (total / samples as f64) + 0.5 * best;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets how much work one iteration represents, enabling throughput output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, b.ns_per_iter);
        self
    }

    /// Measures a benchmark closure that receives a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, b.ns_per_iter);
        self
    }

    fn report(&mut self, id: &BenchmarkId, ns: f64) {
        // An empty group name means a group-less `Criterion::bench_function`;
        // the id stands alone rather than being prefixed with itself.
        let full = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let throughput = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => {
                let gib = n as f64 / ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
                (
                    format!("{gib:.3} GiB/s"),
                    "bytes_per_sec",
                    n as f64 / ns * 1e9,
                )
            }
            Throughput::Elements(n) => {
                let meps = n as f64 / ns * 1e9 / 1e6;
                (
                    format!("{meps:.3} Melem/s"),
                    "elements_per_sec",
                    n as f64 / ns * 1e9,
                )
            }
        });
        match &throughput {
            Some((human, _, _)) => {
                println!("{full:<60} time: {:>12}   thrpt: {human}", format_ns(ns))
            }
            None => println!("{full:<60} time: {:>12}", format_ns(ns)),
        }
        self.criterion
            .record(&full, ns, throughput.map(|(_, k, v)| (k, v)));
    }

    /// Finishes the group (upstream renders summaries here; a no-op).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    json_lines: Vec<String>,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Upstream-compatible configuration hook (ignored).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Upstream-compatible configuration hook (ignored).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Benchmarks a closure outside a group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.benchmark_group(String::new()).bench_function(id, f);
        self
    }

    fn record(&mut self, full_id: &str, ns: f64, throughput: Option<(&str, f64)>) {
        // NaN/Inf (e.g. a closure that never called `b.iter`) are not valid
        // JSON number literals; emit null so consumers can still parse.
        let json_num = |v: f64| {
            if v.is_finite() {
                format!("{v:.3}")
            } else {
                "null".to_string()
            }
        };
        let mut line = format!(
            "{{\"bench\":\"{}\",\"ns_per_iter\":{}",
            full_id.replace('"', "'"),
            json_num(ns)
        );
        if let Some((key, v)) = throughput {
            line.push_str(&format!(",\"{key}\":{}", json_num(v)));
        }
        line.push('}');
        self.json_lines.push(line);
    }

    /// Appends recorded results to `$CRITERION_JSON` (one JSON object per
    /// line), if that environment variable is set.
    pub fn flush_json(&mut self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        if path.is_empty() || self.json_lines.is_empty() {
            return;
        }
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("CRITERION_JSON path must be writable");
        for line in self.json_lines.drain(..) {
            writeln!(file, "{line}").expect("CRITERION_JSON write failed");
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.flush_json();
    }
}

/// Declares a group of benchmark functions as a single runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; they are
            // irrelevant to this simplified runner.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendored");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| {
            b.iter(|| (0..1024u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benches_run_and_record() {
        let mut c = Criterion::default();
        trivial_bench(&mut c);
        assert_eq!(c.json_lines.len(), 2);
        assert!(c.json_lines[0].contains("\"bench\":\"vendored/sum\""));
        assert!(c.json_lines[0].contains("bytes_per_sec"));
        // Never flush to a file during tests.
        c.json_lines.clear();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn groupless_bench_function_is_not_double_prefixed() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        assert!(
            c.json_lines[0].contains("\"bench\":\"standalone\""),
            "got {}",
            c.json_lines[0]
        );
        c.json_lines.clear();
    }

    #[test]
    fn non_finite_measurements_serialize_as_null() {
        let mut c = Criterion::default();
        // A closure that never calls b.iter leaves ns_per_iter as NaN.
        c.benchmark_group("g").bench_function("skipped", |_b| {});
        assert!(
            c.json_lines[0].contains("\"ns_per_iter\":null"),
            "got {}",
            c.json_lines[0]
        );
        c.json_lines.clear();
    }
}
