//! Vendored, offline subset of `serde`.
//!
//! The build environment has no network access, so this crate provides the
//! slice of serde the workspace uses: `#[derive(Serialize, Deserialize)]` on
//! named-field structs and unit enums, driven through a small JSON-shaped
//! [`Value`] tree instead of upstream serde's visitor machinery. The
//! companion `serde_json` vendored crate renders and parses that tree.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Array of non-negative integers, stored compactly. The workspace's
    /// statistics datasets serialize multi-million-entry `Vec<u64>` counter
    /// tables; boxing each element as a [`Value`] costs ~4x the memory and an
    /// order of magnitude in time, so homogeneous integer arrays short-cut
    /// into this variant (the JSON text is identical).
    UIntArray(Vec<u64>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field, erroring if `self` is not an object or the
    /// field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the value's variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) | Value::UIntArray(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;

    /// Bulk hook used by the `Vec<T>`/`[T; N]` impls: element types with a
    /// compact array representation override this (see [`Value::UIntArray`]).
    fn slice_to_value(slice: &[Self]) -> Value
    where
        Self: Sized,
    {
        Value::Array(slice.iter().map(Serialize::to_value).collect())
    }
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Bulk hook used by the `Vec<Self>` impl; the compact-array counterpart
    /// of [`Serialize::slice_to_value`].
    fn vec_from_value(v: &Value) -> Result<Vec<Self>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            Value::UIntArray(items) => items
                .iter()
                .map(|n| Self::from_value(&Value::UInt(*n)))
                .collect(),
            other => Err(DeError(format!("expected array, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
            fn slice_to_value(slice: &[Self]) -> Value {
                Value::UIntArray(slice.iter().map(|&n| n as u64).collect())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    // `as u64` saturates, so range-check before casting:
                    // 2^64 is exactly representable as f64.
                    Value::Float(f)
                        if f.fract() == 0.0
                            && *f >= 0.0
                            && *f < 18_446_744_073_709_551_616.0 =>
                    {
                        *f as u64
                    }
                    other => return Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", found {}"), other.kind()))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    concat!("integer {} out of range for ", stringify!($t)), n)))
            }
            fn vec_from_value(v: &Value) -> Result<Vec<Self>, DeError> {
                match v {
                    Value::UIntArray(items) => items
                        .iter()
                        .map(|&n| <$t>::try_from(n).map_err(|_| DeError(format!(
                            concat!("integer {} out of range for ", stringify!($t)), n))))
                        .collect(),
                    Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
                    other => Err(DeError(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range")))?,
                    // `as i64` saturates, so range-check before casting:
                    // +/-2^63 are exactly representable as f64.
                    Value::Float(f)
                        if f.fract() == 0.0
                            && *f >= -9_223_372_036_854_775_808.0
                            && *f < 9_223_372_036_854_775_808.0 =>
                    {
                        *f as i64
                    }
                    other => return Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", found {}"), other.kind()))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    concat!("integer {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        T::slice_to_value(self)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::vec_from_value(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        T::slice_to_value(self)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected tuple of length {expected}, found {}", items.len())));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            <[u8; 3]>::from_value(&[9u8, 8, 7].to_value()).unwrap(),
            [9, 8, 7]
        );
    }

    #[test]
    fn uint_range_checks() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u8::from_value(&Value::UInt(255)).is_ok());
    }

    #[test]
    fn out_of_range_floats_are_rejected_not_saturated() {
        // 2e19 > u64::MAX: must error, not clamp to u64::MAX.
        assert!(u64::from_value(&Value::Float(2e19)).is_err());
        assert!(u64::from_value(&Value::Float(-1.0)).is_err());
        assert!(i64::from_value(&Value::Float(1e19)).is_err());
        assert!(i64::from_value(&Value::Float(-1e19)).is_err());
        assert_eq!(
            u64::from_value(&Value::Float(1e15)).unwrap(),
            1_000_000_000_000_000
        );
        assert_eq!(i64::from_value(&Value::Float(-3.0)).unwrap(), -3);
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("x".into(), Value::UInt(1))]);
        assert!(v.field("x").is_ok());
        assert!(v.field("y").is_err());
        assert!(Value::Null.field("x").is_err());
    }
}
