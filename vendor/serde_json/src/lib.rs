//! Vendored, offline subset of `serde_json`.
//!
//! Provides `to_string`, `to_string_pretty` and `from_str` over the vendored
//! serde [`serde::Value`] tree. The emitted JSON is standard; the parser
//! accepts standard JSON (no comments, no trailing commas).

use serde::{DeError, Deserialize, Serialize, Value};

/// Error produced by serialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest representation that parses
                // back to the same value, so roundtrips are exact.
                out.push_str(&f.to_string());
            } else {
                // JSON cannot represent NaN/Inf; follow the common lenient
                // convention of emitting null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            out,
            indent,
            level,
            '[',
            ']',
            |item, out, level| write_value(item, out, indent, level),
        ),
        Value::UIntArray(items) if indent.is_none() => {
            // Hot path for the statistics datasets' huge counter tables:
            // append digits directly, no per-element Value dispatch.
            out.push('[');
            let mut buf = itoa_buffer();
            for (i, n) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(format_u64(*n, &mut buf));
            }
            out.push(']');
        }
        Value::UIntArray(items) => {
            write_seq(items.iter(), out, indent, level, '[', ']', |n, out, _| {
                out.push_str(&n.to_string())
            })
        }
        Value::Object(fields) => write_seq(
            fields.iter(),
            out,
            indent,
            level,
            '{',
            '}',
            |(k, v), out, level| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, level);
            },
        ),
    }
}

fn write_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, out, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

/// Scratch space for [`format_u64`].
fn itoa_buffer() -> [u8; 20] {
    [0u8; 20]
}

/// Formats `n` into `buf` without allocating, returning the digits.
fn format_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // Digits are ASCII by construction.
    core::str::from_utf8(&buf[i..]).expect("ascii digits")
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(Error(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}` at offset {start}")))
    }

    /// Reads 4 hex digits starting at `at` (does not advance `self.pos`).
    fn read_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        u32::from_str_radix(
            core::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("invalid \\u escape".into()))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a conforming encoder escapes
                                // non-BMP chars as a \uXXXX\uXXXX pair.
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    == Some(b"\\u".as_slice())
                                {
                                    let low = self.read_hex4(self.pos + 3)?;
                                    if (0xDC00..=0xDFFF).contains(&low) {
                                        self.pos += 6;
                                        let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        out.push(char::from_u32(c).expect("valid surrogate pair"));
                                    } else {
                                        // High surrogate followed by a non-low
                                        // escape: lone surrogate.
                                        out.push('\u{fffd}');
                                    }
                                } else {
                                    out.push('\u{fffd}');
                                }
                            } else {
                                // Lone low surrogates map to the replacement
                                // character; everything else is a scalar value.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path (the overwhelmingly common case).
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte char: validate only its own (<= 4 byte) window,
                    // not the entire remaining input.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let c = match core::str::from_utf8(window) {
                        Ok(s) => s.chars().next().unwrap(),
                        // A trailing char can leave extra bytes in the window;
                        // from_utf8 reports how much of the prefix was valid.
                        Err(e) if e.valid_up_to() > 0 => {
                            core::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err(Error("invalid utf-8 in string".into())),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(Vec::new()));
        }
        // Fast path: as long as elements are plain non-negative integers,
        // accumulate them compactly (counter tables run to millions of
        // entries). Fall back to the general representation on the first
        // element of any other shape.
        let mut uints: Vec<u64> = Vec::new();
        loop {
            self.skip_ws();
            let v = self.parse_value()?;
            match v {
                Value::UInt(n) => uints.push(n),
                other => {
                    // Mixed array: box what we have and continue generally.
                    let mut items: Vec<Value> = uints.drain(..).map(Value::UInt).collect();
                    items.push(other);
                    return self.parse_array_rest(items);
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::UIntArray(uints));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    /// Continues parsing an array after its first non-integer element.
    fn parse_array_rest(&mut self, mut items: Vec<Value>) -> Result<Value, Error> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
            self.skip_ws();
            items.push(self.parse_value()?);
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("1.25").unwrap(), 1.25);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1, 1.0, -2.5e-8, 1e300, 0.30000000000000004] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1F980} ctrl\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
        assert_eq!(from_str::<Vec<u64>>("[]").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 ,\n\t3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode_to_one_char() {
        // A conforming ASCII-escaping encoder writes U+1F980 as a pair.
        assert_eq!(
            from_str::<String>("\"\\ud83e\\udd80\"").unwrap(),
            "\u{1F980}"
        );
        // Lone surrogates become the replacement character, not an error.
        assert_eq!(from_str::<String>("\"\\ud83e!\"").unwrap(), "\u{fffd}!");
        assert_eq!(from_str::<String>("\"\\udd80\"").unwrap(), "\u{fffd}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
