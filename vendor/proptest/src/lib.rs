//! Vendored, offline subset of the `proptest` crate.
//!
//! Implements the API surface this workspace uses: the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`), [`Strategy`] over ranges,
//! tuples, `any::<T>()`, `prop::collection::vec` and `prop::array::uniformN`,
//! plus the `prop_assert*` / `prop_assume!` macros. Each test's random stream
//! is seeded from a hash of the test's name, so runs are fully deterministic.
//! Failing inputs are reported but not shrunk.

use rand::{rngs::StdRng, RngCore, SeedableRng};

/// Random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator deterministically seeded from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, stable across platforms and runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.0.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generation strategy for values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; cases failing the predicate are rejected
    /// (regenerated), not failures.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, moderately sized values; uniform bit patterns would be
        // dominated by NaN/Inf/subnormals which upstream proptest also avoids
        // by default.
        (rng.next_f64() - 0.5) * 2e6
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `Vec` strategy; `size` may be a `usize`, a `Range` or a
    /// `RangeInclusive`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]` drawing each element independently.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.new_value(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident $n:literal),*) => {$(
            /// Array strategy of the corresponding length.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }
    uniform_fns!(
        uniform2 2, uniform3 3, uniform4 4, uniform5 5, uniform6 6, uniform8 8,
        uniform12 12, uniform16 16, uniform24 24, uniform32 32
    );
}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default is 256; 64 keeps `cargo test` CI-friendly while
        // still exercising each property across a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it is skipped, not failed.
    Reject(String),
    /// The property was violated.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runs `body` until `config.cases` cases pass. Called by the [`proptest!`]
/// macro; panics on the first failing case (inputs are reported by the
/// macro-generated message, no shrinking is attempted).
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = config.cases.saturating_mul(16).saturating_add(256);
    while passed < config.cases {
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest `{name}`: too many rejected cases ({rejected}) — \
                     assumptions are unsatisfiable"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {passed}: {msg}")
            }
        }
    }
}

/// Defines property tests.
///
/// Supports the upstream form: an optional `#![proptest_config(...)]` header
/// followed by `#[test]` functions whose arguments are `name in strategy`
/// bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Strategies are built once; values are drawn per case.
                let strategies = ($($strat,)+);
                let ($($arg,)+) = &strategies;
                $crate::run_cases(config, concat!(module_path!(), "::", stringify!($name)),
                    |prop_rng| {
                        $(let $arg = $crate::Strategy::new_value($arg, prop_rng);)+
                        let prop_case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        };
                        prop_case()
                    });
            }
        )*
    };
    ($($tt:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($tt)*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (prop_left, prop_right) = (&$left, &$right);
        $crate::prop_assert!(
            *prop_left == *prop_right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), prop_left, prop_right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (prop_left, prop_right) = (&$left, &$right);
        $crate::prop_assert!(*prop_left == *prop_right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (prop_left, prop_right) = (&$left, &$right);
        $crate::prop_assert!(
            *prop_left != *prop_right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            prop_left
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// The upstream-compatible prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror of upstream `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_are_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("tests::fixed");
        let mut b = crate::TestRng::from_name("tests::fixed");
        let s = crate::collection::vec(any::<u8>(), 1..=32);
        for _ in 0..20 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }

    proptest! {
        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() <= 6, "len {}", v.len());
        }

        #[test]
        fn exact_len_vec(v in prop::collection::vec(any::<u8>(), 16)) {
            prop_assert_eq!(v.len(), 16);
        }

        #[test]
        fn arrays_and_tuples(a in prop::array::uniform6(any::<u8>()),
                             pair in (0u8..4, 10u16..=20)) {
            prop_assert_eq!(a.len(), 6);
            prop_assert!(pair.0 < 4);
            prop_assert!((10..=20).contains(&pair.1));
        }

        #[test]
        fn mapped_strategy(v in (0u8..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_form_compiles(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_cases(ProptestConfig::with_cases(10), "always_fails", |_| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
