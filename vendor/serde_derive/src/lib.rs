//! Derive macros for the vendored serde subset.
//!
//! Supports exactly the shapes this workspace serializes: structs with named
//! fields (serialized as JSON objects keyed by field name) and enums whose
//! variants are all unit variants (serialized as the variant name string).
//! Written against `proc_macro` directly so the build needs no network access
//! for `syn`/`quote`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with only unit variants.
    Enum { name: String, variants: Vec<String> },
}

/// Parses the item a derive macro was attached to into a [`Shape`].
///
/// Panics (producing a compile error) on unsupported shapes: tuple structs,
/// generic types, and enums with data-carrying variants.
fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported");
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde derive (vendored): only brace-bodied types are supported, found {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_unit_variants(body),
        },
        other => panic!("serde derive: cannot derive for `{other}`"),
    }
}

/// Extracts the field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Expect `:` then the type; skip to the comma at depth zero.
                // Generic argument lists (`Vec<u64>`) contain no top-level
                // commas because `<`/`>` are punctuation, so track them.
                let mut angle_depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("serde derive: unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

/// Extracts the variant names of a unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                // `= discriminant` is tolerated; data variants are not.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    panic!(
                        "serde derive (vendored): data-carrying enum variants are not \
                         supported (variant `{id}` has body {g})"
                    );
                }
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '=' {
                        while i < tokens.len() {
                            if let TokenTree::Punct(p) = &tokens[i] {
                                if p.as_char() == ',' {
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                }
            }
            other => panic!("serde derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {} }}.to_string())\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {},\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown variant `{{other}}` for {name}\")))\n\
                             }},\n\
                             other => Err(::serde::DeError(format!(\n\
                                 \"expected string variant for {name}, found {{}}\", other.kind())))\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
