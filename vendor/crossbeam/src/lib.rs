//! Vendored, offline subset of the `crossbeam` crate API.
//!
//! Only `crossbeam::thread::scope` is used by this workspace; it is
//! implemented on top of `std::thread::scope` (stable since Rust 1.63), with
//! the crossbeam calling convention: the spawn closure receives the scope,
//! handles expose `join() -> thread::Result<T>`, and `scope` itself returns a
//! `Result` that is `Err` when the scope body panicked.

/// Scoped threads with the `crossbeam::thread` calling convention.
pub mod thread {
    use std::thread as stdthread;

    /// Result of joining a scoped thread (or of the scope body itself).
    pub type Result<T> = stdthread::Result<T>;

    /// A scope handle passed to [`scope`] bodies and spawn closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning `Err` if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope so
        /// it can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before `scope` returns. Returns `Err` with
    /// the panic payload if the scope body (or an unjoined thread) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stdthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panicking_scope_returns_err() {
        let r = thread::scope(|_| panic!("boom"));
        assert!(r.is_err());
        let _: Box<dyn std::any::Any + Send> = r.unwrap_err();
    }

    #[test]
    fn nested_spawn_from_worker() {
        let n = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
