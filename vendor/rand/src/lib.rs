//! Vendored, offline subset of the `rand` crate API.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of `rand` it actually uses: [`rngs::StdRng`], the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, `gen`, `gen_range`, `gen_bool` and
//! `fill_bytes`. The generator is xoshiro256** seeded via SplitMix64 — fully
//! deterministic for a given seed, which is all the reproduction needs (no
//! compatibility with upstream `StdRng` byte streams is claimed).

/// Byte-oriented source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = <u128 as Standard>::sample(rng) % span;
                (self.start as u128).wrapping_add(r) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type cannot occur
                    // here (callers use at most 64-bit types).
                    return <$t as Standard>::sample(rng);
                }
                let r = <u128 as Standard>::sample(rng) % span;
                (lo as u128).wrapping_add(r) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = <f64 as Standard>::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (uniform over the type,
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..=255);
            let _ = w;
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
