//! SHA-1 (FIPS 180-4) implementation.
//!
//! Used by the TLS `RC4-SHA1` cipher suite: every TLS record carries an
//! HMAC-SHA1 tag, so the record-layer substrate needs a real SHA-1.

use crate::Digest;

/// Streaming SHA-1 state.
///
/// # Examples
///
/// ```
/// use crypto_prims::{sha1::Sha1, Digest};
///
/// let mut h = Sha1::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha1::digest(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Bytes buffered waiting for a full 64-byte block.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Sha1 {
    const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_SIZE: usize = 20;
    const BLOCK_SIZE: usize = 64;

    fn new() -> Self {
        Self {
            state: Self::H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        // The padding byte above already changed total_len; length is captured first.
        while self.buffer_len != 56 {
            let pad_to = if self.buffer_len < 56 { 56 } else { 64 };
            let zeros = vec![0u8; pad_to - self.buffer_len];
            self.update(&zeros);
            if pad_to == 64 {
                // Buffer was flushed; continue padding towards 56 in the next block.
                continue;
            }
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = Vec::with_capacity(20);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    #[test]
    fn nist_vectors() {
        assert_eq!(
            to_hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            to_hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            to_hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise messages straddling the 55/56/64-byte padding boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xA5u8; len];
            let d1 = Sha1::digest(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(&[*b]);
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
