//! IEEE CRC-32 as used by the WEP/TKIP Integrity Check Value (ICV).
//!
//! The TKIP attack in Section 5 of the paper prunes plaintext candidates by
//! recomputing this CRC over the candidate payload + MIC and comparing it with
//! the candidate ICV, so a bit-exact implementation matters.

/// Reflected polynomial for IEEE CRC-32 (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB88320;

/// Precomputed lookup table, generated at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// Streaming CRC-32 computation.
///
/// # Examples
///
/// ```
/// use crypto_prims::crc32::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"1234");
/// crc.update(b"56789");
/// assert_eq!(crc.finalize(), 0xCBF43926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a new CRC-32 computation (initial state all-ones).
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ t[idx];
        }
    }

    /// Finalizes and returns the CRC value.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// Computes the 4-byte little-endian ICV appended to TKIP/WEP plaintext.
///
/// 802.11 transmits the ICV least-significant byte first.
pub fn icv(data: &[u8]) -> [u8; 4] {
    crc32(data).to_le_bytes()
}

/// Verifies that `data` followed by `icv_bytes` forms a valid ICV-protected frame body.
pub fn verify_icv(data: &[u8], icv_bytes: &[u8; 4]) -> bool {
    icv(data) == *icv_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0x0000_0000);
    }

    #[test]
    fn known_values() {
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6CAB0B);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn icv_roundtrip() {
        let body = b"some frame body with MIC appended";
        let tag = icv(body);
        assert!(verify_icv(body, &tag));
        let mut corrupted = *body;
        corrupted[0] ^= 0x01;
        assert!(!verify_icv(&corrupted, &tag));
    }

    #[test]
    fn single_bit_changes_crc() {
        let a = crc32(b"aaaaaaaa");
        let b = crc32(b"aaaaaaab");
        assert_ne!(a, b);
    }
}
