//! TLS pseudo-random functions (RFC 2246 / RFC 5246).
//!
//! The HTTPS attack assumes every TLS connection derives a fresh, effectively
//! uniform RC4 key from the 48-byte master secret. The record-layer substrate
//! reproduces the real derivation so that this assumption is exercised by the
//! actual TLS machinery rather than hard-coded:
//!
//! * TLS 1.0/1.1: `PRF(secret, label, seed) = P_MD5(S1, ...) XOR P_SHA1(S2, ...)`
//! * TLS 1.2: `PRF(secret, label, seed) = P_SHA256(secret, ...)`

use crate::{hmac::Hmac, md5::Md5, sha1::Sha1, sha256::Sha256, Digest};

/// The `P_hash` data expansion function from RFC 5246 Section 5.
///
/// Produces `out_len` bytes by iterating `HMAC_hash(secret, A(i) + seed)`.
fn p_hash<D: Digest>(secret: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(out_len);
    // A(1) = HMAC_hash(secret, seed)
    let mut a = Hmac::<D>::mac(secret, seed);
    while out.len() < out_len {
        let mut h = Hmac::<D>::new(secret);
        h.update(&a);
        h.update(seed);
        let chunk = h.finalize();
        let take = (out_len - out.len()).min(chunk.len());
        out.extend_from_slice(&chunk[..take]);
        // A(i+1) = HMAC_hash(secret, A(i))
        a = Hmac::<D>::mac(secret, &a);
    }
    out
}

/// TLS 1.0/1.1 PRF: MD5/SHA-1 construction over the split secret.
///
/// The secret is split in two halves `S1`/`S2` (overlapping by one byte if the
/// length is odd); the result is `P_MD5(S1, label||seed) XOR P_SHA1(S2, label||seed)`.
pub fn prf_tls10(secret: &[u8], label: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let half = secret.len().div_ceil(2);
    let s1 = &secret[..half];
    let s2 = &secret[secret.len() - half..];

    let mut label_seed = Vec::with_capacity(label.len() + seed.len());
    label_seed.extend_from_slice(label);
    label_seed.extend_from_slice(seed);

    let md5_part = p_hash::<Md5>(s1, &label_seed, out_len);
    let sha1_part = p_hash::<Sha1>(s2, &label_seed, out_len);
    md5_part
        .iter()
        .zip(&sha1_part)
        .map(|(a, b)| a ^ b)
        .collect()
}

/// TLS 1.2 PRF: `P_SHA256(secret, label||seed)`.
pub fn prf_tls12(secret: &[u8], label: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut label_seed = Vec::with_capacity(label.len() + seed.len());
    label_seed.extend_from_slice(label);
    label_seed.extend_from_slice(seed);
    p_hash::<Sha256>(secret, &label_seed, out_len)
}

/// TLS protocol versions relevant to the RC4 record substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlsVersion {
    /// TLS 1.0 (record version 3.1).
    Tls10,
    /// TLS 1.1 (record version 3.2).
    Tls11,
    /// TLS 1.2 (record version 3.3).
    Tls12,
}

impl TlsVersion {
    /// The `(major, minor)` bytes used on the wire for this version.
    pub fn wire_bytes(self) -> (u8, u8) {
        match self {
            TlsVersion::Tls10 => (3, 1),
            TlsVersion::Tls11 => (3, 2),
            TlsVersion::Tls12 => (3, 3),
        }
    }

    /// Runs the version-appropriate PRF.
    pub fn prf(self, secret: &[u8], label: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
        match self {
            TlsVersion::Tls10 | TlsVersion::Tls11 => prf_tls10(secret, label, seed, out_len),
            TlsVersion::Tls12 => prf_tls12(secret, label, seed, out_len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    #[test]
    fn tls12_prf_known_answer() {
        // Widely-circulated P_SHA256 PRF test vector.
        let secret = crate::from_hex("9bbe436ba940f017b17652849a71db35").unwrap();
        let seed = crate::from_hex("a0ba9f936cda311827a6f796ffd5198c").unwrap();
        let out = prf_tls12(&secret, b"test label", &seed, 100);
        assert_eq!(
            to_hex(&out),
            "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a6b301791e90d35c9c9a46b4e14baf9af0fa0\
             22f7077def17abfd3797c0564bab4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff70187347b66"
                .replace(' ', "")
        );
    }

    #[test]
    fn prf_is_deterministic_and_length_exact() {
        let out1 = prf_tls10(b"master-secret-bytes", b"key expansion", b"seedseed", 72);
        let out2 = prf_tls10(b"master-secret-bytes", b"key expansion", b"seedseed", 72);
        assert_eq!(out1, out2);
        assert_eq!(out1.len(), 72);
    }

    #[test]
    fn different_labels_give_independent_output() {
        let a = prf_tls10(b"secret", b"label one", b"seed", 32);
        let b = prf_tls10(b"secret", b"label two", b"seed", 32);
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_property() {
        // Requesting fewer bytes yields a prefix of the longer output.
        let long = prf_tls12(b"s", b"l", b"seed", 96);
        let short = prf_tls12(b"s", b"l", b"seed", 10);
        assert_eq!(&long[..10], &short[..]);
        let long10 = prf_tls10(b"s", b"l", b"seed", 96);
        let short10 = prf_tls10(b"s", b"l", b"seed", 10);
        assert_eq!(&long10[..10], &short10[..]);
    }

    #[test]
    fn odd_length_secret_split_overlaps() {
        // Just exercise the odd-length split path; output must be deterministic.
        let secret = [7u8; 47];
        let a = prf_tls10(&secret, b"master secret", b"xyz", 48);
        let b = prf_tls10(&secret, b"master secret", b"xyz", 48);
        assert_eq!(a, b);
        assert_eq!(a.len(), 48);
    }

    #[test]
    fn versions_route_to_expected_prf() {
        let secret = b"0123456789abcdef0123456789abcdef0123456789abcdef";
        let seed = b"randomness";
        let v10 = TlsVersion::Tls10.prf(secret, b"key expansion", seed, 64);
        let v11 = TlsVersion::Tls11.prf(secret, b"key expansion", seed, 64);
        let v12 = TlsVersion::Tls12.prf(secret, b"key expansion", seed, 64);
        assert_eq!(v10, v11);
        assert_ne!(v10, v12);
        assert_eq!(TlsVersion::Tls10.wire_bytes(), (3, 1));
        assert_eq!(TlsVersion::Tls12.wire_bytes(), (3, 3));
    }
}
