//! The TKIP Michael message integrity code and its key inversion.
//!
//! Michael is the 64-bit MIC protecting TKIP MSDUs. It was designed to be
//! extremely cheap on legacy hardware, and as a consequence it is *invertible*:
//! given a plaintext MSDU and its MIC value, the 64-bit MIC key can be computed
//! directly by running the compression backwards (Tews & Beck). This inversion
//! is the payoff of the paper's Section-5 attack — after decrypting a single
//! packet the attacker owns the MIC key and can forge traffic.

/// The 64-bit Michael key as two little-endian 32-bit words `(l, r)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MichaelKey {
    /// Left half of the key.
    pub l: u32,
    /// Right half of the key.
    pub r: u32,
}

impl MichaelKey {
    /// Builds a key from its 8-byte wire representation (two little-endian words).
    pub fn from_bytes(bytes: &[u8; 8]) -> Self {
        Self {
            l: u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            r: u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        }
    }

    /// Serializes the key to its 8-byte wire representation.
    pub fn to_bytes(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.l.to_le_bytes());
        out[4..].copy_from_slice(&self.r.to_le_bytes());
        out
    }
}

/// Swaps the two byte pairs within each 16-bit half of `v` (the `XSWAP` operation).
#[inline]
fn xswap(v: u32) -> u32 {
    ((v & 0xFF00_FF00) >> 8) | ((v & 0x00FF_00FF) << 8)
}

/// One Michael block (compression) round.
#[inline]
fn block(mut l: u32, mut r: u32) -> (u32, u32) {
    r ^= l.rotate_left(17);
    l = l.wrapping_add(r);
    r ^= xswap(l);
    l = l.wrapping_add(r);
    r ^= l.rotate_left(3);
    l = l.wrapping_add(r);
    r ^= l.rotate_right(2);
    l = l.wrapping_add(r);
    (l, r)
}

/// Inverse of one Michael block round.
#[inline]
fn block_inverse(mut l: u32, mut r: u32) -> (u32, u32) {
    l = l.wrapping_sub(r);
    r ^= l.rotate_right(2);
    l = l.wrapping_sub(r);
    r ^= l.rotate_left(3);
    l = l.wrapping_sub(r);
    r ^= xswap(l);
    l = l.wrapping_sub(r);
    r ^= l.rotate_left(17);
    (l, r)
}

/// Splits `data` into the little-endian 32-bit words Michael processes,
/// appending the `0x5a` terminator, zero padding, and the final zero word.
fn message_words(data: &[u8]) -> Vec<u32> {
    let full_blocks = data.len() / 4;
    let left = data.len() % 4;
    let mut words = Vec::with_capacity(full_blocks + 2);
    for chunk in data[..full_blocks * 4].chunks_exact(4) {
        words.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    // Final partial block: remaining bytes, then 0x5a, then zero fill.
    let mut last = [0u8; 4];
    last[..left].copy_from_slice(&data[full_blocks * 4..]);
    last[left] = 0x5a;
    words.push(u32::from_le_bytes(last));
    // Michael always processes one extra all-zero word after the terminator.
    words.push(0);
    words
}

/// Computes the Michael MIC of `data` under `key`.
///
/// `data` is the MSDU authenticated by TKIP: the Michael header
/// (destination address, source address, priority, three zero bytes) followed
/// by the payload. Helpers to build that header live in the `wpa-tkip` crate;
/// this function is the raw primitive.
///
/// # Examples
///
/// ```
/// use crypto_prims::michael::{michael, MichaelKey};
///
/// let key = MichaelKey::from_bytes(&[0u8; 8]);
/// assert_eq!(michael(key, b""), [0x82, 0x92, 0x5c, 0x1c, 0xa1, 0xd1, 0x30, 0xb8]);
/// ```
pub fn michael(key: MichaelKey, data: &[u8]) -> [u8; 8] {
    let (mut l, mut r) = (key.l, key.r);
    for word in message_words(data) {
        l ^= word;
        let (nl, nr) = block(l, r);
        l = nl;
        r = nr;
    }
    let mut out = [0u8; 8];
    out[..4].copy_from_slice(&l.to_le_bytes());
    out[4..].copy_from_slice(&r.to_le_bytes());
    out
}

/// Verifies a Michael MIC.
pub fn verify(key: MichaelKey, data: &[u8], mic: &[u8; 8]) -> bool {
    michael(key, data) == *mic
}

/// Recovers the Michael key from a known plaintext `data` and its MIC value.
///
/// This is the Tews–Beck inversion: because every step of the Michael
/// compression is reversible, running the algorithm backwards from the MIC
/// through the (known) message words lands exactly on the key.
///
/// # Examples
///
/// ```
/// use crypto_prims::michael::{invert_key, michael, MichaelKey};
///
/// let key = MichaelKey { l: 0xdeadbeef, r: 0x01234567 };
/// let mic = michael(key, b"known plaintext MSDU");
/// assert_eq!(invert_key(b"known plaintext MSDU", &mic), key);
/// ```
pub fn invert_key(data: &[u8], mic: &[u8; 8]) -> MichaelKey {
    let mut l = u32::from_le_bytes([mic[0], mic[1], mic[2], mic[3]]);
    let mut r = u32::from_le_bytes([mic[4], mic[5], mic[6], mic[7]]);
    for word in message_words(data).into_iter().rev() {
        let (pl, pr) = block_inverse(l, r);
        l = pl ^ word;
        r = pr;
    }
    MichaelKey { l, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    /// IEEE 802.11i Michael test vectors: (key bytes, message, expected MIC).
    fn vectors() -> Vec<([u8; 8], &'static [u8], &'static str)> {
        vec![
            ([0, 0, 0, 0, 0, 0, 0, 0], b"", "82925c1ca1d130b8"),
            (
                [0x82, 0x92, 0x5c, 0x1c, 0xa1, 0xd1, 0x30, 0xb8],
                b"M",
                "434721ca40639b3f",
            ),
            (
                [0x43, 0x47, 0x21, 0xca, 0x40, 0x63, 0x9b, 0x3f],
                b"Mi",
                "e8f9becae97e5d29",
            ),
            (
                [0xe8, 0xf9, 0xbe, 0xca, 0xe9, 0x7e, 0x5d, 0x29],
                b"Mic",
                "90038fc6cf13c1db",
            ),
            (
                [0x90, 0x03, 0x8f, 0xc6, 0xcf, 0x13, 0xc1, 0xdb],
                b"Mich",
                "d55e100510128986",
            ),
            (
                [0xd5, 0x5e, 0x10, 0x05, 0x10, 0x12, 0x89, 0x86],
                b"Michael",
                "0a942b124ecaa546",
            ),
        ]
    }

    #[test]
    fn ieee_test_vectors() {
        for (key_bytes, msg, expected) in vectors() {
            let key = MichaelKey::from_bytes(&key_bytes);
            assert_eq!(to_hex(&michael(key, msg)), expected, "msg {msg:?}");
        }
    }

    #[test]
    fn verify_detects_corruption() {
        let key = MichaelKey::from_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mic = michael(key, b"payload under test");
        assert!(verify(key, b"payload under test", &mic));
        assert!(!verify(key, b"payload under tesT", &mic));
    }

    #[test]
    fn block_inverse_is_inverse() {
        let cases = [
            (0u32, 0u32),
            (1, 2),
            (0xdeadbeef, 0xcafebabe),
            (u32::MAX, 7),
        ];
        for (l, r) in cases {
            let (fl, fr) = block(l, r);
            assert_eq!(block_inverse(fl, fr), (l, r));
        }
    }

    #[test]
    fn key_inversion_recovers_key_for_all_vector_messages() {
        for (key_bytes, msg, _) in vectors() {
            let key = MichaelKey::from_bytes(&key_bytes);
            let mic = michael(key, msg);
            assert_eq!(invert_key(msg, &mic), key, "msg {msg:?}");
        }
    }

    #[test]
    fn key_inversion_on_realistic_msdu() {
        // Michael header (DA, SA, priority, padding) + a small LLC/IP-looking payload.
        let mut msdu = Vec::new();
        msdu.extend_from_slice(&[0x00, 0x11, 0x22, 0x33, 0x44, 0x55]);
        msdu.extend_from_slice(&[0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb]);
        msdu.extend_from_slice(&[0x00, 0x00, 0x00, 0x00]);
        msdu.extend_from_slice(&[0xaa, 0xaa, 0x03, 0x00, 0x00, 0x00, 0x08, 0x00]);
        msdu.extend_from_slice(&[0x45u8; 40]);

        let key = MichaelKey {
            l: 0x0102_0304,
            r: 0xa0b0_c0d0,
        };
        let mic = michael(key, &msdu);
        assert_eq!(invert_key(&msdu, &mic), key);
    }

    #[test]
    fn key_bytes_roundtrip() {
        let key = MichaelKey {
            l: 0x01234567,
            r: 0x89abcdef,
        };
        assert_eq!(MichaelKey::from_bytes(&key.to_bytes()), key);
    }
}
