//! Cryptographic primitives required by the RC4 attack substrates.
//!
//! The paper's attacks sit on top of two real-world protocols — WPA-TKIP and
//! TLS — which in turn depend on a handful of classical primitives. To keep the
//! reproduction self-contained (no OpenSSL, no external crypto crates) this
//! crate implements all of them from scratch:
//!
//! * [`sha1`] — SHA-1, used by the TLS `RC4-SHA1` cipher suite's HMAC.
//! * [`sha256`] — SHA-256, used by the TLS 1.2 PRF.
//! * [`md5`] — MD5, used by the TLS 1.0/1.1 PRF.
//! * [`hmac`] — HMAC over any [`Digest`], providing HMAC-SHA1 / HMAC-MD5 /
//!   HMAC-SHA256.
//! * [`prf`] — the TLS pseudo-random functions used to expand the master
//!   secret into the RC4 key and MAC keys.
//! * [`crc32`] — the IEEE CRC-32 used as the TKIP/WEP Integrity Check Value
//!   (ICV); the attack prunes plaintext candidates with it.
//! * [`michael`] — the TKIP Michael message integrity code, including the
//!   key-inversion procedure that makes the WPA-TKIP attack devastating.
//!
//! All implementations favour clarity over speed; they are nonetheless fast
//! enough for the traffic volumes simulated in the benchmarks.
//!
//! # Examples
//!
//! ```
//! use crypto_prims::{hmac::hmac_sha1, sha1::Sha1, Digest};
//!
//! let digest = Sha1::digest(b"abc");
//! assert_eq!(hex(&digest), "a9993e364706816aba3e25717850c26c9cd0d89d");
//!
//! let tag = hmac_sha1(b"key", b"message");
//! assert_eq!(tag.len(), 20);
//!
//! fn hex(b: &[u8]) -> String {
//!     b.iter().map(|x| format!("{x:02x}")).collect()
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod hmac;
pub mod md5;
pub mod michael;
pub mod prf;
pub mod sha1;
pub mod sha256;

/// A minimal streaming digest abstraction shared by SHA-1, SHA-256 and MD5.
///
/// The abstraction exists so [`hmac::Hmac`] can be generic over the hash
/// function, mirroring how TLS composes HMAC with different digests.
pub trait Digest: Clone {
    /// Digest output size in bytes.
    const OUTPUT_SIZE: usize;
    /// Internal block size in bytes (64 for all digests implemented here).
    const BLOCK_SIZE: usize;

    /// Creates a fresh digest state.
    fn new() -> Self;

    /// Absorbs `data` into the state.
    fn update(&mut self, data: &[u8]);

    /// Finalizes the digest and returns the output bytes.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience: digest `data` in a single call.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut d = Self::new();
        d.update(data);
        d.finalize()
    }
}

/// Formats bytes as a lowercase hexadecimal string.
///
/// Shared helper used by tests, examples and report formatting.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Parses a lowercase/uppercase hexadecimal string into bytes.
///
/// Returns `None` when the string has odd length or contains a non-hex digit.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = vec![0x00, 0x01, 0xab, 0xff, 0x7f];
        let s = to_hex(&data);
        assert_eq!(s, "0001abff7f");
        assert_eq!(from_hex(&s).unwrap(), data);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
