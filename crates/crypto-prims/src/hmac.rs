//! HMAC (RFC 2104) over any [`Digest`].
//!
//! TLS with the `RC4-SHA1` suite authenticates every record with HMAC-SHA1;
//! the TLS 1.0/1.1 PRF additionally needs HMAC-MD5, and the TLS 1.2 PRF needs
//! HMAC-SHA256. All three are instantiations of the generic [`Hmac`].

use crate::{md5::Md5, sha1::Sha1, sha256::Sha256, Digest};

/// Streaming HMAC instance, generic over the underlying digest.
///
/// # Examples
///
/// ```
/// use crypto_prims::{hmac::Hmac, sha1::Sha1, to_hex};
///
/// let mut mac = Hmac::<Sha1>::new(b"key");
/// mac.update(b"The quick brown fox ");
/// mac.update(b"jumps over the lazy dog");
/// assert_eq!(
///     to_hex(&mac.finalize()),
///     "de7c9b85b8b78aa6bc8a7a36f70a90701c9db4d9"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    outer: D,
}

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC instance for `key`.
    ///
    /// Keys longer than the digest block size are hashed first, as mandated by
    /// RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = vec![0u8; D::BLOCK_SIZE];
        if key.len() > D::BLOCK_SIZE {
            let hashed = D::digest(key);
            key_block[..hashed.len()].copy_from_slice(&hashed);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut inner = D::new();
        let mut outer = D::new();
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
        inner.update(&ipad);
        outer.update(&opad);
        Self { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalizes and returns the authentication tag.
    pub fn finalize(mut self) -> Vec<u8> {
        let inner_hash = self.inner.finalize();
        self.outer.update(&inner_hash);
        self.outer.finalize()
    }

    /// One-shot HMAC computation.
    pub fn mac(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-length tag verification.
    ///
    /// Uses a branch-free comparison so the substrate does not introduce a
    /// timing side channel of its own (irrelevant for the attack, but the
    /// record layer is written as a real implementation would be).
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        let computed = Self::mac(key, data);
        if computed.len() != tag.len() {
            return false;
        }
        let mut diff = 0u8;
        for (a, b) in computed.iter().zip(tag) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// One-shot HMAC-SHA1.
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> Vec<u8> {
    Hmac::<Sha1>::mac(key, data)
}

/// One-shot HMAC-MD5.
pub fn hmac_md5(key: &[u8], data: &[u8]) -> Vec<u8> {
    Hmac::<Md5>::mac(key, data)
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Vec<u8> {
    Hmac::<Sha256>::mac(key, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    #[test]
    fn rfc2202_sha1_vectors() {
        assert_eq!(
            to_hex(&hmac_sha1(&[0x0b; 20], b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            to_hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
        assert_eq!(
            to_hex(&hmac_sha1(&[0xaa; 20], &[0xdd; 50])),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_md5_vectors() {
        assert_eq!(
            to_hex(&hmac_md5(&[0x0b; 16], b"Hi There")),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );
        assert_eq!(
            to_hex(&hmac_md5(b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
    }

    #[test]
    fn rfc4231_sha256_vector() {
        assert_eq!(
            to_hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        // RFC 2202 test case 6: 80-byte key.
        assert_eq!(
            to_hex(&hmac_sha1(
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha1(b"k", b"msg");
        assert!(Hmac::<Sha1>::verify(b"k", b"msg", &tag));
        assert!(!Hmac::<Sha1>::verify(b"k", b"msh", &tag));
        assert!(!Hmac::<Sha1>::verify(b"j", b"msg", &tag));
        assert!(!Hmac::<Sha1>::verify(b"k", b"msg", &tag[..10]));
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut mac = Hmac::<Sha256>::new(b"stream-key");
        mac.update(b"part one|");
        mac.update(b"part two");
        assert_eq!(
            mac.finalize(),
            hmac_sha256(b"stream-key", b"part one|part two")
        );
    }
}
