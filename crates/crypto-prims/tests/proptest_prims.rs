//! Property-based tests for the cryptographic primitives.

use crypto_prims::{
    crc32::{crc32, icv, verify_icv, Crc32},
    hmac::{hmac_md5, hmac_sha1, hmac_sha256, Hmac},
    md5::Md5,
    michael::{invert_key, michael, verify, MichaelKey},
    sha1::Sha1,
    sha256::Sha256,
    Digest,
};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot hashing for any split point.
    #[test]
    fn digests_are_split_invariant(data in prop::collection::vec(any::<u8>(), 0..1024),
                                   split in 0usize..1024) {
        let split = split.min(data.len());
        macro_rules! check {
            ($ty:ty) => {{
                let mut h = <$ty>::new();
                h.update(&data[..split]);
                h.update(&data[split..]);
                prop_assert_eq!(h.finalize(), <$ty>::digest(&data));
            }};
        }
        check!(Sha1);
        check!(Sha256);
        check!(Md5);
    }

    /// HMAC verification accepts the genuine tag and rejects a tag for different data.
    #[test]
    fn hmac_verify_roundtrip(key in prop::collection::vec(any::<u8>(), 0..128),
                             data in prop::collection::vec(any::<u8>(), 0..256),
                             flip in 0usize..256) {
        let tag = hmac_sha1(&key, &data);
        prop_assert_eq!(tag.len(), 20);
        prop_assert!(Hmac::<Sha1>::verify(&key, &data, &tag));
        if !data.is_empty() {
            let mut tampered = data.clone();
            let idx = flip % tampered.len();
            tampered[idx] ^= 0x01;
            prop_assert!(!Hmac::<Sha1>::verify(&key, &tampered, &tag));
        }
        // The three HMAC flavours have their documented output sizes.
        prop_assert_eq!(hmac_md5(&key, &data).len(), 16);
        prop_assert_eq!(hmac_sha256(&key, &data).len(), 32);
    }

    /// CRC-32 streaming equals one-shot, and the ICV check detects single-bit flips.
    #[test]
    fn crc_properties(data in prop::collection::vec(any::<u8>(), 1..512),
                      chunk in 1usize..64,
                      bit in 0usize..4096) {
        let reference = crc32(&data);
        let mut streaming = Crc32::new();
        for part in data.chunks(chunk) {
            streaming.update(part);
        }
        prop_assert_eq!(streaming.finalize(), reference);

        let tag = icv(&data);
        prop_assert!(verify_icv(&data, &tag));
        let mut flipped = data.clone();
        let byte = (bit / 8) % flipped.len();
        flipped[byte] ^= 1 << (bit % 8);
        prop_assert!(!verify_icv(&flipped, &tag));
    }

    /// Michael's key inversion recovers the key from any message and its MIC,
    /// and verification rejects modified messages.
    #[test]
    fn michael_inversion_and_verification(l in any::<u32>(), r in any::<u32>(),
                                          data in prop::collection::vec(any::<u8>(), 0..256),
                                          flip in 0usize..256) {
        let key = MichaelKey { l, r };
        let mic = michael(key, &data);
        prop_assert!(verify(key, &data, &mic));
        prop_assert_eq!(invert_key(&data, &mic), key);
        if !data.is_empty() {
            let mut tampered = data.clone();
            let idx = flip % tampered.len();
            tampered[idx] ^= 0x80;
            prop_assert!(!verify(key, &tampered, &mic));
        }
    }

    /// The MichaelKey byte representation round-trips.
    #[test]
    fn michael_key_bytes_roundtrip(bytes in prop::array::uniform8(any::<u8>())) {
        let key = MichaelKey::from_bytes(&bytes);
        prop_assert_eq!(key.to_bytes(), bytes);
    }
}
