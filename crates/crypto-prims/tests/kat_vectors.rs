//! Known-answer tests for the from-scratch primitives.
//!
//! Sources: FIPS 180 (SHA-1 / SHA-256 examples), RFC 1321 appendix (MD5 test
//! suite), RFC 2202 (HMAC-MD5 / HMAC-SHA1), RFC 4231 (HMAC-SHA256), the
//! CRC-32/ISO-HDLC check value, and the IEEE 802.11i Michael test vectors
//! (the chained `"" / M / Mi / Mic / Mich / Michael` table).

use crypto_prims::crc32::{crc32, icv, verify_icv};
use crypto_prims::hmac::{hmac_md5, hmac_sha1, hmac_sha256};
use crypto_prims::md5::Md5;
use crypto_prims::michael::{invert_key, michael, verify, MichaelKey};
use crypto_prims::sha1::Sha1;
use crypto_prims::sha256::Sha256;
use crypto_prims::{from_hex, to_hex, Digest};

fn check_digest<D: Digest>(msg: &[u8], expected_hex: &str) {
    assert_eq!(to_hex(&D::digest(msg)), expected_hex, "one-shot digest");
    // Same input absorbed byte-by-byte must agree (streaming correctness).
    let mut d = D::new();
    for b in msg {
        d.update(core::slice::from_ref(b));
    }
    assert_eq!(to_hex(&d.finalize()), expected_hex, "streaming digest");
}

#[test]
fn sha1_fips180_vectors() {
    check_digest::<Sha1>(b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    check_digest::<Sha1>(b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
    check_digest::<Sha1>(
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
    );
    check_digest::<Sha1>(
        b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
          ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "a49b2446a02c645bf419f995b67091253a04a259",
    );
}

#[test]
fn sha1_million_a() {
    let msg = vec![b'a'; 1_000_000];
    assert_eq!(
        to_hex(&Sha1::digest(&msg)),
        "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    );
}

#[test]
fn sha256_fips180_vectors() {
    check_digest::<Sha256>(
        b"",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    );
    check_digest::<Sha256>(
        b"abc",
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
    );
    check_digest::<Sha256>(
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    );
    check_digest::<Sha256>(
        b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
          ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
    );
}

#[test]
fn sha256_million_a() {
    let msg = vec![b'a'; 1_000_000];
    assert_eq!(
        to_hex(&Sha256::digest(&msg)),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

#[test]
fn md5_rfc1321_suite() {
    check_digest::<Md5>(b"", "d41d8cd98f00b204e9800998ecf8427e");
    check_digest::<Md5>(b"a", "0cc175b9c0f1b6a831c399e269772661");
    check_digest::<Md5>(b"abc", "900150983cd24fb0d6963f7d28e17f72");
    check_digest::<Md5>(b"message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    check_digest::<Md5>(
        b"abcdefghijklmnopqrstuvwxyz",
        "c3fcd3d76192e4007dfb496cca67e13b",
    );
    check_digest::<Md5>(
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "d174ab98d277d9f5a5611c2c9f419d9f",
    );
    check_digest::<Md5>(
        b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
        "57edf4a22be3c955ac49da2e2107b67a",
    );
}

/// RFC 2202 test cases 1-5 (the cases whose keys/data are length-independent
/// of the digest) plus case 6's larger-than-block-size key.
#[test]
fn hmac_rfc2202_md5_and_sha1() {
    struct Case {
        md5_key: Vec<u8>,
        sha1_key: Vec<u8>,
        data: Vec<u8>,
        md5: &'static str,
        sha1: &'static str,
    }
    let cases = [
        Case {
            md5_key: vec![0x0b; 16],
            sha1_key: vec![0x0b; 20],
            data: b"Hi There".to_vec(),
            md5: "9294727a3638bb1c13f48ef8158bfc9d",
            sha1: "b617318655057264e28bc0b6fb378c8ef146be00",
        },
        Case {
            md5_key: b"Jefe".to_vec(),
            sha1_key: b"Jefe".to_vec(),
            data: b"what do ya want for nothing?".to_vec(),
            md5: "750c783e6ab0b503eaa86e310a5db738",
            sha1: "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
        },
        Case {
            md5_key: vec![0xaa; 16],
            sha1_key: vec![0xaa; 20],
            data: vec![0xdd; 50],
            md5: "56be34521d144c88dbb8c733f0e8b3f6",
            sha1: "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
        },
        Case {
            md5_key: from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819").unwrap(),
            sha1_key: from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819").unwrap(),
            data: vec![0xcd; 50],
            md5: "697eaf0aca3a3aea3a75164746ffaa79",
            sha1: "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
        },
        Case {
            md5_key: vec![0xaa; 80],
            sha1_key: vec![0xaa; 80],
            data: b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            md5: "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd",
            sha1: "aa4ae5e15272d00e95705637ce8a3b55ed402112",
        },
    ];
    for (i, case) in cases.iter().enumerate() {
        assert_eq!(
            to_hex(&hmac_md5(&case.md5_key, &case.data)),
            case.md5,
            "HMAC-MD5 case {}",
            i + 1
        );
        assert_eq!(
            to_hex(&hmac_sha1(&case.sha1_key, &case.data)),
            case.sha1,
            "HMAC-SHA1 case {}",
            i + 1
        );
    }
}

#[test]
fn hmac_sha256_rfc4231_vectors() {
    assert_eq!(
        to_hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    );
    assert_eq!(
        to_hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    );
}

#[test]
fn crc32_check_value() {
    // The universal CRC-32/ISO-HDLC check value.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    // ICV is the little-endian serialization used on the wire by WEP/TKIP.
    assert_eq!(icv(b"123456789"), 0xCBF4_3926u32.to_le_bytes());
    assert!(verify_icv(b"123456789", &0xCBF4_3926u32.to_le_bytes()));
    assert!(!verify_icv(b"123456789", &[0; 4]));
    // Empty message: CRC-32 of nothing is 0.
    assert_eq!(crc32(b""), 0);
}

/// The IEEE 802.11i Michael test table: each row's MIC is the next row's key.
#[test]
fn michael_ieee80211i_vectors() {
    let rows: [(&str, &[u8], &str); 6] = [
        ("0000000000000000", b"", "82925c1ca1d130b8"),
        ("82925c1ca1d130b8", b"M", "434721ca40639b3f"),
        ("434721ca40639b3f", b"Mi", "e8f9becae97e5d29"),
        ("e8f9becae97e5d29", b"Mic", "90038fc6cf13c1db"),
        ("90038fc6cf13c1db", b"Mich", "d55e100510128986"),
        ("d55e100510128986", b"Michael", "0a942b124ecaa546"),
    ];
    for (key_hex, msg, mic_hex) in rows {
        let key_bytes: [u8; 8] = from_hex(key_hex).unwrap().try_into().unwrap();
        let key = MichaelKey::from_bytes(&key_bytes);
        let mic = michael(key, msg);
        assert_eq!(to_hex(&mic), mic_hex, "michael({key_hex}, {msg:?})");
        assert!(verify(key, msg, &mic));
        // The Tews-Beck inversion must recover the key from (msg, mic) —
        // the property the Section-5 attack's payoff rests on.
        assert_eq!(invert_key(msg, &mic), key, "invert_key({msg:?})");
    }
}
