//! The disabled fast path, pinned: in a process that never enables metrics
//! or installs a trace writer, the registry snapshot is empty and span
//! guards / metric mutations perform **zero heap allocations** — measured
//! with a counting global allocator. This is the contract that lets every
//! hot path in rc4-exec / rc4-store stay instrumented without moving the
//! BENCH numbers or the byte-identity guarantees.
//!
//! Global process state (the whole point of the test) forces this into its
//! own integration binary; keep it to a single `#[test]` so no sibling test
//! thread allocates concurrently.

// The workspace denies `unsafe_code`, but a counting GlobalAlloc cannot be
// written without it; the allocator below is two direct delegations to
// `System` plus one relaxed counter bump.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rc4_obs::{kv, metrics, trace, Span};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: every method delegates to `System`, which upholds the GlobalAlloc
// contract; the counter bump has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, which
        // guarantees it is non-zero-sized per the GlobalAlloc contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` call above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn disabled_observability_is_empty_and_allocation_free() {
    assert!(!metrics::is_enabled());
    assert!(!trace::is_enabled());

    // Snapshot of a never-enabled registry: empty, and its JSON form is
    // three empty objects.
    let snap = metrics::snapshot();
    assert!(
        snap.is_empty(),
        "disabled registry must stay empty: {snap:?}"
    );
    let json = serde_json::to_string(&snap.to_value()).unwrap();
    assert!(json.contains("\"counters\""), "{json}");

    // Warm up once outside the measured window so any lazy runtime
    // initialization (thread-locals etc.) is not attributed to the guards.
    {
        let _warm = Span::enter("warmup");
        metrics::counter_add("warmup", 1);
    }

    let evaluated = AtomicU64::new(0);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _span = Span::enter("exec.map");
        let _nested = Span::enter_with("store.load_or_generate", || {
            // Must never run while tracing is disabled — evaluating it
            // would both allocate and waste time on the hot path.
            evaluated.fetch_add(1, Ordering::Relaxed);
            vec![("key", "value".to_string())]
        });
        let _macro_kv = Span::enter_with("exec.worker", kv! { "index" => i });
        metrics::counter_add("exec.tasks", i);
        metrics::gauge_set("serve.queue_depth", 3);
        metrics::observe_us("exec.map_us", i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled spans/metrics must not allocate"
    );
    assert_eq!(
        evaluated.load(Ordering::Relaxed),
        0,
        "kv closures must not be evaluated while tracing is disabled"
    );
    // Still empty after all that traffic.
    assert!(metrics::snapshot().is_empty());
}
