//! The enabled path, end to end in one process: metrics register and
//! snapshot correctly, spans nest across threads and round-trip through the
//! JSONL writer into `summary::summarize_jsonl`.

use std::io::Write;
use std::sync::{Arc, Mutex};

use rc4_obs::{kv, metrics, summary, trace, Span};
use serde::Value;

/// A `Box<dyn Write + Send>` sink the test can read back.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn enabled_metrics_and_trace_round_trip() {
    // --- Metrics.
    metrics::enable();
    assert!(metrics::is_enabled());
    metrics::counter_add("exec.tasks", 5);
    metrics::counter_add("exec.tasks", 2);
    metrics::gauge_set("serve.queue_depth", 4);
    metrics::gauge_set("serve.queue_depth", 1);
    metrics::observe_us("exec.map_us", 100);
    metrics::observe_us("exec.map_us", 3_000);
    let snap = metrics::snapshot();
    assert_eq!(snap.counter("exec.tasks"), Some(7));
    assert_eq!(snap.gauges, vec![("serve.queue_depth".to_string(), 1)]);
    let (name, hist) = &snap.histograms[0];
    assert_eq!(name, "exec.map_us");
    assert_eq!(hist.count, 2);
    assert_eq!(hist.sum_us, 3_100);
    assert_eq!(hist.max_us, 3_000);
    assert_eq!(hist.buckets.iter().map(|(_, c)| c).sum::<u64>(), 2);

    // --- Tracing into an in-memory sink.
    let sink = SharedSink::default();
    assert!(trace::init_writer(Box::new(sink.clone())));
    assert!(
        !trace::init_writer(Box::new(sink.clone())),
        "second install must be refused"
    );
    {
        let _outer = Span::enter_with("experiment.run", kv! { "name" => "fig8" });
        {
            let _inner = Span::enter("store.load_or_generate");
        }
        // A span on another thread is a root there, with its own ordinal.
        std::thread::spawn(|| {
            let _worker = Span::enter("exec.worker");
        })
        .join()
        .unwrap();
    }
    trace::flush();

    let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("every trace line is JSON"))
        .collect();
    assert_eq!(lines.len(), 4, "meta + three spans: {text}");
    assert_eq!(lines[0].field("type").unwrap(), &Value::Str("meta".into()));
    assert_eq!(
        lines[0].field("schema").unwrap(),
        &Value::Str(trace::TRACE_SCHEMA.into())
    );

    let span = |name: &str| {
        lines[1..]
            .iter()
            .find(|l| matches!(l.field("name"), Ok(Value::Str(s)) if s == name))
            .unwrap_or_else(|| panic!("span `{name}` missing from {text}"))
    };
    let outer = span("experiment.run");
    let inner = span("store.load_or_generate");
    let worker = span("exec.worker");
    let uint = |v: &Value, f: &str| match v.field(f) {
        Ok(Value::UInt(n)) => *n,
        other => panic!("field {f} not a uint: {other:?}"),
    };
    // Nesting: the inner span's parent is the outer span's ID, one level
    // deeper; the cross-thread span is a root on its own thread ordinal.
    assert_eq!(uint(inner, "parent"), uint(outer, "id"));
    assert_eq!(uint(outer, "depth"), 0);
    assert_eq!(uint(inner, "depth"), 1);
    assert_eq!(uint(worker, "parent"), 0);
    assert_ne!(uint(worker, "thread"), uint(outer, "thread"));
    // The outer span closed last, so it covers the inner one.
    assert!(uint(outer, "dur_us") >= uint(inner, "dur_us"));
    assert_eq!(
        outer.field("kv").unwrap().field("name").unwrap(),
        &Value::Str("fig8".into())
    );

    // --- The written JSONL feeds straight into the summarizer.
    let summary = summary::summarize_jsonl(&text).expect("trace summarizes");
    assert_eq!(summary.version, Some(trace::TRACE_VERSION));
    assert_eq!(summary.span_lines, 3);
    assert!(summary.spans.iter().any(|s| s.name == "experiment.run"));
}
