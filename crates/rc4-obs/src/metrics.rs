//! The process-global metrics registry.
//!
//! Counters, gauges and histograms are addressed by `&str` name. Until
//! [`enable`] is called every mutation early-returns after one relaxed
//! atomic load; afterwards a mutation locks the name table briefly to
//! intern the metric, then performs plain atomic operations on its cells.
//!
//! Histogram buckets are a fixed power-of-two ladder over microseconds:
//! bucket `i` counts observations in `[2^(i-1), 2^i)` (bucket 0 counts
//! zeros), so no configuration is needed and `observe_us` is a handful of
//! atomic adds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use serde::Value;

/// Number of power-of-two histogram buckets; the last bucket absorbs
/// everything from `2^(BUCKET_COUNT-2)` microseconds (~3 days) upward.
pub const BUCKET_COUNT: usize = 40;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the registry on. Irreversible for the process lifetime; mutations
/// made before this call are lost by design (they never interned a metric).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Whether [`enable`] has been called.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

fn inner() -> MutexGuard<'static, Inner> {
    static INNER: OnceLock<Mutex<Inner>> = OnceLock::new();
    INNER
        .get_or_init(|| Mutex::new(Inner::default()))
        .lock()
        .expect("metrics registry lock poisoned")
}

struct HistogramCore {
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }
}

/// The ladder position of a microsecond value: 0 for 0, otherwise
/// `floor(log2(us)) + 1` clamped to the last bucket.
fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(BUCKET_COUNT - 1)
    }
}

/// Inclusive upper bound (in microseconds) of bucket `index`.
fn bucket_upper_us(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 63 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Adds `delta` to the counter `name`. No-op while the registry is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let cell = {
        let mut inner = inner();
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    };
    cell.fetch_add(delta, Ordering::Relaxed);
}

/// Sets the gauge `name` to `value`. No-op while the registry is disabled.
pub fn gauge_set(name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    let cell = {
        let mut inner = inner();
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0))),
        )
    };
    cell.store(value, Ordering::Relaxed);
}

/// Records one observation (in microseconds) into the histogram `name`.
/// No-op while the registry is disabled.
pub fn observe_us(name: &str, us: u64) {
    if !is_enabled() {
        return;
    }
    let core = {
        let mut inner = inner();
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        )
    };
    core.observe(us);
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values, microseconds.
    pub sum_us: u64,
    /// Largest observed value, microseconds.
    pub max_us: u64,
    /// Non-empty buckets as `(inclusive upper bound in us, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Point-in-time copy of the whole registry, names sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// True when no metric has ever been touched (always the case while the
    /// registry is disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The JSON wire form served by the `metrics` protocol frame:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}` with
    /// histograms as `{count, sum_us, max_us, buckets: [{le_us, count}]}`.
    pub fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Value::UInt(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), Value::Int(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(le, c)| {
                        Value::Object(vec![
                            ("le_us".into(), Value::UInt(*le)),
                            ("count".into(), Value::UInt(*c)),
                        ])
                    })
                    .collect();
                (
                    n.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::UInt(h.count)),
                        ("sum_us".into(), Value::UInt(h.sum_us)),
                        ("max_us".into(), Value::UInt(h.max_us)),
                        ("buckets".into(), Value::Array(buckets)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }
}

/// Copies the current registry contents. Cheap and always safe to call; an
/// empty snapshot simply renders as three empty JSON objects.
pub fn snapshot() -> Snapshot {
    if !is_enabled() {
        return Snapshot::default();
    }
    let inner = inner();
    Snapshot {
        counters: inner
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed)))
            .collect(),
        gauges: inner
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed)))
            .collect(),
        histograms: inner
            .histograms
            .iter()
            .map(|(n, h)| {
                (
                    n.clone(),
                    HistogramSnapshot {
                        count: h.count.load(Ordering::Relaxed),
                        sum_us: h.sum_us.load(Ordering::Relaxed),
                        max_us: h.max_us.load(Ordering::Relaxed),
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let count = b.load(Ordering::Relaxed);
                                (count > 0).then(|| (bucket_upper_us(i), count))
                            })
                            .collect(),
                    },
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global enable/disable behaviour lives in the `disabled_noop` and
    // `enabled_roundtrip` integration binaries (process isolation); these
    // unit tests only cover the pure pieces.

    #[test]
    fn bucket_ladder_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        // Upper bounds are consistent with the index function: every value
        // maps into a bucket whose bound it does not exceed.
        for us in [0u64, 1, 2, 3, 7, 8, 1000, 1024, 1 << 20] {
            let idx = bucket_index(us);
            assert!(us <= bucket_upper_us(idx), "us={us} idx={idx}");
            if idx > 0 {
                assert!(us > bucket_upper_us(idx - 1), "us={us} idx={idx}");
            }
        }
    }

    #[test]
    fn histogram_core_aggregates() {
        let core = HistogramCore::new();
        for us in [0, 1, 5, 5, 1000] {
            core.observe(us);
        }
        assert_eq!(core.count.load(Ordering::Relaxed), 5);
        assert_eq!(core.sum_us.load(Ordering::Relaxed), 1011);
        assert_eq!(core.max_us.load(Ordering::Relaxed), 1000);
        assert_eq!(core.buckets[bucket_index(5)].load(Ordering::Relaxed), 2);
    }

    #[test]
    fn snapshot_value_shape() {
        let snap = Snapshot {
            counters: vec![("exec.tasks".into(), 7)],
            gauges: vec![("serve.queue_depth".into(), -1)],
            histograms: vec![(
                "exec.map_us".into(),
                HistogramSnapshot {
                    count: 2,
                    sum_us: 10,
                    max_us: 8,
                    buckets: vec![(3, 1), (15, 1)],
                },
            )],
        };
        let value = snap.to_value();
        assert_eq!(
            value
                .field("counters")
                .unwrap()
                .field("exec.tasks")
                .unwrap(),
            &Value::UInt(7)
        );
        assert_eq!(
            value
                .field("gauges")
                .unwrap()
                .field("serve.queue_depth")
                .unwrap(),
            &Value::Int(-1)
        );
        let hist = value.field("histograms").unwrap().field("exec.map_us");
        assert_eq!(hist.unwrap().field("count").unwrap(), &Value::UInt(2));
        assert_eq!(snap.counter("exec.tasks"), Some(7));
        assert!(!snap.is_empty());
        assert!(Snapshot::default().is_empty());
    }
}
