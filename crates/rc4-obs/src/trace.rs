//! Span-based structured tracing, flushed as JSONL.
//!
//! # Wire format (`rc4-obs-trace`, version 1)
//!
//! One JSON object per line. The first line is a meta header:
//!
//! ```json
//! {"type":"meta","schema":"rc4-obs-trace","version":1}
//! ```
//!
//! Every completed span is one line, written when its guard drops:
//!
//! ```json
//! {"type":"span","name":"exec.map","id":5,"parent":2,"thread":1,
//!  "depth":1,"start_us":120,"dur_us":480,"kv":{"items":"64"}}
//! ```
//!
//! * `id` — process-unique span ID (1-based); `parent` is the enclosing
//!   span's ID on the same thread, `0` for a root span.
//! * `thread` — a small per-process thread ordinal (assigned on a thread's
//!   first span), *not* an OS thread ID.
//! * `start_us` / `dur_us` — microseconds since the trace epoch / duration.
//! * `kv` — optional string-valued attributes from [`crate::kv!`].
//!
//! **Versioning policy:** additive fields may appear within version 1;
//! consumers must ignore unknown fields and unknown `type` values. Any
//! change to the meaning of an existing field bumps `version`.
//!
//! # Buffering
//!
//! Spans are serialized into a bounded per-thread buffer and appended to
//! the global writer (under its mutex) whenever the buffer fills
//! ([`FLUSH_EVENTS`]), whenever a thread's span stack empties, and when the
//! thread exits — so scoped worker threads never lose events. Call
//! [`flush`] before process exit to push the calling thread's tail and
//! flush the underlying writer.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::Value;

/// Schema identifier carried by the meta header line.
pub const TRACE_SCHEMA: &str = "rc4-obs-trace";
/// Current schema version.
pub const TRACE_VERSION: u64 = 1;
/// Buffered span lines per thread before an append to the shared writer.
pub const FLUSH_EVENTS: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SHARED: OnceLock<TraceShared> = OnceLock::new();

struct TraceShared {
    writer: Mutex<Box<dyn Write + Send>>,
    epoch: Instant,
    next_span_id: AtomicU64,
    next_thread_id: AtomicU64,
}

/// Whether a trace writer is installed; the single branch every disabled
/// [`Span::enter`] pays.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `path` as the trace output (truncating it) and enables tracing.
///
/// # Errors
///
/// The file-creation error, or `AlreadyExists` when a writer was installed
/// earlier — tracing is enabled once per process.
pub fn init_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    if init_writer(Box::new(BufWriter::new(file))) {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "trace writer already installed",
        ))
    }
}

/// Installs an arbitrary writer (tests use an in-memory sink) and enables
/// tracing; writes the meta header line. Returns `false` when a writer was
/// installed earlier (tracing is enabled once per process).
pub fn init_writer(writer: Box<dyn Write + Send>) -> bool {
    let shared = TraceShared {
        writer: Mutex::new(writer),
        epoch: Instant::now(),
        next_span_id: AtomicU64::new(0),
        next_thread_id: AtomicU64::new(0),
    };
    if SHARED.set(shared).is_err() {
        return false;
    }
    let shared = SHARED.get().expect("just installed");
    {
        let mut writer = shared.writer.lock().expect("trace writer lock poisoned");
        let _ = writeln!(
            writer,
            "{{\"type\":\"meta\",\"schema\":\"{TRACE_SCHEMA}\",\"version\":{TRACE_VERSION}}}"
        );
    }
    ENABLED.store(true, Ordering::SeqCst);
    true
}

/// Flushes the calling thread's buffered spans and the underlying writer.
/// Safe to call at any time; a no-op while tracing is disabled.
pub fn flush() {
    if !is_enabled() {
        return;
    }
    BUF.with(|buf| flush_lines(&mut buf.borrow_mut()));
    if let Some(shared) = SHARED.get() {
        let _ = shared
            .writer
            .lock()
            .expect("trace writer lock poisoned")
            .flush();
    }
}

struct ThreadBuf {
    /// Per-process thread ordinal, assigned on first span.
    thread: Option<u64>,
    /// IDs of the open spans on this thread, innermost last.
    stack: Vec<u64>,
    /// Completed span lines (newline-terminated) awaiting an append.
    lines: String,
    pending: usize,
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf {
            thread: None,
            stack: Vec::new(),
            lines: String::new(),
            pending: 0,
        })
    };
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        flush_lines(self);
    }
}

fn flush_lines(buf: &mut ThreadBuf) {
    if buf.pending == 0 {
        return;
    }
    if let Some(shared) = SHARED.get() {
        let mut writer = shared.writer.lock().expect("trace writer lock poisoned");
        let _ = writer.write_all(buf.lines.as_bytes());
    }
    buf.lines.clear();
    buf.pending = 0;
}

/// An open span: created by [`Span::enter`], recorded when dropped. The
/// disabled form holds `None` and does nothing on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    thread: u64,
    depth: u64,
    start_us: u64,
    kv: Vec<(&'static str, String)>,
}

impl Span {
    /// Opens a span named `name`; the guard records it when dropped.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !is_enabled() {
            return Span(None);
        }
        Span(Some(ActiveSpan::begin(name, Vec::new())))
    }

    /// Opens a span with lazy key/value attributes (see [`crate::kv!`]);
    /// `kv` is only evaluated when tracing is enabled.
    #[inline]
    pub fn enter_with(
        name: &'static str,
        kv: impl FnOnce() -> Vec<(&'static str, String)>,
    ) -> Span {
        if !is_enabled() {
            return Span(None);
        }
        Span(Some(ActiveSpan::begin(name, kv())))
    }
}

impl ActiveSpan {
    fn begin(name: &'static str, kv: Vec<(&'static str, String)>) -> ActiveSpan {
        let shared = SHARED.get().expect("tracing enabled without a writer");
        let id = shared.next_span_id.fetch_add(1, Ordering::Relaxed) + 1;
        let (parent, thread, depth) = BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            let parent = buf.stack.last().copied().unwrap_or(0);
            let thread = *buf
                .thread
                .get_or_insert_with(|| shared.next_thread_id.fetch_add(1, Ordering::Relaxed) + 1);
            let depth = buf.stack.len() as u64;
            buf.stack.push(id);
            (parent, thread, depth)
        });
        ActiveSpan {
            name,
            id,
            parent,
            thread,
            depth,
            start_us: shared.epoch.elapsed().as_micros() as u64,
            kv,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let shared = SHARED.get().expect("tracing enabled without a writer");
        let end_us = shared.epoch.elapsed().as_micros() as u64;
        let mut fields = vec![
            ("type".to_string(), Value::Str("span".into())),
            ("name".to_string(), Value::Str(active.name.into())),
            ("id".to_string(), Value::UInt(active.id)),
            ("parent".to_string(), Value::UInt(active.parent)),
            ("thread".to_string(), Value::UInt(active.thread)),
            ("depth".to_string(), Value::UInt(active.depth)),
            ("start_us".to_string(), Value::UInt(active.start_us)),
            (
                "dur_us".to_string(),
                Value::UInt(end_us.saturating_sub(active.start_us)),
            ),
        ];
        if !active.kv.is_empty() {
            fields.push((
                "kv".to_string(),
                Value::Object(
                    active
                        .kv
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), Value::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        let line = serde_json::to_string(&Value::Object(fields)).expect("span line serializes");
        BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            // Guards drop strictly LIFO within a thread, so the top of the
            // stack is this span (spans must not be sent across threads).
            debug_assert_eq!(buf.stack.last().copied(), Some(active.id));
            buf.stack.pop();
            buf.lines.push_str(&line);
            buf.lines.push('\n');
            buf.pending += 1;
            if buf.pending >= FLUSH_EVENTS || buf.stack.is_empty() {
                flush_lines(&mut buf);
            }
        });
    }
}
