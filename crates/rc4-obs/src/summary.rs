//! Offline aggregation of a trace JSONL file (`repro trace summarize`).
//!
//! Groups span lines by name and reports count / total / mean / p95 / max
//! durations, so a trace is readable without external tooling. Unknown
//! `type` values and unknown fields are skipped per the version-1 schema
//! policy; malformed lines and schema mismatches are hard errors.

use std::collections::BTreeMap;

use serde::Value;

use crate::trace::{TRACE_SCHEMA, TRACE_VERSION};

/// Aggregated statistics of one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Sum of `dur_us` over all spans.
    pub total_us: u64,
    /// `total_us / count`, rounded down.
    pub mean_us: u64,
    /// Exact nearest-rank 95th percentile of `dur_us`.
    pub p95_us: u64,
    /// Largest `dur_us`.
    pub max_us: u64,
}

/// A whole trace file, aggregated. Spans are sorted by total time,
/// largest first (ties by name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Per-name statistics.
    pub spans: Vec<SpanStats>,
    /// Total span lines aggregated.
    pub span_lines: u64,
    /// Schema version from the meta header (`None` when the header is
    /// missing — tolerated for truncated traces).
    pub version: Option<u64>,
}

fn u64_field(value: &Value, name: &str, line_no: usize) -> Result<u64, String> {
    match value.field(name) {
        Ok(Value::UInt(n)) => Ok(*n),
        _ => Err(format!("line {line_no}: span lacks integer `{name}`")),
    }
}

/// Aggregates the JSONL text of a trace file.
///
/// # Errors
///
/// A message naming the first offending line: malformed JSON, a span line
/// without `name`/`dur_us`, a meta header for a different schema, or a
/// version newer than this build understands.
pub fn summarize_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut durations: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut version = None;
    let mut span_lines = 0u64;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {line_no}: malformed JSON: {e}"))?;
        let kind = match value.field("type") {
            Ok(Value::Str(s)) => s.clone(),
            _ => return Err(format!("line {line_no}: missing `type` field")),
        };
        match kind.as_str() {
            "meta" => {
                match value.field("schema") {
                    Ok(Value::Str(s)) if s == TRACE_SCHEMA => {}
                    Ok(Value::Str(s)) => {
                        return Err(format!(
                            "line {line_no}: schema `{s}` is not `{TRACE_SCHEMA}`"
                        ))
                    }
                    _ => return Err(format!("line {line_no}: meta lacks `schema`")),
                }
                let v = u64_field(&value, "version", line_no)?;
                if v > TRACE_VERSION {
                    return Err(format!(
                        "line {line_no}: trace version {v} is newer than supported {TRACE_VERSION}"
                    ));
                }
                version = Some(v);
            }
            "span" => {
                let name = match value.field("name") {
                    Ok(Value::Str(s)) => s.clone(),
                    _ => return Err(format!("line {line_no}: span lacks `name`")),
                };
                let dur = u64_field(&value, "dur_us", line_no)?;
                durations.entry(name).or_default().push(dur);
                span_lines += 1;
            }
            // Forward compatibility: later minor revisions may add line
            // kinds; they aggregate as nothing rather than failing.
            _ => {}
        }
    }
    let mut spans: Vec<SpanStats> = durations
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            let count = durs.len() as u64;
            let total_us: u64 = durs.iter().sum();
            // Nearest-rank percentile: the smallest value with at least 95%
            // of observations at or below it.
            let p95_idx = ((count * 95).div_ceil(100)).max(1) - 1;
            SpanStats {
                count,
                total_us,
                mean_us: total_us / count,
                p95_us: durs[p95_idx as usize],
                max_us: *durs.last().expect("non-empty duration list"),
                name,
            }
        })
        .collect();
    spans.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    Ok(TraceSummary {
        spans,
        span_lines,
        version,
    })
}

impl TraceSummary {
    /// Renders the per-span-name table as aligned text.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<36} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
            "span", "count", "total_us", "mean_us", "p95_us", "max_us"
        ));
        for s in &self.spans {
            out.push_str(&format!(
                "{:<36} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
                s.name, s.count, s.total_us, s.mean_us, s.p95_us, s.max_us
            ));
        }
        out.push_str(&format!(
            "{} span(s) across {} name(s)\n",
            self.span_lines,
            self.spans.len()
        ));
        out
    }

    /// The JSON form (`repro trace summarize --json`).
    pub fn to_value(&self) -> Value {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".into(), Value::Str(s.name.clone())),
                    ("count".into(), Value::UInt(s.count)),
                    ("total_us".into(), Value::UInt(s.total_us)),
                    ("mean_us".into(), Value::UInt(s.mean_us)),
                    ("p95_us".into(), Value::UInt(s.p95_us)),
                    ("max_us".into(), Value::UInt(s.max_us)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::Str(TRACE_SCHEMA.into())),
            (
                "version".into(),
                self.version.map_or(Value::Null, Value::UInt),
            ),
            ("span_lines".into(), Value::UInt(self.span_lines)),
            ("spans".into(), Value::Array(spans)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, dur_us: u64) -> String {
        format!(
            "{{\"type\":\"span\",\"name\":\"{name}\",\"id\":1,\"parent\":0,\
             \"thread\":1,\"depth\":0,\"start_us\":0,\"dur_us\":{dur_us}}}"
        )
    }

    #[test]
    fn aggregates_count_total_mean_p95_max() {
        let mut text =
            format!("{{\"type\":\"meta\",\"schema\":\"{TRACE_SCHEMA}\",\"version\":1}}\n");
        for dur in 1..=100u64 {
            text.push_str(&span_line("exec.map", dur));
            text.push('\n');
        }
        text.push_str(&span_line("store.load", 7));
        text.push('\n');
        let summary = summarize_jsonl(&text).expect("valid trace");
        assert_eq!(summary.version, Some(1));
        assert_eq!(summary.span_lines, 101);
        assert_eq!(summary.spans.len(), 2);
        // exec.map has the larger total, so it sorts first.
        let map = &summary.spans[0];
        assert_eq!(map.name, "exec.map");
        assert_eq!(map.count, 100);
        assert_eq!(map.total_us, 5050);
        assert_eq!(map.mean_us, 50);
        assert_eq!(map.p95_us, 95);
        assert_eq!(map.max_us, 100);
        let load = &summary.spans[1];
        assert_eq!((load.count, load.p95_us, load.max_us), (1, 7, 7));
        let table = summary.render_table();
        assert!(table.contains("exec.map"), "{table}");
        assert!(table.contains("101 span(s)"), "{table}");
        let json = serde_json::to_string(&summary.to_value()).unwrap();
        assert!(json.contains("\"p95_us\":95"), "{json}");
    }

    #[test]
    fn unknown_line_kinds_are_skipped() {
        let text = format!(
            "{}\n{{\"type\":\"annotation\",\"note\":\"hi\"}}\n",
            span_line("x", 3)
        );
        let summary = summarize_jsonl(&text).expect("unknown kinds tolerated");
        assert_eq!(summary.span_lines, 1);
        assert_eq!(summary.version, None);
    }

    #[test]
    fn malformed_and_mismatched_inputs_error() {
        assert!(summarize_jsonl("not json\n").is_err());
        assert!(
            summarize_jsonl("{\"type\":\"meta\",\"schema\":\"other\",\"version\":1}\n").is_err()
        );
        assert!(summarize_jsonl(&format!(
            "{{\"type\":\"meta\",\"schema\":\"{TRACE_SCHEMA}\",\"version\":{}}}\n",
            TRACE_VERSION + 1
        ))
        .is_err());
        assert!(summarize_jsonl("{\"type\":\"span\",\"name\":\"x\"}\n").is_err());
    }
}
