//! Observability for the RC4-bias reproduction stack: metrics + tracing.
//!
//! Two independent facilities, both **process-global and disabled by
//! default**, both built only on `std` atomics plus the vendored serde
//! subset (no tokio, no tracing crate):
//!
//! * [`metrics`] — a registry of named counters, gauges and fixed-bucket
//!   histograms. Mutations are atomic adds; the name table is interned
//!   lazily behind a mutex the first time a metric is touched. Until
//!   [`metrics::enable`] is called every mutation returns after a single
//!   relaxed atomic load and the registry stays empty, so a snapshot of a
//!   never-enabled process is empty by construction.
//! * [`trace`] — span-based structured tracing. [`trace::Span::enter`]
//!   returns a guard that records wall-time and parent/child nesting into a
//!   bounded per-thread buffer, flushed as JSONL to the writer installed by
//!   [`trace::init_file`] / [`trace::init_writer`]. Until a writer is
//!   installed the guard is a no-op `Option::None` that allocates nothing,
//!   so instrumented hot paths cost a few nanoseconds when tracing is off —
//!   the determinism contract and the committed BENCH numbers are untouched.
//! * [`summary`] — offline aggregation of a trace JSONL file into a
//!   per-span-name table (count / total / mean / p95 / max), backing
//!   `repro trace summarize`.
//!
//! # Why no-op by default matters
//!
//! The workspace pins two contracts that an observability layer could
//! silently break: `repro run all --json` must stay byte-identical at any
//! worker count, and the BENCH perf gate compares against committed
//! numbers. Neither facility ever writes to stdout, and with both disabled
//! the instrumented code paths perform no allocation, no locking and no
//! clock reads (pinned by the `disabled_noop` integration test with a
//! counting allocator).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod summary;
pub mod trace;

pub use trace::Span;

/// Builds the lazy key/value closure accepted by [`trace::Span::enter_with`].
///
/// The closure — and therefore every value's `to_string()` — is only
/// evaluated when tracing is enabled, so `kv!` arguments cost nothing on the
/// disabled path.
///
/// ```
/// use rc4_obs::{kv, Span};
/// let keys = 4096u64;
/// let _span = Span::enter_with("store.load_or_generate", kv! {
///     "kind" => "per-tsc",
///     "keys" => keys,
/// });
/// ```
#[macro_export]
macro_rules! kv {
    { $($key:literal => $val:expr),* $(,)? } => {
        || ::std::vec![ $( ($key, ($val).to_string()) ),* ]
    };
}
