//! The load-or-generate dataset cache.
//!
//! A cache directory holds complete shard files. Lookups are keyed by the
//! triple `(kind, shape, GenerationConfig)` — everything that determines a
//! dataset's contents — hashed with SHA-256 into a canonical file name, so a
//! *hit is guaranteed to hold exactly the counts a fresh generation with that
//! configuration would produce* (the file's header is additionally compared
//! field-for-field against the request; the hash only names the file).
//!
//! Files that were produced by `dataset merge` under an arbitrary name are
//! found by a fallback scan over `*.ds` files in the directory, comparing
//! headers. Foreign files (bad magic, other versions) are skipped during the
//! scan; a *matching* file that fails full validation (e.g. CRC mismatch)
//! surfaces as a typed error instead of being silently regenerated, so cache
//! corruption is noticed rather than papered over.

use std::path::{Path, PathBuf};
use std::time::Instant;

use crypto_prims::{sha256::Sha256, to_hex, Digest};
use rc4_stats::{DatasetError, GenerationConfig, StorableDataset};

use crate::format::ShardHeader;
use crate::shard::{peek_header, read_shard, write_shard};

/// A directory of complete, reusable dataset shards.
#[derive(Debug, Clone)]
pub struct DatasetCache {
    dir: PathBuf,
}

impl DatasetCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, DatasetError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| DatasetError::io(&dir, e))?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache key for a `(kind, shape, config)` triple: the first 16 hex
    /// characters of a SHA-256 over a canonical byte encoding.
    pub fn cache_key(kind: &str, shape: &[u64], config: &GenerationConfig) -> String {
        let mut hasher = Sha256::new();
        hasher.update(kind.as_bytes());
        hasher.update(&[0]);
        hasher.update(&(shape.len() as u64).to_le_bytes());
        for &s in shape {
            hasher.update(&s.to_le_bytes());
        }
        hasher.update(&config.keys.to_le_bytes());
        hasher.update(&(config.workers as u64).to_le_bytes());
        hasher.update(&config.seed.to_le_bytes());
        hasher.update(&(config.key_len as u64).to_le_bytes());
        to_hex(&hasher.finalize()[..8])
    }

    /// The canonical path a dataset of this key is stored under.
    pub fn canonical_path(&self, kind: &str, shape: &[u64], config: &GenerationConfig) -> PathBuf {
        self.dir.join(format!(
            "{kind}-{}.ds",
            Self::cache_key(kind, shape, config)
        ))
    }

    /// Whether `header` is exactly the complete dataset `(kind, shape,
    /// config)` describes.
    fn matches<D: StorableDataset>(
        header: &ShardHeader,
        shape: &[u64],
        config: &GenerationConfig,
    ) -> bool {
        header.kind == D::kind()
            && header.shape == shape
            && header.config == *config
            && header.worker_lo == 0
            && header.worker_hi == config.workers as u64
            && header.is_complete()
    }

    /// Looks up the complete dataset for `(D, shape, config)`.
    ///
    /// Returns `Ok(None)` on a miss. The canonical file name is tried first;
    /// otherwise every `*.ds` file in the directory is header-scanned, so
    /// merged masters dropped into the cache under any name are found.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Corrupt`] when a file that matches the request
    /// fails validation (truncation, CRC mismatch, header inconsistency) —
    /// never silently ignores a damaged matching entry — and
    /// [`DatasetError::Io`] on directory-read failures.
    pub fn load<D: StorableDataset>(
        &self,
        shape: &[u64],
        config: &GenerationConfig,
    ) -> Result<Option<D>, DatasetError> {
        let _span = rc4_obs::Span::enter_with(
            "store.load",
            rc4_obs::kv! {
                "kind" => D::kind(),
                "keys" => config.keys,
            },
        );
        let read_start = rc4_obs::metrics::is_enabled().then(Instant::now);
        let hit = |path: &Path, dataset: D| {
            if let Some(start) = read_start {
                rc4_obs::metrics::counter_add("store.cache.hit", 1);
                rc4_obs::metrics::counter_add(
                    "store.read_bytes",
                    std::fs::metadata(path).map_or(0, |m| m.len()),
                );
                rc4_obs::metrics::observe_us("store.read_us", start.elapsed().as_micros() as u64);
            }
            Ok(Some(dataset))
        };
        let canonical = self.canonical_path(D::kind(), shape, config);
        if canonical.exists() {
            let shard = read_shard::<D>(&canonical)?;
            if !Self::matches::<D>(&shard.header, shape, config) {
                return Err(DatasetError::corrupt(
                    &canonical,
                    "cache entry does not match the requested dataset \
                     (foreign file under a canonical cache name?)",
                ));
            }
            return hit(&canonical, shard.dataset);
        }
        let entries = std::fs::read_dir(&self.dir).map_err(|e| DatasetError::io(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| DatasetError::io(&self.dir, e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("ds") {
                continue;
            }
            // Foreign or unreadable headers just mean "not a hit".
            let Ok(header) = peek_header(&path) else {
                continue;
            };
            if Self::matches::<D>(&header, shape, config) {
                let shard = read_shard::<D>(&path)?;
                return hit(&path, shard.dataset);
            }
        }
        rc4_obs::metrics::counter_add("store.cache.miss", 1);
        Ok(None)
    }

    /// Stores a freshly generated complete dataset under its canonical name,
    /// returning the path written.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when the dataset does not hold
    /// exactly `config.keys` keystreams (a partial dataset must never enter
    /// the cache) and [`DatasetError::Io`] on write failures.
    pub fn store<D: StorableDataset>(
        &self,
        dataset: &D,
        config: &GenerationConfig,
    ) -> Result<PathBuf, DatasetError> {
        if dataset.recorded_keystreams() != config.keys {
            return Err(DatasetError::InvalidConfig(format!(
                "refusing to cache a partial dataset ({} of {} keystreams)",
                dataset.recorded_keystreams(),
                config.keys
            )));
        }
        let shape = dataset.shape_params();
        let mut header = ShardHeader::new(
            D::kind(),
            *config,
            shape.clone(),
            0,
            config.workers as u64,
            dataset.cell_count() as u64,
        )?;
        header.progress = (0..config.workers as u64)
            .map(|w| crate::format::keys_for_worker(config, w))
            .collect();
        let path = self.canonical_path(D::kind(), &shape, config);
        let _span = rc4_obs::Span::enter_with(
            "store.store",
            rc4_obs::kv! {
                "kind" => D::kind(),
                "keys" => config.keys,
            },
        );
        let write_start = rc4_obs::metrics::is_enabled().then(Instant::now);
        // Write through a unique temp name and rename (write_shard already
        // does); overwriting an existing entry with identical contents is
        // harmless.
        write_shard(&path, &header, dataset)?;
        if let Some(start) = write_start {
            rc4_obs::metrics::counter_add("store.cache.stored", 1);
            rc4_obs::metrics::counter_add(
                "store.write_bytes",
                std::fs::metadata(&path).map_or(0, |m| m.len()),
            );
            rc4_obs::metrics::observe_us("store.write_us", start.elapsed().as_micros() as u64);
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc4_stats::{single::SingleByteDataset, worker::generate, KeystreamCollector};

    fn temp_cache(name: &str) -> DatasetCache {
        let dir =
            std::env::temp_dir().join(format!("rc4-store-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DatasetCache::open(dir).unwrap()
    }

    fn generated(config: &GenerationConfig) -> SingleByteDataset {
        let mut ds = SingleByteDataset::new(4);
        generate(&mut ds, config).unwrap();
        ds
    }

    #[test]
    fn store_then_load_hits_and_matches() {
        let cache = temp_cache("hit");
        let config = GenerationConfig::with_keys(500).seed(9);
        let ds = generated(&config);
        let path = cache.store(&ds, &config).unwrap();
        assert!(path.exists());

        let hit: Option<SingleByteDataset> = cache.load(&ds.shape_params(), &config).unwrap();
        let hit = hit.expect("canonical hit");
        assert_eq!(hit.counts_at(2), ds.counts_at(2));
        assert_eq!(hit.keystreams(), 500);

        // Different seed, shape or kind => miss.
        let other = GenerationConfig::with_keys(500).seed(10);
        assert!(cache
            .load::<SingleByteDataset>(&ds.shape_params(), &other)
            .unwrap()
            .is_none());
        assert!(cache
            .load::<SingleByteDataset>(&[8], &config)
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn scan_finds_merged_masters_under_any_name() {
        let cache = temp_cache("scan");
        let config = GenerationConfig::with_keys(300).seed(3);
        let ds = generated(&config);
        let canonical = cache.store(&ds, &config).unwrap();
        let renamed = cache.dir().join("master-from-merge.ds");
        std::fs::rename(&canonical, &renamed).unwrap();

        let hit: Option<SingleByteDataset> = cache.load(&ds.shape_params(), &config).unwrap();
        assert!(hit.is_some(), "scan should find the renamed entry");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn partial_datasets_are_refused() {
        let cache = temp_cache("partial");
        let config = GenerationConfig::with_keys(1000).seed(3);
        let short = generated(&GenerationConfig::with_keys(10).seed(3));
        assert!(matches!(
            cache.store(&short, &config),
            Err(DatasetError::InvalidConfig(msg)) if msg.contains("partial")
        ));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_matching_entry_is_an_error_not_a_miss() {
        let cache = temp_cache("corrupt");
        let config = GenerationConfig::with_keys(200).seed(4);
        let ds = generated(&config);
        let path = cache.store(&ds, &config).unwrap();
        // Flip one byte in the cell area.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            cache.load::<SingleByteDataset>(&ds.shape_params(), &config),
            Err(DatasetError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn foreign_files_are_skipped_by_the_scan() {
        let cache = temp_cache("foreign");
        std::fs::write(cache.dir().join("notes.ds"), b"not a shard").unwrap();
        std::fs::write(cache.dir().join("readme.txt"), b"hello").unwrap();
        let config = GenerationConfig::with_keys(100).seed(5);
        let miss: Option<SingleByteDataset> = cache.load(&[4], &config).unwrap();
        assert!(miss.is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
