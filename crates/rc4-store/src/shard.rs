//! Reading and writing shard files.
//!
//! Writes are atomic: the file is assembled in a sibling `*.tmp` file and
//! renamed over the destination, so a crash mid-checkpoint leaves the
//! previous complete checkpoint intact. Reads validate everything — magic,
//! format version, header consistency, cell count, file length and the
//! CRC-32 trailer — before any cell reaches a dataset, and surface failures
//! as typed [`DatasetError::Io`] / [`DatasetError::Corrupt`] errors naming
//! the path.

use std::fs;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crypto_prims::crc32::Crc32;
use rc4_stats::{DatasetError, StorableDataset};

use crate::codec::{CellEncoding, CellReader, DeltaVarintDecoder, DeltaVarintEncoder};
use crate::format::{ShardHeader, MAGIC, MAX_HEADER_LEN, PREAMBLE_LEN};

/// A fully loaded shard: its header plus the reconstructed dataset.
#[derive(Debug, Clone)]
pub struct ShardFile<D> {
    /// The validated on-disk header.
    pub header: ShardHeader,
    /// The dataset, with cells and keystream totals restored.
    pub dataset: D,
    /// The cell encoding the file was stored under. Resume preserves it, so
    /// a compressed shard stays compressed across checkpoints.
    pub encoding: CellEncoding,
}

/// Sibling temp path used for atomic writes, salted with the process id and
/// a counter so concurrent writers of the same destination (e.g. two runs
/// filling one shared cache entry) never interleave into one temp file —
/// last rename wins with a complete file either way.
fn tmp_path(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(
        ".{}-{}.tmp",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    path.with_file_name(name)
}

/// Serializes `dataset` under `header` to `path` atomically, with raw
/// (format version 1) cells — the default encoding every byte-identity
/// contract is pinned against. See [`write_shard_with`] for compression.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on file-system failures,
/// [`DatasetError::Serialization`] if the header fails to encode, and
/// [`DatasetError::InvalidConfig`] if `header.cells` disagrees with the
/// dataset's cell count (a caller bug worth catching before it reaches disk).
pub fn write_shard<D: StorableDataset>(
    path: &Path,
    header: &ShardHeader,
    dataset: &D,
) -> Result<(), DatasetError> {
    write_shard_with(path, header, dataset, CellEncoding::Raw)
}

/// Serializes `dataset` under `header` to `path` atomically, choosing the
/// cell encoding (and thereby the format version actually written).
///
/// # Errors
///
/// As [`write_shard`].
pub fn write_shard_with<D: StorableDataset>(
    path: &Path,
    header: &ShardHeader,
    dataset: &D,
    encoding: CellEncoding,
) -> Result<(), DatasetError> {
    if header.cells != dataset.cell_count() as u64 {
        return Err(DatasetError::InvalidConfig(format!(
            "header declares {} cells but the dataset holds {}",
            header.cells,
            dataset.cell_count()
        )));
    }
    let header_bytes = header_json_bytes(header)?;
    let header_len = header_bytes.len() as u32;

    let tmp = tmp_path(path);
    let file = fs::File::create(&tmp).map_err(|e| DatasetError::io(&tmp, e))?;
    let mut out = BufWriter::new(file);
    let mut crc = Crc32::new();
    let mut emit = |out: &mut BufWriter<fs::File>, bytes: &[u8]| -> Result<(), DatasetError> {
        crc.update(bytes);
        out.write_all(bytes).map_err(|e| DatasetError::io(&tmp, e))
    };

    emit(&mut out, &MAGIC)?;
    emit(&mut out, &encoding.format_version().to_le_bytes())?;
    emit(&mut out, &header_len.to_le_bytes())?;
    emit(&mut out, &header_bytes)?;
    // Cells, buffered in ~512 KiB chunks so CRC and write syscalls both see
    // large runs instead of per-cell pieces. The delta chain of the
    // compressed encoding runs across slice boundaries, exactly as the
    // decoder expects.
    let mut buf = Vec::with_capacity(1 << 19);
    let mut encoder = DeltaVarintEncoder::new();
    for slice in dataset.cell_slices() {
        for &cell in slice {
            match encoding {
                CellEncoding::Raw => buf.extend_from_slice(&cell.to_le_bytes()),
                CellEncoding::DeltaVarint => encoder.push(cell, &mut buf),
            }
            if buf.len() >= (1 << 19) {
                emit(&mut out, &buf)?;
                buf.clear();
            }
        }
    }
    if !buf.is_empty() {
        emit(&mut out, &buf)?;
    }
    let digest = crc.finalize();
    out.write_all(&digest.to_le_bytes())
        .map_err(|e| DatasetError::io(&tmp, e))?;
    out.flush().map_err(|e| DatasetError::io(&tmp, e))?;
    out.into_inner()
        .map_err(|e| DatasetError::io(&tmp, e.to_string()))?
        .sync_all()
        .map_err(|e| DatasetError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| DatasetError::io(path, e))?;
    Ok(())
}

/// Serializes a header to its JSON bytes, enforcing the format's length
/// limit (the single place both the in-memory and the streaming writer get
/// their header bytes from, so they cannot diverge).
fn header_json_bytes(header: &ShardHeader) -> Result<Vec<u8>, DatasetError> {
    let header_json = serde_json::to_string(header)
        .map_err(|e| DatasetError::Serialization(format!("shard header: {e}")))?;
    if header_json.len() > MAX_HEADER_LEN {
        return Err(DatasetError::InvalidConfig(format!(
            "shard header would be {} bytes, over the {MAX_HEADER_LEN}-byte format limit \
             (usually an extreme worker count; split the run into more shards)",
            header_json.len()
        )));
    }
    Ok(header_json.into_bytes())
}

/// A streaming, window-at-a-time shard *writer* — the output half of the
/// out-of-core merge, mirroring [`ShardCellStream`] on the input side.
///
/// Cells are encoded and CRC'd as they arrive; nothing is visible at the
/// destination path until [`ShardCellWriter::finish`] has written the CRC-32
/// trailer, synced, and atomically renamed the temp file into place. Dropping
/// an unfinished writer removes the temp file, so an aborted merge leaves no
/// partial output behind.
#[derive(Debug)]
pub struct ShardCellWriter {
    path: PathBuf,
    tmp: Option<PathBuf>,
    out: BufWriter<fs::File>,
    crc: Crc32,
    encoding: CellEncoding,
    encoder: DeltaVarintEncoder,
    buf: Vec<u8>,
    remaining: u64,
    bytes_written: u64,
}

impl ShardCellWriter {
    /// Cells the header still expects before [`ShardCellWriter::finish`] is
    /// allowed.
    pub fn remaining_cells(&self) -> u64 {
        self.remaining
    }

    /// Encoded bytes produced so far (the merge's write-bytes telemetry).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn emit(&mut self, flush_threshold: usize) -> Result<(), DatasetError> {
        if self.buf.is_empty() || self.buf.len() < flush_threshold {
            return Ok(());
        }
        self.crc.update(&self.buf);
        self.bytes_written += self.buf.len() as u64;
        if let Err(e) = self.out.write_all(&self.buf) {
            let tmp = self.tmp.as_deref().expect("unfinished writer has a tmp");
            return Err(DatasetError::io(tmp, e));
        }
        self.buf.clear();
        Ok(())
    }

    /// Appends `cells` to the cell section.
    ///
    /// # Errors
    ///
    /// [`DatasetError::InvalidConfig`] when more cells arrive than the header
    /// declared; [`DatasetError::Io`] on write failures.
    pub fn write_cells(&mut self, cells: &[u64]) -> Result<(), DatasetError> {
        if cells.len() as u64 > self.remaining {
            return Err(DatasetError::InvalidConfig(format!(
                "write of {} cells exceeds the {} the header has room for",
                cells.len(),
                self.remaining
            )));
        }
        for &cell in cells {
            match self.encoding {
                CellEncoding::Raw => self.buf.extend_from_slice(&cell.to_le_bytes()),
                CellEncoding::DeltaVarint => self.encoder.push(cell, &mut self.buf),
            }
        }
        self.remaining -= cells.len() as u64;
        self.emit(1 << 19)
    }

    /// Writes the CRC-32 trailer, syncs, and renames the file into place.
    ///
    /// # Errors
    ///
    /// [`DatasetError::InvalidConfig`] when cells are still owed;
    /// [`DatasetError::Io`] on write/sync/rename failures.
    pub fn finish(mut self) -> Result<(), DatasetError> {
        if self.remaining != 0 {
            return Err(DatasetError::InvalidConfig(format!(
                "writer finished with {} of the header's cells unwritten",
                self.remaining
            )));
        }
        self.emit(0)?;
        let tmp = self.tmp.take().expect("finish runs once");
        let digest = self.crc.finalize();
        let write = (|| -> std::io::Result<()> {
            self.out.write_all(&digest.to_le_bytes())?;
            self.out.flush()?;
            self.out.get_ref().sync_all()?;
            Ok(())
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(DatasetError::io(&tmp, e));
        }
        self.bytes_written += 4;
        if let Err(e) = fs::rename(&tmp, &self.path) {
            let _ = fs::remove_file(&tmp);
            return Err(DatasetError::io(&self.path, e));
        }
        Ok(())
    }
}

impl Drop for ShardCellWriter {
    fn drop(&mut self) {
        if let Some(tmp) = self.tmp.take() {
            let _ = fs::remove_file(tmp);
        }
    }
}

/// Opens a streaming shard writer for `header` at `path`.
///
/// The preamble and header are written (to the temp file) immediately; the
/// caller then supplies exactly `header.cells` cells via
/// [`ShardCellWriter::write_cells`] and seals the file with
/// [`ShardCellWriter::finish`].
///
/// # Errors
///
/// [`DatasetError::Corrupt`]-free validation errors when the header is
/// inconsistent, [`DatasetError::Serialization`] if it fails to encode, and
/// [`DatasetError::Io`] on file-system failures.
pub fn create_cells(
    path: &Path,
    header: &ShardHeader,
    encoding: CellEncoding,
) -> Result<ShardCellWriter, DatasetError> {
    header.validate(path)?;
    let header_bytes = header_json_bytes(header)?;
    let tmp = tmp_path(path);
    let file = fs::File::create(&tmp).map_err(|e| DatasetError::io(&tmp, e))?;
    let mut writer = ShardCellWriter {
        path: path.to_path_buf(),
        tmp: Some(tmp),
        out: BufWriter::new(file),
        crc: Crc32::new(),
        encoding,
        encoder: DeltaVarintEncoder::new(),
        buf: Vec::with_capacity(1 << 19),
        remaining: header.cells,
        bytes_written: 0,
    };
    writer.buf.extend_from_slice(&MAGIC);
    writer
        .buf
        .extend_from_slice(&encoding.format_version().to_le_bytes());
    writer
        .buf
        .extend_from_slice(&(header_bytes.len() as u32).to_le_bytes());
    writer.buf.extend_from_slice(&header_bytes);
    writer.emit(0)?;
    Ok(writer)
}

/// Version-check shared by every read path: maps the on-disk format version
/// to its cell encoding, rejecting unknown versions by name.
fn decode_version(path: &Path, version: u32) -> Result<CellEncoding, DatasetError> {
    CellEncoding::from_format_version(version).ok_or_else(|| {
        DatasetError::corrupt(
            path,
            format!(
                "unsupported format version {version} (this build reads {} and {})",
                crate::format::FORMAT_VERSION,
                crate::format::FORMAT_VERSION_COMPRESSED
            ),
        )
    })
}

/// Parses and validates the preamble and header from raw bytes.
fn decode_header(
    path: &Path,
    bytes: &[u8],
) -> Result<(ShardHeader, usize, CellEncoding), DatasetError> {
    if bytes.len() < PREAMBLE_LEN {
        return Err(DatasetError::corrupt(
            path,
            format!("truncated file ({} bytes, preamble needs 16)", bytes.len()),
        ));
    }
    if bytes[..8] != MAGIC {
        return Err(DatasetError::corrupt(
            path,
            "not an rc4-store dataset (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let encoding = decode_version(path, version)?;
    let header_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    if header_len > MAX_HEADER_LEN {
        return Err(DatasetError::corrupt(
            path,
            format!("implausible header length {header_len} (limit {MAX_HEADER_LEN})"),
        ));
    }
    let header_end = PREAMBLE_LEN
        .checked_add(header_len)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| {
            DatasetError::corrupt(path, "truncated file (header extends past end of file)")
        })?;
    let header_json = std::str::from_utf8(&bytes[PREAMBLE_LEN..header_end])
        .map_err(|_| DatasetError::corrupt(path, "shard header is not UTF-8"))?;
    let header: ShardHeader = serde_json::from_str(header_json)
        .map_err(|e| DatasetError::corrupt(path, format!("unreadable shard header: {e}")))?;
    header.validate(path)?;
    Ok((header, header_end, encoding))
}

/// Reads only the header of a shard file (cells are not touched and the CRC
/// is *not* verified — use [`read_shard`] before trusting the counts).
///
/// # Errors
///
/// Returns [`DatasetError::Io`] when the file cannot be read and
/// [`DatasetError::Corrupt`] when the preamble or header is invalid.
pub fn peek_header(path: &Path) -> Result<ShardHeader, DatasetError> {
    peek_shard(path).map(|(h, _)| h)
}

/// As [`peek_header`], additionally reporting the file's cell encoding.
///
/// # Errors
///
/// As [`peek_header`].
pub fn peek_shard(path: &Path) -> Result<(ShardHeader, CellEncoding), DatasetError> {
    let mut file = fs::File::open(path).map_err(|e| DatasetError::io(path, e))?;
    let bytes = read_preamble_and_header(path, &mut file)?;
    decode_header(path, &bytes).map(|(h, _, enc)| (h, enc))
}

/// Reads exactly the preamble + JSON header bytes from the front of `file`,
/// leaving the reader positioned at the first cell byte.
fn read_preamble_and_header(path: &Path, file: &mut fs::File) -> Result<Vec<u8>, DatasetError> {
    let eof_or_io = |e: std::io::Error, what: &str| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            DatasetError::corrupt(path, format!("truncated file ({what})"))
        } else {
            DatasetError::io(path, e)
        }
    };
    let mut preamble = [0u8; PREAMBLE_LEN];
    file.read_exact(&mut preamble)
        .map_err(|e| eof_or_io(e, "shorter than the 16-byte preamble"))?;
    if preamble[..8] != MAGIC {
        return Err(DatasetError::corrupt(
            path,
            "not an rc4-store dataset (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(preamble[8..12].try_into().expect("4 bytes"));
    decode_version(path, version)?;
    let header_len = u32::from_le_bytes(preamble[12..16].try_into().expect("4 bytes")) as usize;
    if header_len > MAX_HEADER_LEN {
        return Err(DatasetError::corrupt(
            path,
            format!("implausible header length {header_len} (limit {MAX_HEADER_LEN})"),
        ));
    }
    let mut bytes = preamble.to_vec();
    bytes.resize(PREAMBLE_LEN + header_len, 0);
    file.read_exact(&mut bytes[PREAMBLE_LEN..])
        .map_err(|e| eof_or_io(e, "header extends past end of file"))?;
    Ok(bytes)
}

/// Reads and fully validates a shard file, reconstructing the dataset.
///
/// # Errors
///
/// * [`DatasetError::Io`] — the file cannot be read.
/// * [`DatasetError::Corrupt`] — bad magic, unsupported format version,
///   truncation, header/shape/cell-count inconsistency, or CRC mismatch.
pub fn read_shard<D: StorableDataset>(path: &Path) -> Result<ShardFile<D>, DatasetError> {
    let bytes = fs::read(path).map_err(|e| DatasetError::io(path, e))?;
    let (header, header_end, encoding) = decode_header(path, &bytes)?;
    if header.kind != D::kind() {
        return Err(DatasetError::corrupt(
            path,
            format!(
                "holds a '{}' dataset, expected '{}'",
                header.kind,
                D::kind()
            ),
        ));
    }
    let mut dataset = D::empty_with_shape(&header.shape)
        .map_err(|e| DatasetError::corrupt(path, format!("invalid stored shape: {e}")))?;
    if dataset.cell_count() as u64 != header.cells {
        return Err(DatasetError::corrupt(
            path,
            format!(
                "header declares {} cells but the shape implies {}",
                header.cells,
                dataset.cell_count()
            ),
        ));
    }
    // Length accounting: raw cells have a fixed byte size, compressed cells
    // occupy whatever the varints take — there the decoder itself must
    // consume the cell section exactly.
    if encoding == CellEncoding::Raw {
        let cells_len = (header.cells as usize)
            .checked_mul(8)
            .ok_or_else(|| DatasetError::corrupt(path, "cell count overflows"))?;
        let expected_len = header_end + cells_len + 4;
        if bytes.len() < expected_len {
            return Err(DatasetError::corrupt(
                path,
                format!(
                    "truncated file ({} bytes, expected {expected_len})",
                    bytes.len()
                ),
            ));
        }
        if bytes.len() > expected_len {
            return Err(DatasetError::corrupt(
                path,
                format!(
                    "trailing bytes after the CRC ({} bytes, expected {expected_len})",
                    bytes.len()
                ),
            ));
        }
    } else if bytes.len() < header_end + 4 {
        return Err(DatasetError::corrupt(
            path,
            format!(
                "truncated file ({} bytes, no room for the CRC trailer)",
                bytes.len()
            ),
        ));
    }
    let crc_at = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes(bytes[crc_at..].try_into().expect("4 bytes"));
    let mut crc = Crc32::new();
    crc.update(&bytes[..crc_at]);
    if crc.finalize() != stored_crc {
        return Err(DatasetError::corrupt(
            path,
            "CRC-32 mismatch (bit flip or torn write)",
        ));
    }
    let mut offset = header_end;
    match encoding {
        CellEncoding::Raw => {
            for slice in dataset.cell_slices_mut() {
                for cell in slice.iter_mut() {
                    *cell =
                        u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"));
                    offset += 8;
                }
            }
        }
        CellEncoding::DeltaVarint => {
            let mut decoder = DeltaVarintDecoder::new();
            for slice in dataset.cell_slices_mut() {
                for cell in slice.iter_mut() {
                    let (value, used) = decoder.next(&bytes[offset..crc_at]).ok_or_else(|| {
                        DatasetError::corrupt(path, "truncated or malformed varint cell")
                    })?;
                    *cell = value;
                    offset += used;
                }
            }
            if offset != crc_at {
                return Err(DatasetError::corrupt(
                    path,
                    format!("{} trailing bytes after the last cell", crc_at - offset),
                ));
            }
        }
    }
    dataset.set_recorded_keystreams(header.keys_done());
    Ok(ShardFile {
        header,
        dataset,
        encoding,
    })
}

/// A streaming, window-at-a-time reader over one shard's cell section.
///
/// Opened by [`open_cells`]; the out-of-core merge runs one per input shard
/// so no full cell table is ever resident. The CRC-32 trailer is verified by
/// [`ShardCellStream::finish`] — cells handed out before that are *unverified*,
/// so callers must only commit derived output after `finish` succeeds.
#[derive(Debug)]
pub struct ShardCellStream {
    path: PathBuf,
    header: ShardHeader,
    encoding: CellEncoding,
    remaining: u64,
    reader: CellReader<fs::File>,
}

impl ShardCellStream {
    /// The shard's validated header.
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// The shard's cell encoding.
    pub fn encoding(&self) -> CellEncoding {
        self.encoding
    }

    /// Cells not yet handed out.
    pub fn remaining_cells(&self) -> u64 {
        self.remaining
    }

    /// Encoded cell-section bytes consumed so far (the merge's read-bytes
    /// telemetry).
    pub fn bytes_read(&self) -> u64 {
        self.reader.bytes_consumed()
    }

    /// Decodes the next `out.len()` cells (caller must not ask for more
    /// than [`ShardCellStream::remaining_cells`]).
    ///
    /// # Errors
    ///
    /// [`DatasetError::Corrupt`] on truncated or malformed cells, or when
    /// over-read; [`DatasetError::Io`] on read failures.
    pub fn read_cells(&mut self, out: &mut [u64]) -> Result<(), DatasetError> {
        if out.len() as u64 > self.remaining {
            return Err(DatasetError::corrupt(
                &self.path,
                format!(
                    "read of {} cells exceeds the {} remaining",
                    out.len(),
                    self.remaining
                ),
            ));
        }
        self.reader
            .read_cells(out)
            .map_err(|msg| crate::codec::corrupt_cells(&self.path, msg))?;
        self.remaining -= out.len() as u64;
        Ok(())
    }

    /// Verifies end-of-stream: every declared cell consumed, exactly one
    /// CRC-32 trailer left, and the digest matching.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Corrupt`] on leftover cells, trailing bytes or a CRC
    /// mismatch; [`DatasetError::Io`] on read failures.
    pub fn finish(self) -> Result<(), DatasetError> {
        if self.remaining != 0 {
            return Err(DatasetError::corrupt(
                &self.path,
                format!("stream finished with {} cells unread", self.remaining),
            ));
        }
        let path = self.path;
        let (mut file, crc, mut trailer) = self.reader.finish();
        file.read_to_end(&mut trailer)
            .map_err(|e| DatasetError::io(&path, e))?;
        if trailer.len() != 4 {
            return Err(DatasetError::corrupt(
                &path,
                format!(
                    "expected a 4-byte CRC trailer after the cells, found {} bytes",
                    trailer.len()
                ),
            ));
        }
        let stored = u32::from_le_bytes(trailer[..4].try_into().expect("4 bytes"));
        if crc.finalize() != stored {
            return Err(DatasetError::corrupt(
                &path,
                "CRC-32 mismatch (bit flip or torn write)",
            ));
        }
        Ok(())
    }
}

/// Opens a shard for streaming cell access without loading it into memory.
///
/// Validates the preamble and header eagerly; cell bytes are decoded lazily
/// through [`ShardCellStream::read_cells`] and integrity-checked at
/// [`ShardCellStream::finish`]. Kind/shape validation against a concrete
/// dataset type is the caller's job (the merge checks the header's kind tag
/// and [`rc4_stats::StorableDataset::cell_count_for_shape`]).
///
/// # Errors
///
/// As [`peek_header`].
pub fn open_cells(path: &Path) -> Result<ShardCellStream, DatasetError> {
    let mut file = fs::File::open(path).map_err(|e| DatasetError::io(path, e))?;
    let bytes = read_preamble_and_header(path, &mut file)?;
    let (header, _, encoding) = decode_header(path, &bytes)?;
    let mut crc = Crc32::new();
    crc.update(&bytes);
    Ok(ShardCellStream {
        path: path.to_path_buf(),
        remaining: header.cells,
        header,
        encoding,
        reader: CellReader::with_crc(file, encoding, crc),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc4_stats::{single::SingleByteDataset, GenerationConfig, KeystreamCollector};

    fn temp_file(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("rc4-store-shard-{}-{name}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir.join("shard.ds")
    }

    fn sample() -> (ShardHeader, SingleByteDataset) {
        let mut ds = SingleByteDataset::new(4);
        ds.record_keystream(&[1, 2, 3, 4]);
        ds.record_keystream(&[1, 9, 3, 4]);
        let mut header = ShardHeader::new(
            "single",
            GenerationConfig::with_keys(2),
            ds.shape_params(),
            0,
            1,
            ds.cell_count() as u64,
        )
        .unwrap();
        header.progress = vec![2];
        (header, ds)
    }

    #[test]
    fn write_read_roundtrip_preserves_everything() {
        let path = temp_file("roundtrip");
        let (header, ds) = sample();
        write_shard(&path, &header, &ds).unwrap();

        let peeked = peek_header(&path).unwrap();
        assert_eq!(peeked, header);

        let loaded: ShardFile<SingleByteDataset> = read_shard(&path).unwrap();
        assert_eq!(loaded.header, header);
        assert_eq!(loaded.dataset.count(1, 1), 2);
        assert_eq!(loaded.dataset.count(2, 9), 1);
        assert_eq!(loaded.dataset.keystreams(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn cell_count_mismatch_is_a_caller_error() {
        let path = temp_file("cellcount");
        let (mut header, ds) = sample();
        header.cells += 1;
        assert!(matches!(
            write_shard(&path, &header, &ds),
            Err(DatasetError::InvalidConfig(_))
        ));
    }

    #[test]
    fn kind_mismatch_is_corrupt() {
        let path = temp_file("kind");
        let (header, ds) = sample();
        write_shard(&path, &header, &ds).unwrap();
        let r: Result<ShardFile<rc4_stats::pairs::PairDataset>, _> = read_shard(&path);
        assert!(matches!(r, Err(DatasetError::Corrupt(msg)) if msg.contains("'single'")));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io() {
        let r: Result<ShardFile<SingleByteDataset>, _> =
            read_shard(Path::new("/nonexistent/rc4-store.ds"));
        assert!(matches!(r, Err(DatasetError::Io(msg)) if msg.contains("rc4-store.ds")));
    }

    #[test]
    fn compressed_shard_roundtrips_cell_for_cell() {
        let dir = std::env::temp_dir().join(format!("rc4-store-v2-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let raw_path = dir.join("raw.ds");
        let v2_path = dir.join("compressed.ds");
        let (header, ds) = sample();
        write_shard(&raw_path, &header, &ds).unwrap();
        write_shard_with(&v2_path, &header, &ds, CellEncoding::DeltaVarint).unwrap();

        // The compressed file is a format-version-2 file and smaller.
        let raw_len = fs::metadata(&raw_path).unwrap().len();
        let v2_len = fs::metadata(&v2_path).unwrap().len();
        assert!(v2_len < raw_len, "compressed {v2_len} >= raw {raw_len}");
        let (peeked, encoding) = peek_shard(&v2_path).unwrap();
        assert_eq!(peeked, header);
        assert_eq!(encoding, CellEncoding::DeltaVarint);

        // Cell-for-cell identical dataset on read-back.
        let raw: ShardFile<SingleByteDataset> = read_shard(&raw_path).unwrap();
        let v2: ShardFile<SingleByteDataset> = read_shard(&v2_path).unwrap();
        assert_eq!(raw.encoding, CellEncoding::Raw);
        assert_eq!(v2.encoding, CellEncoding::DeltaVarint);
        assert_eq!(v2.dataset.cell_slices(), raw.dataset.cell_slices());
        assert_eq!(v2.dataset.keystreams(), raw.dataset.keystreams());

        // Corrupting one cell byte must fail the CRC.
        let mut bytes = fs::read(&v2_path).unwrap();
        let mid = bytes.len() - 6;
        bytes[mid] ^= 0x40;
        fs::write(&v2_path, &bytes).unwrap();
        let r: Result<ShardFile<SingleByteDataset>, _> = read_shard(&v2_path);
        assert!(matches!(r, Err(DatasetError::Corrupt(msg)) if msg.contains("CRC")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_format_version_names_supported_range() {
        let dir = std::env::temp_dir().join(format!("rc4-store-ver-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("future.ds");
        let (header, ds) = sample();
        write_shard(&path, &header, &ds).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 9; // format version 9
        fs::write(&path, &bytes).unwrap();
        for result in [
            peek_header(&path).map(|_| ()),
            read_shard::<SingleByteDataset>(&path).map(|_| ()),
            open_cells(&path).map(|_| ()),
        ] {
            assert!(
                matches!(&result, Err(DatasetError::Corrupt(msg)) if msg.contains("version 9") && msg.contains("1 and 2")),
                "{result:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_stream_yields_the_same_cells_as_a_full_read() {
        let dir = std::env::temp_dir().join(format!("rc4-store-stream-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        for encoding in [CellEncoding::Raw, CellEncoding::DeltaVarint] {
            let path = dir.join(format!("{}.ds", encoding.name()));
            let (header, ds) = sample();
            write_shard_with(&path, &header, &ds, encoding).unwrap();
            let loaded: ShardFile<SingleByteDataset> = read_shard(&path).unwrap();
            let expected: Vec<u64> = loaded
                .dataset
                .cell_slices()
                .into_iter()
                .flat_map(|s| s.iter().copied())
                .collect();

            let mut stream = open_cells(&path).unwrap();
            assert_eq!(stream.header(), &header);
            assert_eq!(stream.encoding(), encoding);
            let mut got = vec![0u64; expected.len()];
            // Windows of 3 cells exercise the chunked path.
            for chunk in got.chunks_mut(3) {
                stream.read_cells(chunk).unwrap();
            }
            assert_eq!(got, expected);
            assert_eq!(stream.remaining_cells(), 0);
            stream.finish().unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
