//! Reading and writing shard files.
//!
//! Writes are atomic: the file is assembled in a sibling `*.tmp` file and
//! renamed over the destination, so a crash mid-checkpoint leaves the
//! previous complete checkpoint intact. Reads validate everything — magic,
//! format version, header consistency, cell count, file length and the
//! CRC-32 trailer — before any cell reaches a dataset, and surface failures
//! as typed [`DatasetError::Io`] / [`DatasetError::Corrupt`] errors naming
//! the path.

use std::fs;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crypto_prims::crc32::Crc32;
use rc4_stats::{DatasetError, StorableDataset};

use crate::format::{ShardHeader, FORMAT_VERSION, MAGIC, MAX_HEADER_LEN, PREAMBLE_LEN};

/// A fully loaded shard: its header plus the reconstructed dataset.
#[derive(Debug, Clone)]
pub struct ShardFile<D> {
    /// The validated on-disk header.
    pub header: ShardHeader,
    /// The dataset, with cells and keystream totals restored.
    pub dataset: D,
}

/// Sibling temp path used for atomic writes, salted with the process id and
/// a counter so concurrent writers of the same destination (e.g. two runs
/// filling one shared cache entry) never interleave into one temp file —
/// last rename wins with a complete file either way.
fn tmp_path(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(
        ".{}-{}.tmp",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    path.with_file_name(name)
}

/// Serializes `dataset` under `header` to `path` atomically.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on file-system failures,
/// [`DatasetError::Serialization`] if the header fails to encode, and
/// [`DatasetError::InvalidConfig`] if `header.cells` disagrees with the
/// dataset's cell count (a caller bug worth catching before it reaches disk).
pub fn write_shard<D: StorableDataset>(
    path: &Path,
    header: &ShardHeader,
    dataset: &D,
) -> Result<(), DatasetError> {
    if header.cells != dataset.cell_count() as u64 {
        return Err(DatasetError::InvalidConfig(format!(
            "header declares {} cells but the dataset holds {}",
            header.cells,
            dataset.cell_count()
        )));
    }
    let header_json = serde_json::to_string(header)
        .map_err(|e| DatasetError::Serialization(format!("shard header: {e}")))?;
    let header_bytes = header_json.as_bytes();
    if header_bytes.len() > MAX_HEADER_LEN {
        return Err(DatasetError::InvalidConfig(format!(
            "shard header would be {} bytes, over the {MAX_HEADER_LEN}-byte format limit \
             (usually an extreme worker count; split the run into more shards)",
            header_bytes.len()
        )));
    }
    let header_len = header_bytes.len() as u32;

    let tmp = tmp_path(path);
    let file = fs::File::create(&tmp).map_err(|e| DatasetError::io(&tmp, e))?;
    let mut out = BufWriter::new(file);
    let mut crc = Crc32::new();
    let mut emit = |out: &mut BufWriter<fs::File>, bytes: &[u8]| -> Result<(), DatasetError> {
        crc.update(bytes);
        out.write_all(bytes).map_err(|e| DatasetError::io(&tmp, e))
    };

    emit(&mut out, &MAGIC)?;
    emit(&mut out, &FORMAT_VERSION.to_le_bytes())?;
    emit(&mut out, &header_len.to_le_bytes())?;
    emit(&mut out, header_bytes)?;
    // Cells, buffered in ~512 KiB chunks so CRC and write syscalls both see
    // large runs instead of 8-byte pieces.
    let mut buf = Vec::with_capacity(1 << 19);
    for slice in dataset.cell_slices() {
        for &cell in slice {
            buf.extend_from_slice(&cell.to_le_bytes());
            if buf.len() >= (1 << 19) {
                emit(&mut out, &buf)?;
                buf.clear();
            }
        }
    }
    if !buf.is_empty() {
        emit(&mut out, &buf)?;
    }
    let digest = crc.finalize();
    out.write_all(&digest.to_le_bytes())
        .map_err(|e| DatasetError::io(&tmp, e))?;
    out.flush().map_err(|e| DatasetError::io(&tmp, e))?;
    out.into_inner()
        .map_err(|e| DatasetError::io(&tmp, e.to_string()))?
        .sync_all()
        .map_err(|e| DatasetError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| DatasetError::io(path, e))?;
    Ok(())
}

/// Parses and validates the preamble and header from raw bytes.
fn decode_header(path: &Path, bytes: &[u8]) -> Result<(ShardHeader, usize), DatasetError> {
    if bytes.len() < PREAMBLE_LEN {
        return Err(DatasetError::corrupt(
            path,
            format!("truncated file ({} bytes, preamble needs 16)", bytes.len()),
        ));
    }
    if bytes[..8] != MAGIC {
        return Err(DatasetError::corrupt(
            path,
            "not an rc4-store dataset (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(DatasetError::corrupt(
            path,
            format!("unsupported format version {version} (this build reads {FORMAT_VERSION})"),
        ));
    }
    let header_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    if header_len > MAX_HEADER_LEN {
        return Err(DatasetError::corrupt(
            path,
            format!("implausible header length {header_len} (limit {MAX_HEADER_LEN})"),
        ));
    }
    let header_end = PREAMBLE_LEN
        .checked_add(header_len)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| {
            DatasetError::corrupt(path, "truncated file (header extends past end of file)")
        })?;
    let header_json = std::str::from_utf8(&bytes[PREAMBLE_LEN..header_end])
        .map_err(|_| DatasetError::corrupt(path, "shard header is not UTF-8"))?;
    let header: ShardHeader = serde_json::from_str(header_json)
        .map_err(|e| DatasetError::corrupt(path, format!("unreadable shard header: {e}")))?;
    header.validate(path)?;
    Ok((header, header_end))
}

/// Reads only the header of a shard file (cells are not touched and the CRC
/// is *not* verified — use [`read_shard`] before trusting the counts).
///
/// # Errors
///
/// Returns [`DatasetError::Io`] when the file cannot be read and
/// [`DatasetError::Corrupt`] when the preamble or header is invalid.
pub fn peek_header(path: &Path) -> Result<ShardHeader, DatasetError> {
    let mut file = fs::File::open(path).map_err(|e| DatasetError::io(path, e))?;
    let eof_or_io = |e: std::io::Error, what: &str| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            DatasetError::corrupt(path, format!("truncated file ({what})"))
        } else {
            DatasetError::io(path, e)
        }
    };
    let mut preamble = [0u8; PREAMBLE_LEN];
    file.read_exact(&mut preamble)
        .map_err(|e| eof_or_io(e, "shorter than the 16-byte preamble"))?;
    if preamble[..8] != MAGIC {
        return Err(DatasetError::corrupt(
            path,
            "not an rc4-store dataset (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(preamble[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(DatasetError::corrupt(
            path,
            format!("unsupported format version {version} (this build reads {FORMAT_VERSION})"),
        ));
    }
    let header_len = u32::from_le_bytes(preamble[12..16].try_into().expect("4 bytes")) as usize;
    if header_len > MAX_HEADER_LEN {
        return Err(DatasetError::corrupt(
            path,
            format!("implausible header length {header_len} (limit {MAX_HEADER_LEN})"),
        ));
    }
    let mut bytes = preamble.to_vec();
    bytes.resize(PREAMBLE_LEN + header_len, 0);
    file.read_exact(&mut bytes[PREAMBLE_LEN..])
        .map_err(|e| eof_or_io(e, "header extends past end of file"))?;
    decode_header(path, &bytes).map(|(h, _)| h)
}

/// Reads and fully validates a shard file, reconstructing the dataset.
///
/// # Errors
///
/// * [`DatasetError::Io`] — the file cannot be read.
/// * [`DatasetError::Corrupt`] — bad magic, unsupported format version,
///   truncation, header/shape/cell-count inconsistency, or CRC mismatch.
pub fn read_shard<D: StorableDataset>(path: &Path) -> Result<ShardFile<D>, DatasetError> {
    let bytes = fs::read(path).map_err(|e| DatasetError::io(path, e))?;
    let (header, header_end) = decode_header(path, &bytes)?;
    if header.kind != D::kind() {
        return Err(DatasetError::corrupt(
            path,
            format!(
                "holds a '{}' dataset, expected '{}'",
                header.kind,
                D::kind()
            ),
        ));
    }
    let mut dataset = D::empty_with_shape(&header.shape)
        .map_err(|e| DatasetError::corrupt(path, format!("invalid stored shape: {e}")))?;
    if dataset.cell_count() as u64 != header.cells {
        return Err(DatasetError::corrupt(
            path,
            format!(
                "header declares {} cells but the shape implies {}",
                header.cells,
                dataset.cell_count()
            ),
        ));
    }
    let cells_len = (header.cells as usize)
        .checked_mul(8)
        .ok_or_else(|| DatasetError::corrupt(path, "cell count overflows"))?;
    let expected_len = header_end + cells_len + 4;
    if bytes.len() < expected_len {
        return Err(DatasetError::corrupt(
            path,
            format!(
                "truncated file ({} bytes, expected {expected_len})",
                bytes.len()
            ),
        ));
    }
    if bytes.len() > expected_len {
        return Err(DatasetError::corrupt(
            path,
            format!(
                "trailing bytes after the CRC ({} bytes, expected {expected_len})",
                bytes.len()
            ),
        ));
    }
    let stored_crc = u32::from_le_bytes(bytes[expected_len - 4..].try_into().expect("4 bytes"));
    let mut crc = Crc32::new();
    crc.update(&bytes[..expected_len - 4]);
    if crc.finalize() != stored_crc {
        return Err(DatasetError::corrupt(
            path,
            "CRC-32 mismatch (bit flip or torn write)",
        ));
    }
    let mut offset = header_end;
    for slice in dataset.cell_slices_mut() {
        for cell in slice.iter_mut() {
            *cell = u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"));
            offset += 8;
        }
    }
    dataset.set_recorded_keystreams(header.keys_done());
    Ok(ShardFile { header, dataset })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc4_stats::{single::SingleByteDataset, GenerationConfig, KeystreamCollector};

    fn temp_file(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("rc4-store-shard-{}-{name}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir.join("shard.ds")
    }

    fn sample() -> (ShardHeader, SingleByteDataset) {
        let mut ds = SingleByteDataset::new(4);
        ds.record_keystream(&[1, 2, 3, 4]);
        ds.record_keystream(&[1, 9, 3, 4]);
        let mut header = ShardHeader::new(
            "single",
            GenerationConfig::with_keys(2),
            ds.shape_params(),
            0,
            1,
            ds.cell_count() as u64,
        )
        .unwrap();
        header.progress = vec![2];
        (header, ds)
    }

    #[test]
    fn write_read_roundtrip_preserves_everything() {
        let path = temp_file("roundtrip");
        let (header, ds) = sample();
        write_shard(&path, &header, &ds).unwrap();

        let peeked = peek_header(&path).unwrap();
        assert_eq!(peeked, header);

        let loaded: ShardFile<SingleByteDataset> = read_shard(&path).unwrap();
        assert_eq!(loaded.header, header);
        assert_eq!(loaded.dataset.count(1, 1), 2);
        assert_eq!(loaded.dataset.count(2, 9), 1);
        assert_eq!(loaded.dataset.keystreams(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn cell_count_mismatch_is_a_caller_error() {
        let path = temp_file("cellcount");
        let (mut header, ds) = sample();
        header.cells += 1;
        assert!(matches!(
            write_shard(&path, &header, &ds),
            Err(DatasetError::InvalidConfig(_))
        ));
    }

    #[test]
    fn kind_mismatch_is_corrupt() {
        let path = temp_file("kind");
        let (header, ds) = sample();
        write_shard(&path, &header, &ds).unwrap();
        let r: Result<ShardFile<rc4_stats::pairs::PairDataset>, _> = read_shard(&path);
        assert!(matches!(r, Err(DatasetError::Corrupt(msg)) if msg.contains("'single'")));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io() {
        let r: Result<ShardFile<SingleByteDataset>, _> =
            read_shard(Path::new("/nonexistent/rc4-store.ds"));
        assert!(matches!(r, Err(DatasetError::Io(msg)) if msg.contains("rc4-store.ds")));
    }
}
