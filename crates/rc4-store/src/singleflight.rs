//! Single-flight deduplication for concurrent dataset generation.
//!
//! When N clients of a shared [`crate::DatasetCache`] miss on the same cache
//! key at the same time, each would generate the identical dataset — hours of
//! duplicated work for the empirical configurations. [`SingleFlight`] closes
//! that window: callers enter a keyed critical section around the whole
//! *check-cache → generate → store* sequence, so the first caller in does the
//! generation and every concurrent caller blocks until the key is released,
//! re-checks the cache, and hits.
//!
//! This is a coordination layer, not a cache: it holds no data, only the set
//! of keys currently "in flight" plus counters ([`FlightStats`]) that let
//! tests and status endpoints observe how much duplicate work was avoided.
//! Keys are opaque strings; cache users pass [`crate::DatasetCache::cache_key`]
//! output.

use std::collections::HashSet;
use std::sync::{Condvar, Mutex};

/// Point-in-time counters of a [`SingleFlight`]'s activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightStats {
    /// Keys currently held in flight.
    pub in_flight: usize,
    /// Total flights begun (leaders that entered a key's critical section).
    pub begun: usize,
    /// Times a caller found its key already in flight and had to wait.
    pub waited: usize,
}

#[derive(Debug, Default)]
struct FlightState {
    in_flight: HashSet<String>,
    begun: usize,
    waited: usize,
}

/// A keyed mutual-exclusion set: at most one holder per key, waiters block.
///
/// ```
/// use rc4_store::SingleFlight;
///
/// let flights = SingleFlight::new();
/// let guard = flights.begin("per-tsc-abc123");
/// // ... expensive generation for that key ...
/// drop(guard); // waiters on the same key wake up here
/// assert_eq!(flights.stats().begun, 1);
/// ```
#[derive(Debug, Default)]
pub struct SingleFlight {
    state: Mutex<FlightState>,
    released: Condvar,
}

impl SingleFlight {
    /// Creates an empty single-flight table.
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Enters the critical section for `key`, blocking while another holder
    /// has it. The returned guard releases the key on drop (including on
    /// panic/unwind, so a failed generation never wedges its waiters).
    pub fn begin(&self, key: &str) -> FlightGuard<'_> {
        rc4_obs::metrics::counter_add("store.singleflight.begun", 1);
        let mut state = self.state.lock().expect("single-flight lock poisoned");
        if state.in_flight.contains(key) {
            state.waited += 1;
            // A coalesced caller: the key is already in flight, so this
            // caller is about to block instead of duplicating the work.
            rc4_obs::metrics::counter_add("store.singleflight.coalesced", 1);
            let wait_start = rc4_obs::metrics::is_enabled().then(std::time::Instant::now);
            while state.in_flight.contains(key) {
                state = self
                    .released
                    .wait(state)
                    .expect("single-flight lock poisoned");
            }
            if let Some(start) = wait_start {
                rc4_obs::metrics::observe_us(
                    "store.singleflight.wait_us",
                    start.elapsed().as_micros() as u64,
                );
            }
        }
        state.in_flight.insert(key.to_string());
        state.begun += 1;
        FlightGuard {
            flights: self,
            key: key.to_string(),
        }
    }

    /// Snapshots the activity counters.
    pub fn stats(&self) -> FlightStats {
        let state = self.state.lock().expect("single-flight lock poisoned");
        FlightStats {
            in_flight: state.in_flight.len(),
            begun: state.begun,
            waited: state.waited,
        }
    }

    fn release(&self, key: &str) {
        let mut state = self.state.lock().expect("single-flight lock poisoned");
        state.in_flight.remove(key);
        drop(state);
        self.released.notify_all();
    }
}

/// Holds a key in flight; releases it (waking waiters) on drop.
#[derive(Debug)]
pub struct FlightGuard<'a> {
    flights: &'a SingleFlight,
    key: String,
}

impl FlightGuard<'_> {
    /// The key this guard holds.
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.flights.release(&self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn distinct_keys_do_not_contend() {
        let flights = SingleFlight::new();
        let a = flights.begin("a");
        let b = flights.begin("b");
        assert_eq!(flights.stats().in_flight, 2);
        assert_eq!(flights.stats().waited, 0);
        drop(a);
        drop(b);
        assert_eq!(flights.stats().in_flight, 0);
    }

    #[test]
    fn same_key_blocks_until_released() {
        let flights = Arc::new(SingleFlight::new());
        let guard = flights.begin("k");
        let entered = Arc::new(AtomicUsize::new(0));

        let waiter = {
            let flights = Arc::clone(&flights);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let _guard = flights.begin("k");
                entered.store(1, Ordering::SeqCst);
            })
        };

        for _ in 0..200 {
            if flights.stats().waited == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(flights.stats().waited, 1);
        assert_eq!(entered.load(Ordering::SeqCst), 0);

        drop(guard);
        waiter.join().expect("waiter thread panicked");
        assert_eq!(entered.load(Ordering::SeqCst), 1);
        assert_eq!(flights.stats().in_flight, 0);
        assert_eq!(flights.stats().begun, 2);
    }

    #[test]
    fn only_one_holder_runs_at_a_time() {
        let flights = Arc::new(SingleFlight::new());
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..8)
            .map(|_| {
                let flights = Arc::clone(&flights);
                let concurrent = Arc::clone(&concurrent);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    let _guard = flights.begin("shared");
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("holder thread panicked");
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1);
        assert_eq!(flights.stats().begun, 8);
    }

    #[test]
    fn panicking_holder_releases_the_key() {
        let flights = Arc::new(SingleFlight::new());
        let crasher = {
            let flights = Arc::clone(&flights);
            std::thread::spawn(move || {
                let _guard = flights.begin("k");
                panic!("generation failed");
            })
        };
        assert!(crasher.join().is_err());
        // The key must be free again: begin() returns without blocking.
        let _guard = flights.begin("k");
        assert_eq!(flights.stats().in_flight, 1);
    }
}
