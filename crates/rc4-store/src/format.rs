//! The on-disk shard format: constants, the JSON header, and the key-space
//! partition it describes.
//!
//! A shard file is laid out as:
//!
//! ```text
//! offset 0   magic              8 bytes   b"RC4DSET\0"
//! offset 8   format version     u32 LE    1 (raw) or 2 (compressed)
//! offset 12  header length      u32 LE    byte length of the JSON header
//! offset 16  header             JSON      [`ShardHeader`]
//! ...        cells              header.cells cells, encoding per version
//! ...        CRC-32             u32 LE    IEEE CRC over all preceding bytes
//! ```
//!
//! The format version selects the cell encoding
//! ([`crate::codec::CellEncoding`]): version 1 stores each cell as 8
//! little-endian bytes, version 2 stores consecutive-cell deltas as
//! zigzag+LEB128 varints (typically 3-6x smaller for real count tables).
//! The normative byte-level specification lives in `docs/shard-format.md`
//! at the repository root — that file states the exact rules; this module
//! is their implementation.
//!
//! **Versioning policy:** readers accept every version they know how to
//! decode — currently 1 and 2 — so files written by older builds stay
//! readable forever. Writers emit the *lowest* version that can represent
//! the file (raw cells → 1, compressed cells → 2), so downgrading a reader
//! only loses access to files that actually use the newer encoding. Any
//! future layout or header-semantics change adds a new version constant;
//! unknown versions surface as [`DatasetError::Corrupt`] naming both the
//! found and the supported versions so files are never silently misread.

use serde::{Deserialize, Serialize};

use rc4_stats::{DatasetError, GenerationConfig};

/// File magic identifying an rc4-store dataset shard.
pub const MAGIC: [u8; 8] = *b"RC4DSET\0";

/// On-disk format version 1: cells stored as raw `u64` little-endian.
///
/// Still the default for fresh writes — raw cells are what the
/// byte-identity contracts (cache hits, worker-invariance, campaign merges)
/// are pinned against.
pub const FORMAT_VERSION: u32 = 1;

/// On-disk format version 2: cells stored delta+varint compressed
/// ([`crate::codec::CellEncoding::DeltaVarint`]). Readers accept both
/// versions; writers emit 2 only when compression is requested.
pub const FORMAT_VERSION_COMPRESSED: u32 = 2;

/// Byte length of the fixed preamble (magic + version + header length).
pub const PREAMBLE_LEN: usize = 16;

/// Upper bound on the JSON header's byte length. Real headers are a few
/// hundred bytes to a few hundred KiB (the progress vector dominates for
/// many-worker configurations); the bound keeps a corrupt or hostile
/// header-length field from driving a multi-GiB allocation before
/// validation can reject the file.
pub const MAX_HEADER_LEN: usize = 16 << 20;

/// The JSON header of a shard file.
///
/// A shard holds the contribution of the contiguous logical-worker range
/// `worker_lo..worker_hi` of the master configuration `config`. Worker `w`
/// deterministically derives its own key stream from `(config.seed, w)`, so
/// disjoint worker ranges are seed-disjoint by construction and merging every
/// range of a configuration reproduces the full dataset exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardHeader {
    /// Dataset kind tag ([`rc4_stats::StorableDataset::kind`]).
    pub kind: String,
    /// The *master* generation configuration this shard contributes to.
    pub config: GenerationConfig,
    /// Dataset shape descriptor ([`rc4_stats::StorableDataset::shape_params`]).
    pub shape: Vec<u64>,
    /// First logical worker index covered by this shard.
    pub worker_lo: u64,
    /// One past the last logical worker index covered.
    pub worker_hi: u64,
    /// Keys generated so far per covered worker (`worker_hi - worker_lo`
    /// entries). Updated on every checkpoint; resume continues each worker
    /// stream from exactly this position.
    pub progress: Vec<u64>,
    /// Number of `u64` counter cells following the header.
    pub cells: u64,
}

/// Number of keys logical worker `w` contributes under `config` — a thin
/// alias for [`GenerationConfig::keys_for_worker`], the single partition rule
/// shared with the in-memory worker pool and the per-TSC generator.
pub fn keys_for_worker(config: &GenerationConfig, w: u64) -> u64 {
    config.keys_for_worker(w)
}

impl ShardHeader {
    /// Creates a fresh (zero-progress) header for a worker range.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when the configuration is
    /// invalid or the worker range does not fit it.
    pub fn new(
        kind: &str,
        config: GenerationConfig,
        shape: Vec<u64>,
        worker_lo: u64,
        worker_hi: u64,
        cells: u64,
    ) -> Result<Self, DatasetError> {
        config.validate()?;
        if worker_lo >= worker_hi || worker_hi > config.workers as u64 {
            return Err(DatasetError::InvalidConfig(format!(
                "worker range {worker_lo}..{worker_hi} does not fit a {}-worker configuration",
                config.workers
            )));
        }
        Ok(Self {
            kind: kind.to_string(),
            config,
            shape,
            worker_lo,
            worker_hi,
            progress: vec![0; (worker_hi - worker_lo) as usize],
            cells,
        })
    }

    /// Total keys this shard will contain when complete.
    pub fn keys_total(&self) -> u64 {
        (self.worker_lo..self.worker_hi)
            .map(|w| keys_for_worker(&self.config, w))
            .sum()
    }

    /// Keys generated so far.
    pub fn keys_done(&self) -> u64 {
        self.progress.iter().sum()
    }

    /// Whether every covered worker has generated its full allotment.
    pub fn is_complete(&self) -> bool {
        self.progress
            .iter()
            .enumerate()
            .all(|(i, &done)| done == keys_for_worker(&self.config, self.worker_lo + i as u64))
    }

    /// Keys remaining for the covered worker at offset `i` into the range.
    pub fn remaining_for(&self, i: usize) -> u64 {
        keys_for_worker(&self.config, self.worker_lo + i as u64) - self.progress[i]
    }

    /// Internal-consistency check applied to every header read from disk.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError::Corrupt`] naming `path` when the header
    /// contradicts itself.
    pub fn validate(&self, path: &std::path::Path) -> Result<(), DatasetError> {
        self.config
            .validate()
            .map_err(|e| DatasetError::corrupt(path, format!("invalid stored config: {e}")))?;
        if self.worker_lo >= self.worker_hi || self.worker_hi > self.config.workers as u64 {
            return Err(DatasetError::corrupt(
                path,
                format!(
                    "worker range {}..{} does not fit a {}-worker configuration",
                    self.worker_lo, self.worker_hi, self.config.workers
                ),
            ));
        }
        if self.progress.len() as u64 != self.worker_hi - self.worker_lo {
            return Err(DatasetError::corrupt(
                path,
                format!(
                    "progress has {} entries for a {}-worker range",
                    self.progress.len(),
                    self.worker_hi - self.worker_lo
                ),
            ));
        }
        for (i, &done) in self.progress.iter().enumerate() {
            let total = keys_for_worker(&self.config, self.worker_lo + i as u64);
            if done > total {
                return Err(DatasetError::corrupt(
                    path,
                    format!(
                        "worker {} progress {done} exceeds its {total}-key allotment",
                        self.worker_lo + i as u64
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> GenerationConfig {
        GenerationConfig::with_keys(10).workers(3)
    }

    #[test]
    fn worker_split_matches_pool_rule() {
        // 10 keys over 3 workers: 4 + 3 + 3.
        assert_eq!(keys_for_worker(&config(), 0), 4);
        assert_eq!(keys_for_worker(&config(), 1), 3);
        assert_eq!(keys_for_worker(&config(), 2), 3);
    }

    #[test]
    fn header_totals_and_completion() {
        let mut h = ShardHeader::new("single", config(), vec![4], 1, 3, 1024).unwrap();
        assert_eq!(h.keys_total(), 6);
        assert_eq!(h.keys_done(), 0);
        assert!(!h.is_complete());
        h.progress = vec![3, 3];
        assert!(h.is_complete());
        assert_eq!(h.remaining_for(0), 0);
    }

    #[test]
    fn bad_worker_ranges_rejected() {
        assert!(ShardHeader::new("single", config(), vec![4], 2, 2, 1).is_err());
        assert!(ShardHeader::new("single", config(), vec![4], 0, 4, 1).is_err());
    }

    #[test]
    fn validate_flags_inconsistent_progress() {
        let path = std::path::Path::new("x.ds");
        let mut h = ShardHeader::new("single", config(), vec![4], 0, 1, 1).unwrap();
        h.progress = vec![99];
        assert!(matches!(
            h.validate(path),
            Err(DatasetError::Corrupt(msg)) if msg.contains("x.ds") && msg.contains("allotment")
        ));
        h.progress = vec![1, 1];
        assert!(matches!(h.validate(path), Err(DatasetError::Corrupt(_))));
    }

    #[test]
    fn header_serde_roundtrip() {
        let h = ShardHeader::new("pairs", config(), vec![1, 2, 5, 6], 0, 3, 131072).unwrap();
        let json = serde_json::to_string(&h).unwrap();
        let back: ShardHeader = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
