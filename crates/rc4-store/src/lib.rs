//! Persistent sharded storage for keystream counter datasets.
//!
//! The paper's headline statistics were counted over `2^44`–`2^47` RC4 keys
//! on roughly 80 machines and merged afterwards (Section 3.2). That workflow
//! — long-running distributed *collection*, cheap repeated *re-analysis* —
//! needs counter datasets that survive the process that generated them. This
//! crate provides it:
//!
//! * [`mod@format`] — a versioned binary on-disk format: magic, format version, a
//!   JSON header (dataset kind, shape, [`rc4_stats::GenerationConfig`],
//!   per-worker progress), little-endian `u64` counter cells, and a CRC-32
//!   trailer (via `crypto-prims`) over the whole file.
//! * [`codec`] — the two cell encodings behind the format versions: raw
//!   `u64` little-endian (v1, the byte-identity default) and delta+varint
//!   compressed (v2, typically 3-6x smaller for real count tables), plus the
//!   buffered CRC-tracking [`codec::CellReader`] the streaming paths share.
//! * [`shard`] — [`shard::write_shard`] / [`shard::read_shard`] /
//!   [`shard::peek_header`]: atomic (write-to-temp + rename) persistence and
//!   fully validated loading of any [`rc4_stats::StorableDataset`]; plus
//!   [`shard::open_cells`], a windowed cell stream that reads a shard
//!   without materialising its dataset.
//! * [`generate`] — a checkpointing generation engine. The key space of a
//!   configuration is partitioned into per-worker streams exactly as the
//!   `rc4-stats` worker pool partitions it; a *shard* covers a contiguous
//!   range of those workers. Completed chunks are streamed to disk at a
//!   configurable interval, so a cancelled or crashed run resumes from the
//!   last flushed chunk ([`generate::resume_shard`]) instead of starting
//!   over — the on-disk analogue of `Batched16Counter`'s flush-and-aggregate
//!   design.
//! * [`merge`] — an n-way merge that validates shape equality and
//!   seed-disjointness (disjoint worker ranges of the *same* master
//!   configuration; each worker index derives an independent seed stream) and
//!   sums the shards into a master dataset. Merging every shard of a
//!   configuration yields cell-for-cell the dataset an uninterrupted
//!   in-memory generation would have produced.
//! * [`cache`] — a load-or-generate dataset cache keyed by a SHA-256 hash of
//!   `(kind, shape, config)`. Experiment drivers consult it before
//!   generating; a hit skips generation entirely and is guaranteed to be the
//!   dataset the generation would have produced.
//! * [`singleflight`] — keyed mutual exclusion around the cache's
//!   check-generate-store sequence, so N concurrent clients missing on the
//!   same key trigger exactly one generation and the rest wait then hit.
//! * [`campaign`] — lease-based coordination for fleets of worker
//!   processes: a versioned, atomically-rewritten manifest splits a
//!   configuration's worker range into seed-disjoint leases, re-issues them
//!   when workers crash or stall, and hands the completed shards to the
//!   merge layer for a byte-identical final table.
//!
//! All errors surface as typed [`rc4_stats::DatasetError`] variants —
//! [`rc4_stats::DatasetError::Io`] for file-system failures and
//! [`rc4_stats::DatasetError::Corrupt`] for validation failures — with the
//! offending path in the message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod codec;
pub mod format;
pub mod generate;
pub mod merge;
pub mod shard;
pub mod singleflight;

pub use cache::DatasetCache;
pub use campaign::{
    CampaignManifest, CampaignSpec, Lease, LeaseState, WorkerCommand, WorkerEvent, MANIFEST_VERSION,
};
pub use codec::CellEncoding;
pub use format::{ShardHeader, FORMAT_VERSION, FORMAT_VERSION_COMPRESSED, MAGIC};
pub use generate::{generate_shard, resume_shard, GenerateOptions, GenerateStatus, ShardSpec};
pub use merge::{merge_shards, merge_shards_streaming, merge_shards_tiered, MergeOptions};
pub use shard::{open_cells, peek_header, peek_shard, read_shard, write_shard, write_shard_with};
pub use singleflight::{FlightGuard, FlightStats, SingleFlight};
