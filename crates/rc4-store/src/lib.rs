//! Persistent sharded storage for keystream counter datasets.
//!
//! The paper's headline statistics were counted over `2^44`–`2^47` RC4 keys
//! on roughly 80 machines and merged afterwards (Section 3.2). That workflow
//! — long-running distributed *collection*, cheap repeated *re-analysis* —
//! needs counter datasets that survive the process that generated them. This
//! crate provides it:
//!
//! * [`mod@format`] — a versioned binary on-disk format: magic, format version, a
//!   JSON header (dataset kind, shape, [`rc4_stats::GenerationConfig`],
//!   per-worker progress), little-endian `u64` counter cells, and a CRC-32
//!   trailer (via `crypto-prims`) over the whole file.
//! * [`shard`] — [`shard::write_shard`] / [`shard::read_shard`] /
//!   [`shard::peek_header`]: atomic (write-to-temp + rename) persistence and
//!   fully validated loading of any [`rc4_stats::StorableDataset`].
//! * [`generate`] — a checkpointing generation engine. The key space of a
//!   configuration is partitioned into per-worker streams exactly as the
//!   `rc4-stats` worker pool partitions it; a *shard* covers a contiguous
//!   range of those workers. Completed chunks are streamed to disk at a
//!   configurable interval, so a cancelled or crashed run resumes from the
//!   last flushed chunk ([`generate::resume_shard`]) instead of starting
//!   over — the on-disk analogue of `Batched16Counter`'s flush-and-aggregate
//!   design.
//! * [`merge`] — an n-way merge that validates shape equality and
//!   seed-disjointness (disjoint worker ranges of the *same* master
//!   configuration; each worker index derives an independent seed stream) and
//!   sums the shards into a master dataset. Merging every shard of a
//!   configuration yields cell-for-cell the dataset an uninterrupted
//!   in-memory generation would have produced.
//! * [`cache`] — a load-or-generate dataset cache keyed by a SHA-256 hash of
//!   `(kind, shape, config)`. Experiment drivers consult it before
//!   generating; a hit skips generation entirely and is guaranteed to be the
//!   dataset the generation would have produced.
//! * [`singleflight`] — keyed mutual exclusion around the cache's
//!   check-generate-store sequence, so N concurrent clients missing on the
//!   same key trigger exactly one generation and the rest wait then hit.
//!
//! All errors surface as typed [`rc4_stats::DatasetError`] variants —
//! [`rc4_stats::DatasetError::Io`] for file-system failures and
//! [`rc4_stats::DatasetError::Corrupt`] for validation failures — with the
//! offending path in the message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod format;
pub mod generate;
pub mod merge;
pub mod shard;
pub mod singleflight;

pub use cache::DatasetCache;
pub use format::{ShardHeader, FORMAT_VERSION, MAGIC};
pub use generate::{generate_shard, resume_shard, GenerateOptions, GenerateStatus, ShardSpec};
pub use merge::merge_shards;
pub use shard::{peek_header, read_shard, write_shard};
pub use singleflight::{FlightGuard, FlightStats, SingleFlight};
