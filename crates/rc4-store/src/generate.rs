//! Checkpointed shard generation with resume.
//!
//! Generation proceeds in *rounds*: every covered worker advances its
//! deterministic key stream by up to a chunk of keys, the per-worker deltas
//! are merged into the accumulating dataset, and the whole shard —
//! header (with updated per-worker progress) plus cells — is flushed to disk
//! atomically. A cancelled or killed run therefore loses at most one round of
//! work; [`resume_shard`] reloads the last flushed chunk, fast-forwards each
//! worker stream to its checkpointed position (via
//! [`rc4_stats::StorableDataset::skip_next`], which replays only the RNG
//! draws, not the RC4 work) and continues.
//!
//! Because counter cells are additive and every worker records exactly the
//! same key prefix it would record in an uninterrupted run, a
//! generate → cancel → resume sequence produces cell-for-cell the dataset a
//! single uninterrupted run produces — the property the dataset cache's
//! byte-identity guarantee rests on.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use rc4_exec::Executor;

use rc4_stats::{
    record_keys_batched, DatasetError, GenerationConfig, KeyGenerator, StorableDataset,
};

use crate::codec::CellEncoding;
use crate::format::ShardHeader;
use crate::shard::{read_shard, write_shard_with};

/// Tuning knobs for [`generate_shard`] / [`resume_shard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerateOptions {
    /// Target number of keys generated (across the whole shard) between
    /// on-disk checkpoints. Smaller values bound the re-work after a crash;
    /// larger values amortize the flush cost. Values larger than the shard's
    /// key total are clamped to it (one checkpoint at completion); drivers
    /// should warn the operator when that happens — see
    /// [`GenerateOptions::effective_checkpoint_keys`].
    pub checkpoint_keys: u64,
    /// Stop — after a checkpoint — once at least this many keys of the shard
    /// have been generated. The file stays resumable; the run reports
    /// [`GenerateStatus::Stopped`]. This is the deterministic stand-in for an
    /// operator cancelling a long collection run.
    pub stop_after_keys: Option<u64>,
    /// Cell encoding of the shard written by a *fresh* generation. Resumed
    /// shards keep the encoding their file already uses, so a compressed
    /// shard stays compressed across checkpoints (and vice versa) no matter
    /// which options the resuming process passes.
    pub encoding: CellEncoding,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        Self {
            checkpoint_keys: 1 << 18,
            stop_after_keys: None,
            encoding: CellEncoding::Raw,
        }
    }
}

impl GenerateOptions {
    /// The checkpoint interval actually used for a shard of `keys_total`
    /// keys: `checkpoint_keys` clamped into `1..=keys_total`.
    ///
    /// An unclamped oversized interval would silently degenerate to zero
    /// intermediate checkpoints — a crash then loses the whole run even
    /// though the operator asked for checkpointing. CLI drivers compare this
    /// against the raw value to emit the "clamped" warning.
    pub fn effective_checkpoint_keys(&self, keys_total: u64) -> u64 {
        self.checkpoint_keys.clamp(1, keys_total.max(1))
    }
}

/// How a generation call ended (errors are reported through `Result`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerateStatus {
    /// Every covered worker generated its full allotment; the shard is
    /// complete and mergeable.
    Complete,
    /// `stop_after_keys` was reached; the shard is checkpointed and resumable.
    Stopped,
}

/// Which slice of a master configuration's key space a shard covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// The master generation configuration.
    pub config: GenerationConfig,
    /// First logical worker index covered.
    pub worker_lo: u64,
    /// One past the last logical worker index covered.
    pub worker_hi: u64,
}

impl ShardSpec {
    /// A spec covering the whole configuration (workers `0..config.workers`).
    pub fn full(config: GenerationConfig) -> Self {
        Self {
            config,
            worker_lo: 0,
            worker_hi: config.workers as u64,
        }
    }

    /// A spec covering the contiguous worker range `lo..hi`.
    pub fn workers(config: GenerationConfig, lo: u64, hi: u64) -> Self {
        Self {
            config,
            worker_lo: lo,
            worker_hi: hi,
        }
    }
}

/// Starts generating a fresh shard of `spec.config`'s key space into `path`.
///
/// `empty` fixes the dataset kind and shape; `spec` selects the contiguous
/// range of logical workers this shard covers. The file is created
/// immediately and checkpointed after every round.
///
/// # Errors
///
/// * [`DatasetError::InvalidConfig`] — bad configuration or worker range, or
///   a non-empty `empty` dataset.
/// * [`DatasetError::Io`] — `path` already exists (refuse to clobber; resume
///   instead) or a file operation failed.
/// * [`DatasetError::Cancelled`] — the flag was raised; the last checkpoint
///   remains on disk.
pub fn generate_shard<D: StorableDataset>(
    path: &Path,
    empty: D,
    spec: &ShardSpec,
    opts: &GenerateOptions,
    cancel: Option<&AtomicBool>,
    progress: &mut dyn FnMut(u64, u64),
) -> Result<GenerateStatus, DatasetError> {
    if empty.recorded_keystreams() != 0 {
        return Err(DatasetError::InvalidConfig(
            "generate_shard needs an empty dataset".into(),
        ));
    }
    if path.exists() {
        return Err(DatasetError::io(
            path,
            "already exists; use resume to continue it",
        ));
    }
    let header = ShardHeader::new(
        D::kind(),
        spec.config,
        empty.shape_params(),
        spec.worker_lo,
        spec.worker_hi,
        empty.cell_count() as u64,
    )?;
    run_rounds(path, header, empty, opts, opts.encoding, cancel, progress)
}

/// Resumes a checkpointed shard at `path` until complete (or stopped again).
///
/// # Errors
///
/// Everything [`crate::shard::read_shard`] and [`generate_shard`] return.
/// Resuming an already-complete shard is a no-op reporting
/// [`GenerateStatus::Complete`].
pub fn resume_shard<D: StorableDataset>(
    path: &Path,
    opts: &GenerateOptions,
    cancel: Option<&AtomicBool>,
    progress: &mut dyn FnMut(u64, u64),
) -> Result<GenerateStatus, DatasetError> {
    let loaded = read_shard::<D>(path)?;
    run_rounds(
        path,
        loaded.header,
        loaded.dataset,
        opts,
        loaded.encoding,
        cancel,
        progress,
    )
}

/// The round loop shared by fresh and resumed runs. `encoding` is the
/// caller's choice for fresh runs and the file's existing encoding for
/// resumed ones.
fn run_rounds<D: StorableDataset>(
    path: &Path,
    mut header: ShardHeader,
    mut dataset: D,
    opts: &GenerateOptions,
    encoding: CellEncoding,
    cancel: Option<&AtomicBool>,
    progress: &mut dyn FnMut(u64, u64),
) -> Result<GenerateStatus, DatasetError> {
    if opts.checkpoint_keys == 0 {
        return Err(DatasetError::InvalidConfig(
            "checkpoint_keys must be > 0".into(),
        ));
    }
    dataset.validate_config(&header.config)?;
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
    let workers = (header.worker_hi - header.worker_lo) as usize;
    let key_len = header.config.key_len;
    let keys_total = header.keys_total();

    // An already-complete shard (or a stop target already met) is a cheap
    // no-op: no generator replay, no file rewrite.
    if header.is_complete() {
        if !path.exists() {
            write_shard_with(path, &header, &dataset, encoding)?;
        }
        return Ok(GenerateStatus::Complete);
    }
    if opts
        .stop_after_keys
        .is_some_and(|stop| header.keys_done() >= stop)
    {
        if !path.exists() {
            write_shard_with(path, &header, &dataset, encoding)?;
        }
        return Ok(GenerateStatus::Stopped);
    }

    // Reconstruct each covered worker's generator at its checkpointed stream
    // position. Skipping replays only the RNG draws (a small fraction of the
    // RC4 cost per key), so resume start-up stays cheap.
    let mut gens: Vec<KeyGenerator> = Vec::with_capacity(workers);
    {
        let mut key = vec![0u8; key_len];
        for (i, &done) in header.progress.iter().enumerate() {
            let mut gen =
                KeyGenerator::new(header.config.seed, header.worker_lo + i as u64, key_len);
            for _ in 0..done {
                dataset.skip_next(&mut gen, &mut key);
            }
            gens.push(gen);
        }
    }

    // Claim the path (fresh runs) / refresh the checkpoint (resumed runs)
    // before doing any work, so the file exists from the first moment on.
    write_shard_with(path, &header, &dataset, encoding)?;
    progress(header.keys_done(), keys_total);

    // Per-worker round deltas are whole extra copies of the counter tables.
    // That is fine for the usual shapes (a consec-16 pair dataset is ~8 MiB)
    // but ruinous for e.g. per-TSC Tsc0Tsc1 (gigabytes per clone), so large
    // datasets fall back to recording the round's workers sequentially into
    // the accumulator — same cells, same checkpoints, no clones. The
    // threshold is shared with `rc4-stats`' in-memory exec generation.
    let sequential = workers == 1 || dataset.cell_count() > rc4_stats::PARALLEL_CLONE_MAX_CELLS;

    let chunk = (opts.effective_checkpoint_keys(keys_total) / workers as u64).max(1);
    loop {
        if header.is_complete() {
            return Ok(GenerateStatus::Complete);
        }
        if opts
            .stop_after_keys
            .is_some_and(|stop| header.keys_done() >= stop)
        {
            return Ok(GenerateStatus::Stopped);
        }
        if cancelled() {
            return Err(DatasetError::Cancelled);
        }

        // One round: every worker with remaining keys advances by up to
        // `chunk` keys into a private delta; the deltas are merged in worker
        // order and the shard is flushed.
        let round: Vec<(usize, u64)> = (0..workers)
            .filter_map(|i| {
                let n = header.remaining_for(i).min(chunk);
                (n > 0).then_some((i, n))
            })
            .collect();

        if sequential || round.len() == 1 {
            // Record straight into the accumulator, worker by worker,
            // through the batched multi-key engine. A cancelled round is not
            // flushed, so the on-disk checkpoint stays consistent with its
            // header either way.
            for &(i, n) in &round {
                let done = record_keys_batched(&mut dataset, &mut gens[i], key_len, n, cancel);
                if done < n {
                    return Err(DatasetError::Cancelled);
                }
                header.progress[i] += n;
            }
        } else {
            // One execution task per covered worker, run on the shared pool
            // (`rc4-exec`); a task that observes the cancellation flag
            // mid-round reports `Cancelled`, the round's partial deltas are
            // discarded, and the last on-disk checkpoint stays untouched.
            let shape = dataset.shape_params();
            let exec = Executor::new(round.len()).with_cancel(cancel);
            let tasks: Vec<(usize, u64, &mut KeyGenerator)> = round
                .iter()
                .zip(disjoint_mut(&mut gens, &round))
                .map(|(&(i, n), gen)| (i, n, gen))
                .collect();
            let deltas: Vec<(usize, u64, D)> = exec
                .map(tasks, |_, (i, n, gen)| {
                    let mut delta = D::empty_with_shape(&shape)?;
                    let done = record_keys_batched(&mut delta, gen, key_len, n, cancel);
                    if done < n {
                        return Err(DatasetError::Cancelled);
                    }
                    Ok((i, done, delta))
                })
                .map_err(DatasetError::from)?;
            for (i, done, delta) in deltas {
                dataset.merge_same_shape(delta)?;
                header.progress[i] += done;
            }
        }

        write_shard_with(path, &header, &dataset, encoding)?;
        progress(header.keys_done(), keys_total);
    }
}

/// Hands each round entry an exclusive `&mut` to its worker's generator.
///
/// The round list indexes `gens` in strictly increasing order, so repeated
/// `split_at_mut` carves out non-overlapping borrows.
fn disjoint_mut<'a, T>(items: &'a mut [T], round: &[(usize, u64)]) -> Vec<&'a mut T> {
    let mut rest = items;
    let mut base = 0usize;
    let mut out = Vec::with_capacity(round.len());
    for &(i, _) in round {
        let (_, tail) = rest.split_at_mut(i - base);
        let (item, tail) = tail.split_first_mut().expect("round index in range");
        out.push(item);
        rest = tail;
        base = i + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc4_stats::{
        single::SingleByteDataset,
        worker::{generate, generate_with_cancel},
        KeystreamCollector,
    };
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rc4-store-gen-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn no_progress() -> impl FnMut(u64, u64) {
        |_, _| {}
    }

    #[test]
    fn full_shard_matches_in_memory_pool_generation() {
        let dir = temp_dir("full");
        let path = dir.join("full.ds");
        let config = GenerationConfig::with_keys(1_003).workers(3).seed(99);
        let status = generate_shard(
            &path,
            SingleByteDataset::new(8),
            &ShardSpec::full(config),
            &GenerateOptions {
                checkpoint_keys: 200,
                stop_after_keys: None,
                encoding: CellEncoding::Raw,
            },
            None,
            &mut no_progress(),
        )
        .unwrap();
        assert_eq!(status, GenerateStatus::Complete);

        let loaded = read_shard::<SingleByteDataset>(&path).unwrap();
        assert!(loaded.header.is_complete());
        let mut expect = SingleByteDataset::new(8);
        generate(&mut expect, &config).unwrap();
        assert_eq!(loaded.dataset.keystreams(), expect.keystreams());
        for r in 1..=8 {
            assert_eq!(loaded.dataset.counts_at(r), expect.counts_at(r));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_resume_produces_identical_cells() {
        let dir = temp_dir("resume");
        let config = GenerationConfig::with_keys(900).workers(2).seed(5);
        let opts = GenerateOptions {
            checkpoint_keys: 128,
            stop_after_keys: Some(300),
            encoding: CellEncoding::Raw,
        };
        let path = dir.join("stopped.ds");
        let status = generate_shard(
            &path,
            SingleByteDataset::new(6),
            &ShardSpec::full(config),
            &opts,
            None,
            &mut no_progress(),
        )
        .unwrap();
        assert_eq!(status, GenerateStatus::Stopped);
        let partial = read_shard::<SingleByteDataset>(&path).unwrap();
        assert!(!partial.header.is_complete());
        assert!(partial.header.keys_done() >= 300);
        assert!(partial.header.keys_done() < 900);

        let status = resume_shard::<SingleByteDataset>(
            &path,
            &GenerateOptions {
                checkpoint_keys: 64,
                stop_after_keys: None,
                encoding: CellEncoding::Raw,
            },
            None,
            &mut no_progress(),
        )
        .unwrap();
        assert_eq!(status, GenerateStatus::Complete);

        let resumed = read_shard::<SingleByteDataset>(&path).unwrap();
        let mut direct = SingleByteDataset::new(6);
        generate(&mut direct, &config).unwrap();
        for r in 1..=6 {
            assert_eq!(resumed.dataset.counts_at(r), direct.counts_at(r));
        }
        assert_eq!(resumed.dataset.keystreams(), 900);

        // Resuming a complete shard is a cheap no-op.
        let again = resume_shard::<SingleByteDataset>(
            &path,
            &GenerateOptions::default(),
            None,
            &mut no_progress(),
        )
        .unwrap();
        assert_eq!(again, GenerateStatus::Complete);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancellation_leaves_a_resumable_checkpoint() {
        let dir = temp_dir("cancel");
        let path = dir.join("cancelled.ds");
        let config = GenerationConfig::with_keys(50_000).workers(2).seed(1);
        let cancel = AtomicBool::new(false);
        let mut rounds = 0u32;
        let result = generate_shard(
            &path,
            SingleByteDataset::new(4),
            &ShardSpec::full(config),
            &GenerateOptions {
                checkpoint_keys: 1_000,
                stop_after_keys: None,
                encoding: CellEncoding::Raw,
            },
            Some(&cancel),
            &mut |_done, _total| {
                rounds += 1;
                if rounds == 3 {
                    cancel.store(true, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(result, Err(DatasetError::Cancelled));

        // The file holds a consistent checkpoint and resumes to the same
        // final state as an uncancelled run.
        let partial = read_shard::<SingleByteDataset>(&path).unwrap();
        assert!(partial.header.keys_done() > 0);
        resume_shard::<SingleByteDataset>(
            &path,
            &GenerateOptions {
                checkpoint_keys: 10_000,
                stop_after_keys: None,
                encoding: CellEncoding::Raw,
            },
            None,
            &mut no_progress(),
        )
        .unwrap();
        let full = read_shard::<SingleByteDataset>(&path).unwrap();
        let mut direct = SingleByteDataset::new(4);
        let never = AtomicBool::new(false);
        generate_with_cancel(&mut direct, &config, Some(&never)).unwrap();
        for r in 1..=4 {
            assert_eq!(full.dataset.counts_at(r), direct.counts_at(r));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_checkpoint_interval_is_clamped() {
        let opts = GenerateOptions {
            checkpoint_keys: u64::MAX,
            stop_after_keys: None,
            encoding: CellEncoding::Raw,
        };
        assert_eq!(opts.effective_checkpoint_keys(100), 100);
        assert_eq!(opts.effective_checkpoint_keys(0), 1);
        assert_eq!(
            GenerateOptions::default().effective_checkpoint_keys(1 << 30),
            1 << 18
        );

        // A run with an interval far beyond the key range still completes
        // and produces the same cells as a tightly checkpointed run.
        let dir = temp_dir("clamp");
        let config = GenerationConfig::with_keys(600).workers(2).seed(13);
        let oversized = dir.join("oversized.ds");
        generate_shard(
            &oversized,
            SingleByteDataset::new(4),
            &ShardSpec::full(config),
            &opts,
            None,
            &mut no_progress(),
        )
        .unwrap();
        let tight = dir.join("tight.ds");
        generate_shard(
            &tight,
            SingleByteDataset::new(4),
            &ShardSpec::full(config),
            &GenerateOptions {
                checkpoint_keys: 64,
                stop_after_keys: None,
                encoding: CellEncoding::Raw,
            },
            None,
            &mut no_progress(),
        )
        .unwrap();
        let a = read_shard::<SingleByteDataset>(&oversized).unwrap();
        let b = read_shard::<SingleByteDataset>(&tight).unwrap();
        for r in 1..=4 {
            assert_eq!(a.dataset.counts_at(r), b.dataset.counts_at(r));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compressed_generation_resumes_compressed_and_matches_raw() {
        let dir = temp_dir("compressed");
        let config = GenerationConfig::with_keys(600).workers(2).seed(7);
        let raw = dir.join("raw.ds");
        generate_shard(
            &raw,
            SingleByteDataset::new(5),
            &ShardSpec::full(config),
            &GenerateOptions::default(),
            None,
            &mut no_progress(),
        )
        .unwrap();

        // Stop a compressed generation partway, then resume it with *raw*
        // options: the file must stay compressed and end cell-identical.
        let packed = dir.join("packed.ds");
        let status = generate_shard(
            &packed,
            SingleByteDataset::new(5),
            &ShardSpec::full(config),
            &GenerateOptions {
                checkpoint_keys: 100,
                stop_after_keys: Some(250),
                encoding: CellEncoding::DeltaVarint,
            },
            None,
            &mut no_progress(),
        )
        .unwrap();
        assert_eq!(status, GenerateStatus::Stopped);
        let (_, enc) = crate::shard::peek_shard(&packed).unwrap();
        assert_eq!(enc, CellEncoding::DeltaVarint);

        resume_shard::<SingleByteDataset>(
            &packed,
            &GenerateOptions::default(),
            None,
            &mut no_progress(),
        )
        .unwrap();
        let (_, enc) = crate::shard::peek_shard(&packed).unwrap();
        assert_eq!(enc, CellEncoding::DeltaVarint);

        let a = read_shard::<SingleByteDataset>(&raw).unwrap();
        let b = read_shard::<SingleByteDataset>(&packed).unwrap();
        assert_eq!(a.header, b.header);
        assert_eq!(a.dataset.cell_slices(), b.dataset.cell_slices());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_to_clobber_an_existing_file() {
        let dir = temp_dir("clobber");
        let path = dir.join("x.ds");
        let config = GenerationConfig::with_keys(10);
        generate_shard(
            &path,
            SingleByteDataset::new(2),
            &ShardSpec::full(config),
            &GenerateOptions::default(),
            None,
            &mut no_progress(),
        )
        .unwrap();
        let again = generate_shard(
            &path,
            SingleByteDataset::new(2),
            &ShardSpec::full(config),
            &GenerateOptions::default(),
            None,
            &mut no_progress(),
        );
        assert!(matches!(again, Err(DatasetError::Io(msg)) if msg.contains("resume")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_worker_range_covers_only_its_streams() {
        let dir = temp_dir("range");
        let config = GenerationConfig::with_keys(100).workers(4).seed(3);
        let path = dir.join("w13.ds");
        generate_shard(
            &path,
            SingleByteDataset::new(3),
            &ShardSpec::workers(config, 1, 3),
            &GenerateOptions::default(),
            None,
            &mut no_progress(),
        )
        .unwrap();
        let shard = read_shard::<SingleByteDataset>(&path).unwrap();
        assert_eq!(shard.header.keys_total(), 50);
        assert_eq!(shard.dataset.keystreams(), 50);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
