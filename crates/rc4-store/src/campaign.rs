//! Lease-based fleet campaigns: coordinating many worker processes over one
//! seed-disjoint key space.
//!
//! The paper's headline counts were collected on ~80 machines and merged
//! afterwards. This module provides the bookkeeping half of that workflow:
//! a campaign splits the logical worker range of one
//! [`GenerationConfig`] into contiguous, seed-disjoint *leases*, each backed
//! by its own shard file. A coordinator grants leases to worker processes,
//! tracks their progress in a versioned, atomically-rewritten JSON
//! *manifest*, re-issues leases whose workers crashed or went silent, and —
//! once every lease is complete — merges the lease shards with the ordinary
//! seed-disjoint merge, producing a table byte-identical to a single-process
//! run.
//!
//! # Lease lifecycle
//!
//! ```text
//! pending ──grant──▶ granted ──first heartbeat──▶ running ──▶ complete
//!    ▲                  │                            │
//!    └──────(regrant)── expired ◀──crash/timeout─────┘
//! ```
//!
//! Expiry is safe — not merely tolerated — because leases are deterministic:
//! worker `w` of `config` always derives its key stream from
//! `(config.seed, w)`, so a re-granted lease regenerates exactly the cells
//! the lost worker would have produced, and the replacement worker resumes
//! from the crashed worker's last on-disk checkpoint. Even the pathological
//! race (a hung worker revives after its lease was re-granted) is benign:
//! both processes write identical cells, shard writes are atomic
//! (PID-salted temp + rename), so the last rename wins with a complete,
//! correct file either way.
//!
//! The coordinator/worker wire protocol ([`WorkerCommand`] /
//! [`WorkerEvent`]) is newline-delimited JSON over the worker's
//! stdin/stdout, so "fleet" can mean local child processes today and
//! ssh-driven remote ones without touching this module.

use std::path::{Path, PathBuf};

use serde::{DeError, Deserialize, Serialize, Value};

use rc4_stats::{DatasetError, GenerationConfig};

/// Manifest format version, bumped on breaking layout changes.
pub const MANIFEST_VERSION: u64 = 1;

/// Lifecycle state of one lease, as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Never granted; waiting for a worker.
    Pending,
    /// Handed to a worker that has not yet reported progress.
    Granted,
    /// The owning worker has heartbeated progress.
    Running,
    /// All of the lease's keys are generated; its shard is mergeable.
    Complete,
    /// The owning worker crashed or went silent; awaiting re-grant.
    Expired,
}

impl LeaseState {
    /// The manifest/wire name.
    pub fn name(self) -> &'static str {
        match self {
            LeaseState::Pending => "pending",
            LeaseState::Granted => "granted",
            LeaseState::Running => "running",
            LeaseState::Complete => "complete",
            LeaseState::Expired => "expired",
        }
    }

    /// Parses a manifest/wire name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "pending" => Some(LeaseState::Pending),
            "granted" => Some(LeaseState::Granted),
            "running" => Some(LeaseState::Running),
            "complete" => Some(LeaseState::Complete),
            "expired" => Some(LeaseState::Expired),
            _ => None,
        }
    }

    /// Whether a coordinator may grant this lease to a worker right now.
    pub fn is_grantable(self) -> bool {
        matches!(self, LeaseState::Pending | LeaseState::Expired)
    }

    /// Whether the lease is currently owned by a live worker.
    pub fn is_owned(self) -> bool {
        matches!(self, LeaseState::Granted | LeaseState::Running)
    }
}

impl Serialize for LeaseState {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for LeaseState {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                LeaseState::parse(s).ok_or_else(|| DeError(format!("unknown lease state `{s}`")))
            }
            other => Err(DeError(format!(
                "lease state must be a string, found {}",
                other.kind()
            ))),
        }
    }
}

/// One contiguous, seed-disjoint slice of the campaign's worker range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// Stable lease ID (its index in the manifest).
    pub id: u64,
    /// First logical worker index covered.
    pub worker_lo: u64,
    /// One past the last logical worker index covered.
    pub worker_hi: u64,
    /// Current lifecycle state.
    pub state: LeaseState,
    /// Identity of the worker process currently holding the lease.
    pub owner: Option<String>,
    /// Times the lease has been granted (1 on first grant; >1 means it was
    /// re-issued after an expiry).
    pub attempts: u64,
    /// Keys the owning worker last reported as generated.
    pub keys_done: u64,
    /// Coordinator-clock milliseconds of the last grant/heartbeat, for
    /// heartbeat-timeout expiry. Relative to campaign start, never wall time.
    pub heartbeat_ms: u64,
    /// Shard file name, relative to the manifest's directory.
    pub shard: String,
}

/// What the campaign generates: the dataset identity every lease shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Dataset kind tag ([`rc4_stats::StorableDataset::kind`]).
    pub kind: String,
    /// Dataset shape descriptor.
    pub shape: Vec<u64>,
    /// The master generation configuration (the *single-process* config; its
    /// worker count is what leases partition).
    pub config: GenerationConfig,
}

/// The campaign manifest: spec + leases, persisted as one JSON document that
/// is atomically rewritten (temp + rename) on every state transition, so
/// however the coordinator dies the manifest on disk is a complete,
/// parseable account and `campaign resume` can pick up where it left off.
#[derive(Debug)]
pub struct CampaignManifest {
    path: PathBuf,
    /// The dataset identity every lease contributes to.
    pub spec: CampaignSpec,
    /// All leases, in worker order.
    pub leases: Vec<Lease>,
}

impl CampaignManifest {
    /// Plans a fresh campaign: validates the spec, splits the configuration's
    /// worker range into `num_leases` contiguous leases (sized within one
    /// worker of each other), and persists the manifest to `path`.
    ///
    /// # Errors
    ///
    /// [`DatasetError::InvalidConfig`] on an invalid configuration or an
    /// unsatisfiable lease count, [`DatasetError::Io`] when `path` already
    /// exists (resume instead) or the write fails.
    pub fn plan(
        path: impl Into<PathBuf>,
        spec: CampaignSpec,
        num_leases: u64,
    ) -> Result<Self, DatasetError> {
        let path = path.into();
        spec.config.validate()?;
        let workers = spec.config.workers as u64;
        if num_leases == 0 || num_leases > workers {
            return Err(DatasetError::InvalidConfig(format!(
                "cannot split {workers} workers into {num_leases} leases \
                 (need 1..={workers})"
            )));
        }
        if path.exists() {
            return Err(DatasetError::io(
                &path,
                "campaign manifest already exists; use resume to continue it",
            ));
        }
        let leases = (0..num_leases)
            .map(|i| Lease {
                id: i,
                worker_lo: i * workers / num_leases,
                worker_hi: (i + 1) * workers / num_leases,
                state: LeaseState::Pending,
                owner: None,
                attempts: 0,
                keys_done: 0,
                heartbeat_ms: 0,
                shard: format!("lease-{i:04}.ds"),
            })
            .collect();
        let manifest = CampaignManifest { path, spec, leases };
        manifest.save()?;
        Ok(manifest)
    }

    /// Loads an existing manifest, verifying version and internal
    /// consistency (contiguous lease coverage of the full worker range).
    ///
    /// # Errors
    ///
    /// [`DatasetError::Io`] on unreadable files, [`DatasetError::Corrupt`]
    /// on unparseable, wrong-version, or self-contradictory content.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, DatasetError> {
        let path = path.into();
        let text = std::fs::read_to_string(&path).map_err(|e| DatasetError::io(&path, e))?;
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| DatasetError::corrupt(&path, format!("not valid JSON: {e}")))?;
        let version = match value.field("version") {
            Ok(Value::UInt(n)) => *n,
            _ => 0,
        };
        if version != MANIFEST_VERSION {
            return Err(DatasetError::corrupt(
                &path,
                format!("manifest version {version}, this build reads {MANIFEST_VERSION}"),
            ));
        }
        let spec = value
            .field("spec")
            .ok()
            .map(CampaignSpec::from_value)
            .transpose()
            .map_err(|e| DatasetError::corrupt(&path, e.0))?
            .ok_or_else(|| DatasetError::corrupt(&path, "manifest lacks a `spec` object"))?;
        let leases = match value.field("leases") {
            Ok(Value::Array(items)) => items
                .iter()
                .map(Lease::from_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| DatasetError::corrupt(&path, e.0))?,
            _ => {
                return Err(DatasetError::corrupt(
                    &path,
                    "manifest lacks a `leases` array",
                ))
            }
        };
        let manifest = CampaignManifest { path, spec, leases };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Internal-consistency check: leases must tile `0..config.workers`
    /// contiguously in ID order.
    fn validate(&self) -> Result<(), DatasetError> {
        self.spec.config.validate().map_err(|e| {
            DatasetError::corrupt(&self.path, format!("invalid stored config: {e}"))
        })?;
        let mut expect_lo = 0u64;
        for (i, lease) in self.leases.iter().enumerate() {
            if lease.id != i as u64
                || lease.worker_lo != expect_lo
                || lease.worker_hi <= lease.worker_lo
            {
                return Err(DatasetError::corrupt(
                    &self.path,
                    format!(
                        "lease {} covers workers {}..{}, expected a contiguous tiling from {expect_lo}",
                        lease.id, lease.worker_lo, lease.worker_hi
                    ),
                ));
            }
            expect_lo = lease.worker_hi;
        }
        if expect_lo != self.spec.config.workers as u64 {
            return Err(DatasetError::corrupt(
                &self.path,
                format!(
                    "leases cover workers 0..{expect_lo} of a {}-worker configuration",
                    self.spec.config.workers
                ),
            ));
        }
        Ok(())
    }

    /// The manifest's own path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The directory lease shards live in (the manifest's directory).
    pub fn dir(&self) -> &Path {
        self.path.parent().unwrap_or_else(|| Path::new("."))
    }

    /// Absolute path of a lease's shard file.
    pub fn shard_path(&self, lease: &Lease) -> PathBuf {
        self.dir().join(&lease.shard)
    }

    /// Atomically rewrites the manifest file (temp + rename).
    ///
    /// # Errors
    ///
    /// [`DatasetError::Io`] when the write or rename fails.
    pub fn save(&self) -> Result<(), DatasetError> {
        let value = Value::Object(vec![
            ("version".to_string(), Value::UInt(MANIFEST_VERSION)),
            ("spec".to_string(), self.spec.to_value()),
            (
                "leases".to_string(),
                Value::Array(self.leases.iter().map(Lease::to_value).collect()),
            ),
        ]);
        let text = serde_json::to_string_pretty(&value).expect("manifest serializes");
        let tmp = self
            .path
            .with_extension(format!("json.{}.tmp", std::process::id()));
        std::fs::write(&tmp, format!("{text}\n")).map_err(|e| DatasetError::io(&tmp, e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| DatasetError::io(&self.path, e))
    }

    /// Grants the lowest-ID grantable lease to `owner`, persists, and
    /// returns a copy of it; `None` (without touching the file) when no
    /// lease is grantable.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Io`] when persisting fails (the in-memory grant is
    /// rolled back).
    pub fn grant_next(&mut self, owner: &str, now_ms: u64) -> Result<Option<Lease>, DatasetError> {
        let Some(i) = self.leases.iter().position(|l| l.state.is_grantable()) else {
            return Ok(None);
        };
        let before = self.leases[i].clone();
        let regrant = before.state == LeaseState::Expired;
        {
            let lease = &mut self.leases[i];
            lease.state = LeaseState::Granted;
            lease.owner = Some(owner.to_string());
            lease.attempts += 1;
            lease.heartbeat_ms = now_ms;
        }
        if let Err(e) = self.save() {
            self.leases[i] = before;
            return Err(e);
        }
        rc4_obs::metrics::counter_add("campaign.lease.granted", 1);
        if regrant {
            rc4_obs::metrics::counter_add("campaign.lease.regranted", 1);
        }
        Ok(Some(self.leases[i].clone()))
    }

    /// Records a progress heartbeat from `owner` for lease `id`, persisting
    /// the transition. Returns `false` — ignoring the report — when the
    /// lease is not currently owned by `owner` (a zombie worker whose lease
    /// was re-granted).
    ///
    /// # Errors
    ///
    /// [`DatasetError::InvalidConfig`] for an unknown lease ID,
    /// [`DatasetError::Io`] when persisting fails.
    pub fn heartbeat(
        &mut self,
        id: u64,
        owner: &str,
        keys_done: u64,
        now_ms: u64,
    ) -> Result<bool, DatasetError> {
        let lease = self.lease_mut(id)?;
        if !lease.state.is_owned() || lease.owner.as_deref() != Some(owner) {
            return Ok(false);
        }
        lease.state = LeaseState::Running;
        lease.keys_done = keys_done;
        lease.heartbeat_ms = now_ms;
        self.save()?;
        Ok(true)
    }

    /// Marks lease `id` complete on `owner`'s report, persisting. Returns
    /// `false` — ignoring the report — for stale owners, matching
    /// [`CampaignManifest::heartbeat`].
    ///
    /// # Errors
    ///
    /// As [`CampaignManifest::heartbeat`].
    pub fn complete(&mut self, id: u64, owner: &str) -> Result<bool, DatasetError> {
        let lease = self.lease_mut(id)?;
        if !lease.state.is_owned() || lease.owner.as_deref() != Some(owner) {
            return Ok(false);
        }
        lease.state = LeaseState::Complete;
        lease.owner = None;
        self.save()?;
        rc4_obs::metrics::counter_add("campaign.lease.completed", 1);
        Ok(true)
    }

    /// Expires every lease currently owned by `owner` (worker crashed or
    /// disconnected), persisting. Returns the expired lease IDs.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Io`] when persisting fails.
    pub fn expire_owner(&mut self, owner: &str) -> Result<Vec<u64>, DatasetError> {
        let ids: Vec<u64> = self
            .leases
            .iter()
            .filter(|l| l.state.is_owned() && l.owner.as_deref() == Some(owner))
            .map(|l| l.id)
            .collect();
        for &id in &ids {
            let lease = self.lease_mut(id)?;
            lease.state = LeaseState::Expired;
            lease.owner = None;
        }
        if !ids.is_empty() {
            self.save()?;
            rc4_obs::metrics::counter_add("campaign.lease.expired", ids.len() as u64);
        }
        Ok(ids)
    }

    /// Expires every owned lease whose last heartbeat is older than
    /// `timeout_ms` (hung worker), persisting. Returns the expired IDs.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Io`] when persisting fails.
    pub fn expire_stale(&mut self, timeout_ms: u64, now_ms: u64) -> Result<Vec<u64>, DatasetError> {
        let ids: Vec<u64> = self
            .leases
            .iter()
            .filter(|l| l.state.is_owned() && now_ms.saturating_sub(l.heartbeat_ms) > timeout_ms)
            .map(|l| l.id)
            .collect();
        for &id in &ids {
            let lease = self.lease_mut(id)?;
            lease.state = LeaseState::Expired;
            lease.owner = None;
        }
        if !ids.is_empty() {
            self.save()?;
            rc4_obs::metrics::counter_add("campaign.lease.expired", ids.len() as u64);
        }
        Ok(ids)
    }

    /// Whether every lease is complete (the campaign is ready to merge).
    pub fn all_complete(&self) -> bool {
        self.leases.iter().all(|l| l.state == LeaseState::Complete)
    }

    /// Keys reported done across all leases.
    pub fn keys_done(&self) -> u64 {
        self.leases
            .iter()
            .map(|l| {
                if l.state == LeaseState::Complete {
                    self.lease_keys_total(l)
                } else {
                    l.keys_done
                }
            })
            .sum()
    }

    /// Total keys a lease will hold when complete.
    pub fn lease_keys_total(&self, lease: &Lease) -> u64 {
        (lease.worker_lo..lease.worker_hi)
            .map(|w| self.spec.config.keys_for_worker(w))
            .sum()
    }

    /// Per-state lease counts, in [`LeaseState`] declaration order
    /// (pending, granted, running, complete, expired).
    pub fn state_counts(&self) -> [u64; 5] {
        let mut counts = [0u64; 5];
        for lease in &self.leases {
            let i = match lease.state {
                LeaseState::Pending => 0,
                LeaseState::Granted => 1,
                LeaseState::Running => 2,
                LeaseState::Complete => 3,
                LeaseState::Expired => 4,
            };
            counts[i] += 1;
        }
        counts
    }

    fn lease_mut(&mut self, id: u64) -> Result<&mut Lease, DatasetError> {
        self.leases
            .iter_mut()
            .find(|l| l.id == id)
            .ok_or_else(|| DatasetError::InvalidConfig(format!("campaign has no lease {id}")))
    }
}

/// A coordinator → worker instruction, one JSON object per line on the
/// worker's stdin.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerCommand {
    /// Generate (or resume) the shard for this lease.
    Lease {
        /// Lease ID, echoed back in every event about it.
        id: u64,
        /// First logical worker index covered.
        worker_lo: u64,
        /// One past the last logical worker index covered.
        worker_hi: u64,
        /// Shard file name relative to the campaign directory.
        shard: String,
    },
    /// No more leases; exit cleanly.
    Shutdown,
}

impl WorkerCommand {
    /// Serializes to one newline-terminated JSON line.
    pub fn to_line(&self) -> String {
        let value = match self {
            WorkerCommand::Lease {
                id,
                worker_lo,
                worker_hi,
                shard,
            } => Value::Object(vec![
                ("cmd".to_string(), Value::Str("lease".to_string())),
                ("id".to_string(), Value::UInt(*id)),
                ("worker_lo".to_string(), Value::UInt(*worker_lo)),
                ("worker_hi".to_string(), Value::UInt(*worker_hi)),
                ("shard".to_string(), Value::Str(shard.clone())),
            ]),
            WorkerCommand::Shutdown => Value::Object(vec![(
                "cmd".to_string(),
                Value::Str("shutdown".to_string()),
            )]),
        };
        let mut line = serde_json::to_string(&value).expect("command serializes");
        line.push('\n');
        line
    }

    /// Parses one JSON line.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Serialization`] naming the malformed or unknown part.
    pub fn parse(line: &str) -> Result<Self, DatasetError> {
        let value: Value = serde_json::from_str(line.trim())
            .map_err(|e| DatasetError::Serialization(format!("campaign command: {e}")))?;
        match str_field(&value, "cmd")? {
            "lease" => Ok(WorkerCommand::Lease {
                id: u64_field(&value, "id")?,
                worker_lo: u64_field(&value, "worker_lo")?,
                worker_hi: u64_field(&value, "worker_hi")?,
                shard: str_field(&value, "shard")?.to_string(),
            }),
            "shutdown" => Ok(WorkerCommand::Shutdown),
            other => Err(DatasetError::Serialization(format!(
                "unknown campaign command `{other}`"
            ))),
        }
    }
}

/// A worker → coordinator report, one JSON object per line on the worker's
/// stdout.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerEvent {
    /// The worker is up and wants its first lease.
    Ready {
        /// The worker's self-chosen identity (its manifest `owner` string).
        worker: String,
    },
    /// The worker accepted a lease and began generating.
    Started {
        /// The lease being worked.
        id: u64,
    },
    /// Checkpoint progress (one per on-disk checkpoint flush).
    Heartbeat {
        /// The lease being worked.
        id: u64,
        /// Keys generated so far.
        keys_done: u64,
        /// Keys the lease will hold when complete.
        keys_total: u64,
    },
    /// The lease's shard is complete on disk; the worker wants another.
    Complete {
        /// The finished lease.
        id: u64,
    },
    /// The lease failed; the shard (if any) holds the last good checkpoint.
    Failed {
        /// The failed lease.
        id: u64,
        /// Human-readable cause.
        error: String,
    },
}

impl WorkerEvent {
    /// Serializes to one newline-terminated JSON line.
    pub fn to_line(&self) -> String {
        let mut fields = Vec::new();
        match self {
            WorkerEvent::Ready { worker } => {
                fields.push(("event".to_string(), Value::Str("ready".to_string())));
                fields.push(("worker".to_string(), Value::Str(worker.clone())));
            }
            WorkerEvent::Started { id } => {
                fields.push(("event".to_string(), Value::Str("started".to_string())));
                fields.push(("id".to_string(), Value::UInt(*id)));
            }
            WorkerEvent::Heartbeat {
                id,
                keys_done,
                keys_total,
            } => {
                fields.push(("event".to_string(), Value::Str("heartbeat".to_string())));
                fields.push(("id".to_string(), Value::UInt(*id)));
                fields.push(("keys_done".to_string(), Value::UInt(*keys_done)));
                fields.push(("keys_total".to_string(), Value::UInt(*keys_total)));
            }
            WorkerEvent::Complete { id } => {
                fields.push(("event".to_string(), Value::Str("complete".to_string())));
                fields.push(("id".to_string(), Value::UInt(*id)));
            }
            WorkerEvent::Failed { id, error } => {
                fields.push(("event".to_string(), Value::Str("failed".to_string())));
                fields.push(("id".to_string(), Value::UInt(*id)));
                fields.push(("error".to_string(), Value::Str(error.clone())));
            }
        }
        let mut line = serde_json::to_string(&Value::Object(fields)).expect("event serializes");
        line.push('\n');
        line
    }

    /// Parses one JSON line.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Serialization`] naming the malformed or unknown part.
    pub fn parse(line: &str) -> Result<Self, DatasetError> {
        let value: Value = serde_json::from_str(line.trim())
            .map_err(|e| DatasetError::Serialization(format!("campaign event: {e}")))?;
        match str_field(&value, "event")? {
            "ready" => Ok(WorkerEvent::Ready {
                worker: str_field(&value, "worker")?.to_string(),
            }),
            "started" => Ok(WorkerEvent::Started {
                id: u64_field(&value, "id")?,
            }),
            "heartbeat" => Ok(WorkerEvent::Heartbeat {
                id: u64_field(&value, "id")?,
                keys_done: u64_field(&value, "keys_done")?,
                keys_total: u64_field(&value, "keys_total")?,
            }),
            "complete" => Ok(WorkerEvent::Complete {
                id: u64_field(&value, "id")?,
            }),
            "failed" => Ok(WorkerEvent::Failed {
                id: u64_field(&value, "id")?,
                error: str_field(&value, "error")?.to_string(),
            }),
            other => Err(DatasetError::Serialization(format!(
                "unknown campaign event `{other}`"
            ))),
        }
    }
}

fn u64_field(value: &Value, name: &str) -> Result<u64, DatasetError> {
    match value.field(name) {
        Ok(Value::UInt(n)) => Ok(*n),
        _ => Err(DatasetError::Serialization(format!(
            "campaign message lacks numeric field `{name}`"
        ))),
    }
}

fn str_field<'a>(value: &'a Value, name: &str) -> Result<&'a str, DatasetError> {
    match value.field(name) {
        Ok(Value::Str(s)) => Ok(s),
        _ => Err(DatasetError::Serialization(format!(
            "campaign message lacks string field `{name}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(keys: u64, workers: usize) -> CampaignSpec {
        CampaignSpec {
            kind: "single".to_string(),
            shape: vec![8],
            config: GenerationConfig::with_keys(keys).workers(workers).seed(11),
        }
    }

    fn temp_manifest(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rc4-store-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("campaign.json")
    }

    #[test]
    fn plan_tiles_the_worker_range() {
        let path = temp_manifest("plan");
        let m = CampaignManifest::plan(&path, spec(1000, 10), 4).unwrap();
        let ranges: Vec<(u64, u64)> = m
            .leases
            .iter()
            .map(|l| (l.worker_lo, l.worker_hi))
            .collect();
        assert_eq!(ranges, vec![(0, 2), (2, 5), (5, 7), (7, 10)]);
        assert!(m.leases.iter().all(|l| l.state == LeaseState::Pending));
        assert_eq!(m.keys_done(), 0, "fresh campaign has no progress");

        // Too many leases for the worker count is a typed error.
        let over = temp_manifest("plan-over");
        assert!(matches!(
            CampaignManifest::plan(&over, spec(1000, 2), 3),
            Err(DatasetError::InvalidConfig(_))
        ));
        // Planning over an existing manifest is refused.
        assert!(matches!(
            CampaignManifest::plan(&path, spec(1000, 10), 4),
            Err(DatasetError::Io(msg)) if msg.contains("resume")
        ));
    }

    #[test]
    fn lease_lifecycle_persists_across_reloads() {
        let path = temp_manifest("lifecycle");
        let mut m = CampaignManifest::plan(&path, spec(600, 4), 2).unwrap();

        let lease = m.grant_next("w1", 100).unwrap().unwrap();
        assert_eq!(lease.id, 0);
        assert_eq!(lease.state, LeaseState::Granted);
        assert_eq!(lease.attempts, 1);

        assert!(m.heartbeat(0, "w1", 50, 200).unwrap());
        // A zombie owner's reports are ignored, not fatal.
        assert!(!m.heartbeat(0, "w2", 999, 201).unwrap());
        assert!(!m.complete(0, "w2").unwrap());

        // Crash: the worker's leases expire, then re-grant to a new worker.
        let expired = m.expire_owner("w1").unwrap();
        assert_eq!(expired, vec![0]);
        let again = m.grant_next("w2", 300).unwrap().unwrap();
        assert_eq!(again.id, 0, "expired lease is re-granted first");
        assert_eq!(again.attempts, 2);
        assert!(m.complete(0, "w2").unwrap());

        // The second lease via the stale-heartbeat path.
        let l1 = m.grant_next("w3", 400).unwrap().unwrap();
        assert_eq!(l1.id, 1);
        assert_eq!(m.expire_stale(1000, 5000).unwrap(), vec![1]);
        let l1 = m.grant_next("w4", 5100).unwrap().unwrap();
        assert_eq!(l1.attempts, 2);
        assert!(m.complete(1, "w4").unwrap());
        assert!(m.all_complete());
        assert!(m.grant_next("w5", 6000).unwrap().is_none());

        // Everything above survives a reload.
        let reloaded = CampaignManifest::load(&path).unwrap();
        assert!(reloaded.all_complete());
        assert_eq!(reloaded.leases[0].attempts, 2);
        assert_eq!(reloaded.keys_done(), 600);
        assert_eq!(reloaded.state_counts(), [0, 0, 0, 2, 0]);
    }

    #[test]
    fn corrupt_or_wrong_version_manifests_are_typed_errors() {
        let path = temp_manifest("corrupt");
        std::fs::write(&path, "{ nope").unwrap();
        assert!(matches!(
            CampaignManifest::load(&path),
            Err(DatasetError::Corrupt(_))
        ));
        std::fs::write(&path, r#"{"version": 99, "spec": {}, "leases": []}"#).unwrap();
        assert!(matches!(
            CampaignManifest::load(&path),
            Err(DatasetError::Corrupt(msg)) if msg.contains("version 99")
        ));

        // A manifest whose leases leave a gap is rejected on load.
        let mut m = CampaignManifest::plan(temp_manifest("gap"), spec(100, 4), 2).unwrap();
        m.leases[1].worker_lo = 3;
        m.save().unwrap();
        assert!(matches!(
            CampaignManifest::load(m.path()),
            Err(DatasetError::Corrupt(msg)) if msg.contains("contiguous")
        ));
    }

    #[test]
    fn wire_commands_and_events_round_trip() {
        let commands = [
            WorkerCommand::Lease {
                id: 3,
                worker_lo: 4,
                worker_hi: 8,
                shard: "lease-0003.ds".to_string(),
            },
            WorkerCommand::Shutdown,
        ];
        for cmd in commands {
            let line = cmd.to_line();
            assert!(line.ends_with('\n'));
            assert_eq!(WorkerCommand::parse(&line).unwrap(), cmd);
        }
        let events = [
            WorkerEvent::Ready {
                worker: "w1".to_string(),
            },
            WorkerEvent::Started { id: 3 },
            WorkerEvent::Heartbeat {
                id: 3,
                keys_done: 100,
                keys_total: 400,
            },
            WorkerEvent::Complete { id: 3 },
            WorkerEvent::Failed {
                id: 3,
                error: "disk full".to_string(),
            },
        ];
        for event in events {
            let line = event.to_line();
            assert_eq!(WorkerEvent::parse(&line).unwrap(), event);
        }
        assert!(WorkerCommand::parse("{\"cmd\":\"dance\"}").is_err());
        assert!(WorkerEvent::parse("not json").is_err());
    }
}
