//! N-way shard merge: the on-disk analogue of the paper's "merge the counts
//! from ~80 machines" step.
//!
//! Merging validates that every input shard belongs to the *same* master
//! dataset — identical kind, shape and generation configuration — that each
//! shard is complete, and that the covered worker ranges are seed-disjoint
//! (non-overlapping) and tile a contiguous range with no gaps. Counter cells
//! are then summed, which is exact: the result is cell-for-cell the dataset a
//! single run over the union of the worker streams would have produced.

use std::path::Path;

use rc4_stats::{DatasetError, StorableDataset};

use crate::format::ShardHeader;
use crate::shard::{read_shard, write_shard};

/// Merges `inputs` (two or more complete, disjoint shards of one master
/// configuration) into a single shard at `out`, returning the merged header.
///
/// # Errors
///
/// * [`DatasetError::InvalidConfig`] — fewer than two inputs, or an input is
///   incomplete (resume it first).
/// * [`DatasetError::ShapeMismatch`] — inputs disagree on kind, shape or
///   configuration, overlap in worker ranges (duplicate derived seeds), or
///   leave a gap in the covered range.
/// * Everything [`read_shard`] / [`write_shard`] return.
pub fn merge_shards<D: StorableDataset>(
    inputs: &[&Path],
    out: &Path,
) -> Result<ShardHeader, DatasetError> {
    if inputs.len() < 2 {
        return Err(DatasetError::InvalidConfig(
            "merge needs at least two input shards".into(),
        ));
    }

    let mut shards = Vec::with_capacity(inputs.len());
    for path in inputs {
        let shard = read_shard::<D>(path)?;
        if !shard.header.is_complete() {
            return Err(DatasetError::InvalidConfig(format!(
                "{}: shard is incomplete ({} of {} keys); resume it before merging",
                path.display(),
                shard.header.keys_done(),
                shard.header.keys_total()
            )));
        }
        shards.push((*path, shard));
    }

    let (first_path, first) = &shards[0];
    for (path, shard) in &shards[1..] {
        if shard.header.kind != first.header.kind || shard.header.shape != first.header.shape {
            return Err(DatasetError::ShapeMismatch(format!(
                "{} and {} hold differently shaped datasets",
                first_path.display(),
                path.display()
            )));
        }
        if shard.header.config != first.header.config {
            return Err(DatasetError::ShapeMismatch(format!(
                "{} and {} belong to different generation configurations \
                 (keys/workers/seed/key_len must all match)",
                first_path.display(),
                path.display()
            )));
        }
    }

    // Worker ranges must be pairwise disjoint (each worker index is a
    // distinct derived seed stream; overlap would double-count keys) and
    // tile a contiguous range (a gap would silently drop part of the key
    // space).
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by_key(|&i| shards[i].1.header.worker_lo);
    for w in order.windows(2) {
        let (prev_path, prev) = &shards[w[0]];
        let (next_path, next) = &shards[w[1]];
        if next.header.worker_lo < prev.header.worker_hi {
            return Err(DatasetError::ShapeMismatch(format!(
                "{} (workers {}..{}) and {} (workers {}..{}) overlap: \
                 the same derived seed streams would be counted twice",
                prev_path.display(),
                prev.header.worker_lo,
                prev.header.worker_hi,
                next_path.display(),
                next.header.worker_lo,
                next.header.worker_hi
            )));
        }
        if next.header.worker_lo > prev.header.worker_hi {
            return Err(DatasetError::ShapeMismatch(format!(
                "workers {}..{} are covered by no input shard (gap between {} and {})",
                prev.header.worker_hi,
                next.header.worker_lo,
                prev_path.display(),
                next_path.display()
            )));
        }
    }

    let worker_lo = shards[order[0]].1.header.worker_lo;
    let worker_hi = shards[*order.last().expect("non-empty")].1.header.worker_hi;
    let mut progress = Vec::with_capacity((worker_hi - worker_lo) as usize);
    for &i in &order {
        progress.extend_from_slice(&shards[i].1.header.progress);
    }
    let (kind, config, shape, cells) = {
        let h = &shards[0].1.header;
        (h.kind.clone(), h.config, h.shape.clone(), h.cells)
    };

    let mut merged: Option<D> = None;
    for &i in &order {
        let dataset = std::mem::replace(&mut shards[i].1.dataset, D::empty_with_shape(&shape)?);
        merged = Some(match merged {
            None => dataset,
            Some(mut acc) => {
                acc.merge_same_shape(dataset)?;
                acc
            }
        });
    }
    let merged = merged.expect("at least two shards");

    let header = ShardHeader {
        kind,
        config,
        shape,
        worker_lo,
        worker_hi,
        progress,
        cells,
    };
    header.validate(out)?;
    write_shard(out, &header, &merged)?;
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_shard, GenerateOptions, ShardSpec};
    use rc4_stats::{single::SingleByteDataset, GenerationConfig, KeystreamCollector};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rc4-store-merge-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn shard(dir: &Path, name: &str, config: &GenerationConfig, lo: u64, hi: u64) -> PathBuf {
        let path = dir.join(name);
        generate_shard(
            &path,
            SingleByteDataset::new(5),
            &ShardSpec::workers(*config, lo, hi),
            &GenerateOptions::default(),
            None,
            &mut |_, _| {},
        )
        .unwrap();
        path
    }

    #[test]
    fn merging_all_shards_reproduces_the_full_dataset() {
        let dir = temp_dir("full");
        let config = GenerationConfig::with_keys(700).workers(3).seed(17);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let b = shard(&dir, "b.ds", &config, 1, 3);
        let out = dir.join("master.ds");
        let header = merge_shards::<SingleByteDataset>(&[&a, &b], &out).unwrap();
        assert_eq!((header.worker_lo, header.worker_hi), (0, 3));
        assert!(header.is_complete());

        let master = crate::shard::read_shard::<SingleByteDataset>(&out).unwrap();
        let mut direct = SingleByteDataset::new(5);
        rc4_stats::worker::generate(&mut direct, &config).unwrap();
        assert_eq!(master.dataset.keystreams(), direct.keystreams());
        for r in 1..=5 {
            assert_eq!(master.dataset.counts_at(r), direct.counts_at(r));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_and_overlapping_inputs_are_rejected() {
        let dir = temp_dir("bad");
        let config = GenerationConfig::with_keys(100).workers(2).seed(1);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let b = shard(&dir, "b.ds", &config, 1, 2);

        // Different seed => different configuration.
        let other = GenerationConfig::with_keys(100).workers(2).seed(2);
        let c = shard(&dir, "c.ds", &other, 1, 2);
        let out = dir.join("out.ds");
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&a, &c], &out),
            Err(DatasetError::ShapeMismatch(msg)) if msg.contains("configurations")
        ));

        // Overlap: the same worker twice.
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&b, &b], &out),
            Err(DatasetError::ShapeMismatch(msg)) if msg.contains("overlap")
        ));

        // Different shape.
        let wide = dir.join("wide.ds");
        generate_shard(
            &wide,
            SingleByteDataset::new(9),
            &ShardSpec::workers(config, 1, 2),
            &GenerateOptions::default(),
            None,
            &mut |_, _| {},
        )
        .unwrap();
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&a, &wide], &out),
            Err(DatasetError::ShapeMismatch(msg)) if msg.contains("shaped")
        ));

        // A single input is not a merge.
        assert!(merge_shards::<SingleByteDataset>(&[&a], &out).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gap_in_worker_coverage_is_rejected() {
        let dir = temp_dir("gap");
        let config = GenerationConfig::with_keys(100).workers(3).seed(1);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let b = shard(&dir, "b.ds", &config, 2, 3);
        let out = dir.join("out.ds");
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&a, &b], &out),
            Err(DatasetError::ShapeMismatch(msg)) if msg.contains("no input shard")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incomplete_shard_is_rejected_with_a_resume_hint() {
        let dir = temp_dir("incomplete");
        let config = GenerationConfig::with_keys(10_000).workers(2).seed(1);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let partial = dir.join("partial.ds");
        generate_shard(
            &partial,
            SingleByteDataset::new(5),
            &ShardSpec::workers(config, 1, 2),
            &GenerateOptions {
                checkpoint_keys: 500,
                stop_after_keys: Some(1_000),
            },
            None,
            &mut |_, _| {},
        )
        .unwrap();
        let out = dir.join("out.ds");
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&a, &partial], &out),
            Err(DatasetError::InvalidConfig(msg)) if msg.contains("resume")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
