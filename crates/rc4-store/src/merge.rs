//! N-way shard merge: the on-disk analogue of the paper's "merge the counts
//! from ~80 machines" step.
//!
//! Merging validates that every input shard belongs to the *same* master
//! dataset — identical kind, shape and generation configuration — that each
//! shard is complete, and that the covered worker ranges are seed-disjoint
//! (non-overlapping) and tile a contiguous range with no gaps. Counter cells
//! are then summed, which is exact: the result is cell-for-cell the dataset a
//! single run over the union of the worker streams would have produced.
//!
//! Three entry points share that validation:
//!
//! * [`merge_shards`] — loads every input into memory; simplest, and fine
//!   when the merged table fits in RAM a few times over.
//! * [`merge_shards_streaming`] — out-of-core: streams fixed-size cell
//!   windows from every input at once ([`crate::shard::open_cells`]) and
//!   sums them into the output ([`crate::shard::create_cells`]), so peak
//!   memory is `O(window × inputs)` instead of `O(cells × inputs)`.
//! * [`merge_shards_tiered`] — caps the number of simultaneously open
//!   streams at [`MergeOptions::fan_in`] by merging contiguous groups into
//!   intermediate shards first — the shape of a fleet campaign's final
//!   aggregation step, where hundreds of worker shards arrive at once.
//!
//! Because `u64` addition is commutative and associative, all three produce
//! cell-for-cell identical outputs; with the default raw encoding the files
//! are byte-identical.

use std::path::{Path, PathBuf};
use std::time::Instant;

use rc4_stats::{DatasetError, StorableDataset};

use crate::codec::CellEncoding;
use crate::format::ShardHeader;
use crate::shard::{create_cells, open_cells, peek_shard, read_shard, write_shard};

/// Tuning knobs for the out-of-core merges.
#[derive(Debug, Clone, Copy)]
pub struct MergeOptions {
    /// Cells summed per streaming window. Peak merge memory is roughly
    /// `window_cells × (inputs + 1) × 8` bytes.
    pub window_cells: usize,
    /// Maximum input shards merged in one pass by [`merge_shards_tiered`]
    /// (equivalently: simultaneously open input streams).
    pub fan_in: usize,
    /// Cell encoding of the merged output (and of tier intermediates). Raw
    /// keeps the campaign byte-identity contract; delta+varint trades CPU
    /// for disk.
    pub encoding: CellEncoding,
}

impl Default for MergeOptions {
    fn default() -> Self {
        Self {
            // 256 Ki cells = 2 MiB per open buffer.
            window_cells: 1 << 18,
            fan_in: 16,
            encoding: CellEncoding::Raw,
        }
    }
}

/// Merges `inputs` (two or more complete, disjoint shards of one master
/// configuration) into a single shard at `out`, returning the merged header.
///
/// # Errors
///
/// * [`DatasetError::InvalidConfig`] — fewer than two inputs, or an input is
///   incomplete (resume it first).
/// * [`DatasetError::ShapeMismatch`] — inputs disagree on kind, shape or
///   configuration, overlap in worker ranges (duplicate derived seeds), or
///   leave a gap in the covered range.
/// * Everything [`read_shard`] / [`write_shard`] return.
pub fn merge_shards<D: StorableDataset>(
    inputs: &[&Path],
    out: &Path,
) -> Result<ShardHeader, DatasetError> {
    if inputs.len() < 2 {
        return Err(DatasetError::InvalidConfig(
            "merge needs at least two input shards".into(),
        ));
    }

    let mut shards = Vec::with_capacity(inputs.len());
    for path in inputs {
        shards.push((*path, read_shard::<D>(path)?));
    }
    let headers: Vec<(&Path, &ShardHeader)> = shards.iter().map(|(p, s)| (*p, &s.header)).collect();
    let (order, header) = plan_merge(&headers, out)?;
    let shape = header.shape.clone();

    let mut merged: Option<D> = None;
    for &i in &order {
        let dataset = std::mem::replace(&mut shards[i].1.dataset, D::empty_with_shape(&shape)?);
        merged = Some(match merged {
            None => dataset,
            Some(mut acc) => {
                acc.merge_same_shape(dataset)?;
                acc
            }
        });
    }
    let merged = merged.expect("at least two shards");

    write_shard(out, &header, &merged)?;
    Ok(header)
}

/// The validation every merge flavour shares: completeness, identical
/// kind/shape/config, seed-disjoint contiguous worker coverage. Returns the
/// input indices in worker order plus the merged (already-validated) header.
fn plan_merge(
    shards: &[(&Path, &ShardHeader)],
    out: &Path,
) -> Result<(Vec<usize>, ShardHeader), DatasetError> {
    if shards.len() < 2 {
        return Err(DatasetError::InvalidConfig(
            "merge needs at least two input shards".into(),
        ));
    }
    for (path, header) in shards {
        if !header.is_complete() {
            return Err(DatasetError::InvalidConfig(format!(
                "{}: shard is incomplete ({} of {} keys); resume it before merging",
                path.display(),
                header.keys_done(),
                header.keys_total()
            )));
        }
    }

    let (first_path, first) = &shards[0];
    for (path, header) in &shards[1..] {
        if header.kind != first.kind || header.shape != first.shape {
            return Err(DatasetError::ShapeMismatch(format!(
                "{} and {} hold differently shaped datasets",
                first_path.display(),
                path.display()
            )));
        }
        if header.config != first.config {
            return Err(DatasetError::ShapeMismatch(format!(
                "{} and {} belong to different generation configurations \
                 (keys/workers/seed/key_len must all match)",
                first_path.display(),
                path.display()
            )));
        }
    }

    // Worker ranges must be pairwise disjoint (each worker index is a
    // distinct derived seed stream; overlap would double-count keys) and
    // tile a contiguous range (a gap would silently drop part of the key
    // space).
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by_key(|&i| shards[i].1.worker_lo);
    for w in order.windows(2) {
        let (prev_path, prev) = &shards[w[0]];
        let (next_path, next) = &shards[w[1]];
        if next.worker_lo < prev.worker_hi {
            return Err(DatasetError::ShapeMismatch(format!(
                "{} (workers {}..{}) and {} (workers {}..{}) overlap: \
                 the same derived seed streams would be counted twice",
                prev_path.display(),
                prev.worker_lo,
                prev.worker_hi,
                next_path.display(),
                next.worker_lo,
                next.worker_hi
            )));
        }
        if next.worker_lo > prev.worker_hi {
            return Err(DatasetError::ShapeMismatch(format!(
                "workers {}..{} are covered by no input shard (gap between {} and {})",
                prev.worker_hi,
                next.worker_lo,
                prev_path.display(),
                next_path.display()
            )));
        }
    }

    let worker_lo = shards[order[0]].1.worker_lo;
    let worker_hi = shards[*order.last().expect("non-empty")].1.worker_hi;
    let mut progress = Vec::with_capacity((worker_hi - worker_lo) as usize);
    for &i in &order {
        progress.extend_from_slice(&shards[i].1.progress);
    }
    let header = ShardHeader {
        kind: first.kind.clone(),
        config: first.config,
        shape: first.shape.clone(),
        worker_lo,
        worker_hi,
        progress,
        cells: first.cells,
    };
    header.validate(out)?;
    Ok((order, header))
}

/// Merges like [`merge_shards`] but out-of-core: cells are streamed in
/// [`MergeOptions::window_cells`]-sized windows, so the merged table never
/// has to fit in memory. Every input's CRC-32 trailer is verified *before*
/// the output is renamed into place — corrupt inputs can never produce a
/// visible output file.
///
/// With `options.encoding == CellEncoding::Raw` (the default) the output is
/// byte-identical to what [`merge_shards`] writes.
///
/// # Errors
///
/// As [`merge_shards`], plus [`DatasetError::Corrupt`] when an input's kind
/// tag or declared cell count contradicts `D`.
pub fn merge_shards_streaming<D: StorableDataset>(
    inputs: &[&Path],
    out: &Path,
    options: &MergeOptions,
) -> Result<ShardHeader, DatasetError> {
    let _span = rc4_obs::Span::enter_with(
        "store.merge.stream",
        rc4_obs::kv! { "inputs" => inputs.len(), "out" => out.display() },
    );
    let start = rc4_obs::metrics::is_enabled().then(Instant::now);

    let mut peeked = Vec::with_capacity(inputs.len());
    for path in inputs {
        let (header, _encoding) = peek_shard(path)?;
        if header.kind != D::kind() {
            return Err(DatasetError::corrupt(
                path,
                format!(
                    "holds a '{}' dataset, expected '{}'",
                    header.kind,
                    D::kind()
                ),
            ));
        }
        let implied = D::cell_count_for_shape(&header.shape)
            .map_err(|e| DatasetError::corrupt(path, format!("invalid stored shape: {e}")))?;
        if implied != header.cells {
            return Err(DatasetError::corrupt(
                path,
                format!(
                    "header declares {} cells but the shape implies {implied}",
                    header.cells
                ),
            ));
        }
        peeked.push(header);
    }
    let headers: Vec<(&Path, &ShardHeader)> = inputs.iter().copied().zip(peeked.iter()).collect();
    let (order, merged) = plan_merge(&headers, out)?;

    let mut streams = Vec::with_capacity(order.len());
    for &i in &order {
        streams.push(open_cells(inputs[i])?);
    }
    let mut writer = create_cells(out, &merged, options.encoding)?;

    let window = options
        .window_cells
        .max(1)
        .min(merged.cells.max(1) as usize);
    let mut acc = vec![0u64; window];
    let mut scratch = vec![0u64; window];
    let mut left = merged.cells;
    while left > 0 {
        let n = window.min(left as usize);
        acc[..n].fill(0);
        for stream in &mut streams {
            stream.read_cells(&mut scratch[..n])?;
            for (a, &b) in acc[..n].iter_mut().zip(&scratch[..n]) {
                *a += b;
            }
        }
        writer.write_cells(&acc[..n])?;
        left -= n as u64;
    }

    // Inputs are integrity-checked before the output becomes visible.
    let mut read_bytes = 0u64;
    for stream in streams {
        read_bytes += stream.bytes_read();
        stream.finish()?;
    }
    let write_bytes = writer.bytes_written();
    writer.finish()?;

    rc4_obs::metrics::counter_add("store.merge.inputs", inputs.len() as u64);
    rc4_obs::metrics::counter_add("store.merge.read_bytes", read_bytes);
    rc4_obs::metrics::counter_add("store.merge.write_bytes", write_bytes);
    if let Some(start) = start {
        rc4_obs::metrics::observe_us("store.merge_us", start.elapsed().as_micros() as u64);
    }
    Ok(merged)
}

/// Merges any number of shards while never holding more than
/// [`MergeOptions::fan_in`] input streams open: inputs are sorted by worker
/// range and merged in contiguous groups into intermediate shards (siblings
/// of `out`, cleaned up afterwards), tier by tier, until one final
/// [`merge_shards_streaming`] pass writes `out`.
///
/// Produces cell-for-cell (and, for raw encoding, byte-for-byte) the same
/// output as a single flat merge.
///
/// # Errors
///
/// As [`merge_shards_streaming`].
pub fn merge_shards_tiered<D: StorableDataset>(
    inputs: &[&Path],
    out: &Path,
    options: &MergeOptions,
) -> Result<ShardHeader, DatasetError> {
    let fan_in = options.fan_in.max(2);
    if inputs.len() <= fan_in {
        return merge_shards_streaming::<D>(inputs, out, options);
    }

    // Sort once by worker range so every group covers a contiguous span.
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut lows = Vec::with_capacity(inputs.len());
    for path in inputs {
        lows.push(peek_shard(path)?.0.worker_lo);
    }
    order.sort_by_key(|&i| lows[i]);

    let out_name = out
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "merged".into());
    let mut level: Vec<PathBuf> = order.iter().map(|&i| inputs[i].to_path_buf()).collect();
    let mut temps: Vec<PathBuf> = Vec::new();
    let result = (|| {
        let mut tier = 0usize;
        while level.len() > fan_in {
            let mut next = Vec::with_capacity(level.len().div_ceil(fan_in));
            for (i, group) in level.chunks(fan_in).enumerate() {
                if group.len() == 1 {
                    // A lone trailing shard passes through to the next tier.
                    next.push(group[0].clone());
                    continue;
                }
                let tmp = out.with_file_name(format!("{out_name}.tier{tier}-{i}.part"));
                let refs: Vec<&Path> = group.iter().map(PathBuf::as_path).collect();
                merge_shards_streaming::<D>(&refs, &tmp, options)?;
                temps.push(tmp.clone());
                next.push(tmp);
            }
            level = next;
            tier += 1;
        }
        let refs: Vec<&Path> = level.iter().map(PathBuf::as_path).collect();
        merge_shards_streaming::<D>(&refs, out, options)
    })();
    for tmp in temps {
        let _ = std::fs::remove_file(tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_shard, GenerateOptions, ShardSpec};
    use rc4_stats::{single::SingleByteDataset, GenerationConfig, KeystreamCollector};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rc4-store-merge-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn shard(dir: &Path, name: &str, config: &GenerationConfig, lo: u64, hi: u64) -> PathBuf {
        let path = dir.join(name);
        generate_shard(
            &path,
            SingleByteDataset::new(5),
            &ShardSpec::workers(*config, lo, hi),
            &GenerateOptions::default(),
            None,
            &mut |_, _| {},
        )
        .unwrap();
        path
    }

    #[test]
    fn merging_all_shards_reproduces_the_full_dataset() {
        let dir = temp_dir("full");
        let config = GenerationConfig::with_keys(700).workers(3).seed(17);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let b = shard(&dir, "b.ds", &config, 1, 3);
        let out = dir.join("master.ds");
        let header = merge_shards::<SingleByteDataset>(&[&a, &b], &out).unwrap();
        assert_eq!((header.worker_lo, header.worker_hi), (0, 3));
        assert!(header.is_complete());

        let master = crate::shard::read_shard::<SingleByteDataset>(&out).unwrap();
        let mut direct = SingleByteDataset::new(5);
        rc4_stats::worker::generate(&mut direct, &config).unwrap();
        assert_eq!(master.dataset.keystreams(), direct.keystreams());
        for r in 1..=5 {
            assert_eq!(master.dataset.counts_at(r), direct.counts_at(r));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_and_overlapping_inputs_are_rejected() {
        let dir = temp_dir("bad");
        let config = GenerationConfig::with_keys(100).workers(2).seed(1);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let b = shard(&dir, "b.ds", &config, 1, 2);

        // Different seed => different configuration.
        let other = GenerationConfig::with_keys(100).workers(2).seed(2);
        let c = shard(&dir, "c.ds", &other, 1, 2);
        let out = dir.join("out.ds");
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&a, &c], &out),
            Err(DatasetError::ShapeMismatch(msg)) if msg.contains("configurations")
        ));

        // Overlap: the same worker twice.
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&b, &b], &out),
            Err(DatasetError::ShapeMismatch(msg)) if msg.contains("overlap")
        ));

        // Different shape.
        let wide = dir.join("wide.ds");
        generate_shard(
            &wide,
            SingleByteDataset::new(9),
            &ShardSpec::workers(config, 1, 2),
            &GenerateOptions::default(),
            None,
            &mut |_, _| {},
        )
        .unwrap();
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&a, &wide], &out),
            Err(DatasetError::ShapeMismatch(msg)) if msg.contains("shaped")
        ));

        // A single input is not a merge.
        assert!(merge_shards::<SingleByteDataset>(&[&a], &out).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_and_tiered_merges_are_byte_identical_to_in_memory() {
        let dir = temp_dir("stream");
        let config = GenerationConfig::with_keys(900).workers(6).seed(23);
        let shards: Vec<PathBuf> = (0..6)
            .map(|w| shard(&dir, &format!("{w}.ds"), &config, w, w + 1))
            .collect();
        let refs: Vec<&Path> = shards.iter().map(|p| p.as_path()).collect();

        let flat = dir.join("flat.ds");
        merge_shards::<SingleByteDataset>(&refs, &flat).unwrap();
        let flat_bytes = std::fs::read(&flat).unwrap();

        // Tiny windows force many refill/sum iterations.
        let streamed = dir.join("streamed.ds");
        let opts = MergeOptions {
            window_cells: 7,
            ..MergeOptions::default()
        };
        let header = merge_shards_streaming::<SingleByteDataset>(&refs, &streamed, &opts).unwrap();
        assert_eq!((header.worker_lo, header.worker_hi), (0, 6));
        assert_eq!(std::fs::read(&streamed).unwrap(), flat_bytes);

        // fan_in 2 over 6 inputs exercises two tiers of intermediates.
        let tiered = dir.join("tiered.ds");
        let opts = MergeOptions {
            window_cells: 7,
            fan_in: 2,
            ..MergeOptions::default()
        };
        merge_shards_tiered::<SingleByteDataset>(&refs, &tiered, &opts).unwrap();
        assert_eq!(std::fs::read(&tiered).unwrap(), flat_bytes);
        // Tier intermediates were cleaned up.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".part"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "leftover intermediates: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compressed_merge_output_holds_identical_cells() {
        let dir = temp_dir("compressed");
        let config = GenerationConfig::with_keys(300).workers(2).seed(5);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let b = shard(&dir, "b.ds", &config, 1, 2);
        let raw = dir.join("raw.ds");
        merge_shards::<SingleByteDataset>(&[&a, &b], &raw).unwrap();
        let packed = dir.join("packed.ds");
        let opts = MergeOptions {
            encoding: crate::codec::CellEncoding::DeltaVarint,
            ..MergeOptions::default()
        };
        merge_shards_streaming::<SingleByteDataset>(&[&a, &b], &packed, &opts).unwrap();
        let raw = crate::shard::read_shard::<SingleByteDataset>(&raw).unwrap();
        let packed = crate::shard::read_shard::<SingleByteDataset>(&packed).unwrap();
        assert_eq!(raw.header, packed.header);
        assert_eq!(raw.dataset.cell_slices(), packed.dataset.cell_slices());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_input_never_produces_an_output_file() {
        let dir = temp_dir("corrupt");
        let config = GenerationConfig::with_keys(200).workers(2).seed(9);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let b = shard(&dir, "b.ds", &config, 1, 2);
        // Flip one cell byte in `b`: the damage only surfaces at the CRC
        // check, which must run before the output becomes visible.
        let mut bytes = std::fs::read(&b).unwrap();
        let mid = bytes.len() - 100;
        bytes[mid] ^= 0x10;
        std::fs::write(&b, &bytes).unwrap();
        let out = dir.join("out.ds");
        let r = merge_shards_streaming::<SingleByteDataset>(&[&a, &b], &out, &Default::default());
        assert!(matches!(r, Err(DatasetError::Corrupt(msg)) if msg.contains("CRC")));
        assert!(!out.exists(), "corrupt input produced an output file");
        // The aborted writer's temp file was removed as well.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gap_in_worker_coverage_is_rejected() {
        let dir = temp_dir("gap");
        let config = GenerationConfig::with_keys(100).workers(3).seed(1);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let b = shard(&dir, "b.ds", &config, 2, 3);
        let out = dir.join("out.ds");
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&a, &b], &out),
            Err(DatasetError::ShapeMismatch(msg)) if msg.contains("no input shard")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incomplete_shard_is_rejected_with_a_resume_hint() {
        let dir = temp_dir("incomplete");
        let config = GenerationConfig::with_keys(10_000).workers(2).seed(1);
        let a = shard(&dir, "a.ds", &config, 0, 1);
        let partial = dir.join("partial.ds");
        generate_shard(
            &partial,
            SingleByteDataset::new(5),
            &ShardSpec::workers(config, 1, 2),
            &GenerateOptions {
                checkpoint_keys: 500,
                stop_after_keys: Some(1_000),
                encoding: CellEncoding::Raw,
            },
            None,
            &mut |_, _| {},
        )
        .unwrap();
        let out = dir.join("out.ds");
        assert!(matches!(
            merge_shards::<SingleByteDataset>(&[&a, &partial], &out),
            Err(DatasetError::InvalidConfig(msg)) if msg.contains("resume")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
