//! Cell codecs: how the `u64` counter cells of a shard are laid out on disk.
//!
//! Format version 1 stores every cell as 8 little-endian bytes. Version 2
//! stores the *delta* between consecutive cells, zigzag-mapped to unsigned
//! and LEB128-varint encoded. Neighbouring counter cells of a bias dataset
//! are statistically close (they count near-uniform byte values over the
//! same key budget), so deltas are small and most cells compress to one or
//! two bytes — typically a 3-6x size reduction on real count tables.
//!
//! The codec layer is deliberately streaming on both sides: the encoder is
//! fed cells incrementally and appends to a caller-owned buffer, the decoder
//! pulls bytes from any [`std::io::Read`] through an internal refill window.
//! That is what lets the out-of-core merge
//! ([`crate::merge::merge_shards_tiered`]) process shards far larger than
//! RAM in fixed-size cell windows. The byte-level layout is specified
//! normatively in `docs/shard-format.md`.

use std::io::Read;

use rc4_stats::DatasetError;

use crate::format::{FORMAT_VERSION, FORMAT_VERSION_COMPRESSED};

/// How the cell section of a shard file is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellEncoding {
    /// Format version 1: each cell as 8 little-endian bytes.
    #[default]
    Raw,
    /// Format version 2: consecutive-cell deltas, zigzag + LEB128 varint.
    DeltaVarint,
}

impl CellEncoding {
    /// The shard format version that carries this encoding.
    pub fn format_version(self) -> u32 {
        match self {
            CellEncoding::Raw => FORMAT_VERSION,
            CellEncoding::DeltaVarint => FORMAT_VERSION_COMPRESSED,
        }
    }

    /// The encoding carried by a shard format version, if supported.
    pub fn from_format_version(version: u32) -> Option<Self> {
        match version {
            FORMAT_VERSION => Some(CellEncoding::Raw),
            FORMAT_VERSION_COMPRESSED => Some(CellEncoding::DeltaVarint),
            _ => None,
        }
    }

    /// Human-readable name (`raw` / `delta-varint`), used by `dataset info`.
    pub fn name(self) -> &'static str {
        match self {
            CellEncoding::Raw => "raw",
            CellEncoding::DeltaVarint => "delta-varint",
        }
    }
}

/// Maps a signed delta to unsigned so small negative deltas stay small:
/// `0, -1, 1, -2, 2, ...` → `0, 1, 2, 3, 4, ...`.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Appends `v` as an LEB128 varint (1-10 bytes, little-endian base-128).
pub fn varint_encode(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decodes one LEB128 varint from the front of `bytes`, returning the value
/// and the number of bytes consumed. `None` on truncation or a varint longer
/// than the 10 bytes a `u64` can need.
pub fn varint_decode(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    for (i, &byte) in bytes.iter().enumerate().take(10) {
        // The 10th byte may only carry the single remaining bit of a u64.
        if i == 9 && byte > 0x01 {
            return None;
        }
        value |= u64::from(byte & 0x7F) << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

/// Streaming delta+varint encoder: feed cells in order, bytes accumulate in
/// a caller-owned buffer (so the shard writer controls flush granularity).
#[derive(Debug, Default)]
pub struct DeltaVarintEncoder {
    prev: u64,
}

impl DeltaVarintEncoder {
    /// A fresh encoder (the first cell is delta-ed against zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes one cell, appending its varint delta to `out`.
    pub fn push(&mut self, cell: u64, out: &mut Vec<u8>) {
        let delta = zigzag(cell.wrapping_sub(self.prev) as i64);
        varint_encode(delta, out);
        self.prev = cell;
    }
}

/// Encodes a whole cell slice-run into a fresh buffer — the convenience form
/// used by the in-memory round-trip tests and the bench smoke.
pub fn encode_cells_delta_varint<'a>(slices: impl IntoIterator<Item = &'a [u64]>) -> Vec<u8> {
    let mut enc = DeltaVarintEncoder::new();
    let mut out = Vec::new();
    for slice in slices {
        for &cell in slice {
            enc.push(cell, &mut out);
        }
    }
    out
}

/// Decodes exactly `out.len()` delta+varint cells from `bytes`, returning
/// the number of input bytes consumed.
pub fn decode_cells_delta_varint(bytes: &[u8], out: &mut [u64]) -> Option<usize> {
    let mut dec = DeltaVarintDecoder::new();
    let mut offset = 0usize;
    for cell in out.iter_mut() {
        let (value, used) = dec.next(&bytes[offset..])?;
        *cell = value;
        offset += used;
    }
    Some(offset)
}

/// Streaming delta+varint decoder over byte slices.
#[derive(Debug, Default)]
pub struct DeltaVarintDecoder {
    prev: u64,
}

impl DeltaVarintDecoder {
    /// A fresh decoder, mirroring [`DeltaVarintEncoder::new`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes the next cell from the front of `bytes`, returning the cell
    /// value and bytes consumed. `None` on truncated or malformed input.
    pub fn next(&mut self, bytes: &[u8]) -> Option<(u64, usize)> {
        let (delta, used) = varint_decode(bytes)?;
        let cell = self.prev.wrapping_add(unzigzag(delta) as u64);
        self.prev = cell;
        Some((cell, used))
    }
}

/// Refill window for [`CellReader`]: big enough that raw cells and worst-case
/// 10-byte varints always fit whole, small enough to stay cache-friendly.
const READ_BUF_LEN: usize = 64 << 10;

/// A streaming cell decoder over any byte source, for either encoding.
///
/// Reads cells in caller-sized windows without ever materializing the whole
/// cell section; the out-of-core merge runs one `CellReader` per input shard.
/// The reader keeps a running CRC-32 over exactly the bytes it decodes (the
/// caller seeds it with the preamble+header digest via [`CellReader::with_crc`]),
/// so the shard-level caller can verify the file trailer afterwards without
/// a second pass.
#[derive(Debug)]
pub struct CellReader<R: Read> {
    inner: R,
    encoding: CellEncoding,
    decoder: DeltaVarintDecoder,
    crc: crypto_prims::crc32::Crc32,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    /// Total bytes consumed from `inner` *through decoding* (refilled bytes
    /// not yet decoded are excluded).
    consumed: u64,
}

impl<R: Read> CellReader<R> {
    /// Wraps `inner`, decoding cells under `encoding`.
    pub fn new(inner: R, encoding: CellEncoding) -> Self {
        Self::with_crc(inner, encoding, crypto_prims::crc32::Crc32::new())
    }

    /// Wraps `inner` with a pre-seeded CRC (covering the bytes the caller
    /// already consumed before the cell section, i.e. preamble + header).
    pub fn with_crc(inner: R, encoding: CellEncoding, crc: crypto_prims::crc32::Crc32) -> Self {
        Self {
            inner,
            encoding,
            decoder: DeltaVarintDecoder::new(),
            crc,
            buf: vec![0u8; READ_BUF_LEN],
            pos: 0,
            len: 0,
            consumed: 0,
        }
    }

    /// Bytes consumed from the underlying reader by decoded cells so far.
    pub fn bytes_consumed(&self) -> u64 {
        self.consumed
    }

    /// Ensures at least `want` unread bytes are buffered (or fewer at EOF).
    fn fill(&mut self, want: usize) -> Result<(), std::io::Error> {
        if self.len - self.pos >= want {
            return Ok(());
        }
        // Everything before `pos` has been decoded: fold it into the CRC
        // before compacting so the digest tracks exactly the consumed bytes.
        self.crc.update(&self.buf[..self.pos]);
        self.buf.copy_within(self.pos..self.len, 0);
        self.len -= self.pos;
        self.pos = 0;
        while self.len < want.min(self.buf.len()) {
            let n = self.inner.read(&mut self.buf[self.len..])?;
            if n == 0 {
                break;
            }
            self.len += n;
        }
        Ok(())
    }

    /// Decodes exactly `out.len()` cells into `out`.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Io`]-shaped strings are reported through the returned
    /// message; the caller (which knows the path) wraps them.
    pub fn read_cells(&mut self, out: &mut [u64]) -> Result<(), String> {
        match self.encoding {
            CellEncoding::Raw => {
                for cell in out.iter_mut() {
                    self.fill(8).map_err(|e| e.to_string())?;
                    if self.len - self.pos < 8 {
                        return Err("truncated cell section".into());
                    }
                    *cell = u64::from_le_bytes(
                        self.buf[self.pos..self.pos + 8]
                            .try_into()
                            .expect("8 bytes"),
                    );
                    self.pos += 8;
                    self.consumed += 8;
                }
            }
            CellEncoding::DeltaVarint => {
                for cell in out.iter_mut() {
                    self.fill(10).map_err(|e| e.to_string())?;
                    let (value, used) = self
                        .decoder
                        .next(&self.buf[self.pos..self.len])
                        .ok_or_else(|| "truncated or malformed varint cell".to_string())?;
                    *cell = value;
                    self.pos += used;
                    self.consumed += used as u64;
                }
            }
        }
        Ok(())
    }

    /// Finishes the reader: folds the last decoded stretch into the CRC and
    /// returns `(inner, crc, leftover)` where `leftover` is any bytes read
    /// past the decoded cells (for a well-formed shard: the 4-byte trailer,
    /// possibly partially — the rest is still in `inner`).
    pub fn finish(mut self) -> (R, crypto_prims::crc32::Crc32, Vec<u8>) {
        self.crc.update(&self.buf[..self.pos]);
        (self.inner, self.crc, self.buf[self.pos..self.len].to_vec())
    }
}

/// Typed wrapper for codec failures surfacing from shard reads.
pub(crate) fn corrupt_cells(path: &std::path::Path, msg: String) -> DatasetError {
    DatasetError::corrupt(path, format!("cell section: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            varint_encode(v, &mut buf);
            assert!(buf.len() <= 10);
            let (back, used) = varint_decode(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overlong() {
        assert!(varint_decode(&[]).is_none());
        assert!(varint_decode(&[0x80]).is_none());
        // 10 continuation bytes: an 11-byte varint cannot encode a u64.
        assert!(varint_decode(&[0x80; 10]).is_none());
        // 10th byte carrying more than the last u64 bit.
        let mut overlong = vec![0x80u8; 9];
        overlong.push(0x02);
        assert!(varint_decode(&overlong).is_none());
    }

    #[test]
    fn zigzag_orders_small_magnitudes_first() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [-5i64, -1, 0, 1, 5, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn delta_varint_roundtrips_counter_like_cells() {
        let cells: Vec<u64> = (0..10_000u64)
            .map(|i| 4_000_000 + (i * 2654435761) % 997)
            .collect();
        let encoded = encode_cells_delta_varint([cells.as_slice()]);
        // Counter-like cells (large values, small deltas) must compress.
        assert!(encoded.len() < cells.len() * 8 / 3);
        let mut back = vec![0u64; cells.len()];
        let used = decode_cells_delta_varint(&encoded, &mut back).unwrap();
        assert_eq!(used, encoded.len());
        assert_eq!(back, cells);
    }

    #[test]
    fn cell_reader_streams_both_encodings_across_window_boundaries() {
        let cells: Vec<u64> = (0..100_000u64).map(|i| i.wrapping_mul(0x9E37)).collect();

        let mut raw = Vec::new();
        for &c in &cells {
            raw.extend_from_slice(&c.to_le_bytes());
        }
        let compressed = encode_cells_delta_varint([cells.as_slice()]);

        for (bytes, encoding) in [
            (&raw, CellEncoding::Raw),
            (&compressed, CellEncoding::DeltaVarint),
        ] {
            let mut reader = CellReader::new(bytes.as_slice(), encoding);
            let mut out = vec![0u64; cells.len()];
            // Odd window size so windows straddle the refill buffer.
            for chunk in out.chunks_mut(777) {
                reader.read_cells(chunk).unwrap();
            }
            assert_eq!(out, cells);
            assert_eq!(reader.bytes_consumed(), bytes.len() as u64);
            let (_, crc, leftover) = reader.finish();
            assert!(leftover.is_empty());
            let mut whole = crypto_prims::crc32::Crc32::new();
            whole.update(bytes);
            assert_eq!(crc.finalize(), whole.finalize());
        }
    }

    #[test]
    fn cell_reader_reports_truncation() {
        let cells = [7u64, 8, 9];
        let encoded = encode_cells_delta_varint([cells.as_slice()]);
        let mut reader = CellReader::new(&encoded[..encoded.len() - 1], CellEncoding::DeltaVarint);
        let mut out = [0u64; 3];
        assert!(reader.read_cells(&mut out).is_err());

        let mut reader = CellReader::new(&[1u8, 2, 3][..], CellEncoding::Raw);
        let mut out = [0u64; 1];
        assert!(reader.read_cells(&mut out).is_err());
    }

    #[test]
    fn encoding_maps_to_format_versions() {
        assert_eq!(CellEncoding::Raw.format_version(), FORMAT_VERSION);
        assert_eq!(
            CellEncoding::DeltaVarint.format_version(),
            FORMAT_VERSION_COMPRESSED
        );
        assert_eq!(
            CellEncoding::from_format_version(1),
            Some(CellEncoding::Raw)
        );
        assert_eq!(
            CellEncoding::from_format_version(2),
            Some(CellEncoding::DeltaVarint)
        );
        assert_eq!(CellEncoding::from_format_version(3), None);
    }
}
