//! Robustness of the on-disk shard format: every way a file can be damaged —
//! truncation, bit flips, foreign/old formats, mismatched shapes — must
//! surface as a *typed* [`DatasetError`] naming the path, never as a panic,
//! a silent wrong answer, or a stringly `Serialization` error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use rc4_stats::{
    longterm::LongTermDataset,
    pairs::{PairDataset, PositionPair},
    single::SingleByteDataset,
    tsc::{PerTscDataset, TscConditioning},
    DatasetError, GenerationConfig, KeystreamCollector, StorableDataset,
};
use rc4_store::{
    generate_shard, merge_shards, peek_header, read_shard, write_shard, GenerateOptions,
    ShardHeader, ShardSpec, FORMAT_VERSION, FORMAT_VERSION_COMPRESSED,
};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A unique, writable scratch directory per call (proptest runs many cases).
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rc4-store-robust-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a small complete single-byte shard and returns its path.
fn sample_shard(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("sample.ds");
    let config = GenerationConfig::with_keys(64).seed(7);
    generate_shard(
        &path,
        SingleByteDataset::new(4),
        &ShardSpec::full(config),
        &GenerateOptions::default(),
        None,
        &mut |_, _| {},
    )
    .unwrap();
    path
}

#[test]
fn truncated_file_fails_with_typed_corrupt_error() {
    let dir = scratch();
    let path = sample_shard(&dir);
    let bytes = std::fs::read(&path).unwrap();

    // Truncate at several interesting offsets: mid-preamble, mid-header,
    // mid-cells, and just before the CRC trailer.
    for cut in [4, 12, 20, bytes.len() / 2, bytes.len() - 2] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let read = read_shard::<SingleByteDataset>(&path);
        match read {
            Err(DatasetError::Corrupt(msg)) => {
                assert!(msg.contains("sample.ds"), "path missing in: {msg}")
            }
            other => panic!("truncation at {cut} gave {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_anywhere_fails_with_typed_corrupt_error() {
    let dir = scratch();
    let path = sample_shard(&dir);
    let bytes = std::fs::read(&path).unwrap();

    // A bit flip in the cells or the CRC itself must be caught by the CRC
    // check; flips in the preamble/header are caught by their own checks.
    for offset in [0, 9, 30, bytes.len() / 2, bytes.len() - 1] {
        let mut damaged = bytes.clone();
        damaged[offset] ^= 0x40;
        std::fs::write(&path, &damaged).unwrap();
        match read_shard::<SingleByteDataset>(&path) {
            Err(DatasetError::Corrupt(_)) => {}
            other => panic!("flip at {offset} gave {other:?}"),
        }
    }

    // Flip specifically in the cell area and check the CRC message.
    let cells_offset = bytes.len() - 10;
    let mut damaged = bytes.clone();
    damaged[cells_offset] ^= 0x01;
    std::fs::write(&path, &damaged).unwrap();
    match read_shard::<SingleByteDataset>(&path) {
        Err(DatasetError::Corrupt(msg)) => assert!(msg.contains("CRC"), "not a CRC error: {msg}"),
        other => panic!("cell flip gave {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_format_version_is_rejected_by_name() {
    let dir = scratch();
    let path = sample_shard(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION_COMPRESSED + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    for result in [
        read_shard::<SingleByteDataset>(&path).map(|_| ()),
        peek_header(&path).map(|_| ()),
    ] {
        match result {
            Err(DatasetError::Corrupt(msg)) => assert!(
                msg.contains(&format!("version {}", FORMAT_VERSION_COMPRESSED + 1))
                    && msg.contains("1 and 2"),
                "version/supported-range missing in: {msg}"
            ),
            other => panic!("wrong version gave {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_file_is_rejected_by_magic() {
    let dir = scratch();
    let path = dir.join("foreign.ds");
    std::fs::write(&path, b"definitely not a dataset shard, but long enough").unwrap();
    match read_shard::<SingleByteDataset>(&path) {
        Err(DatasetError::Corrupt(msg)) => assert!(msg.contains("magic"), "{msg}"),
        other => panic!("foreign file gave {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shape_mismatched_merge_fails_with_typed_error() {
    let dir = scratch();
    let config = GenerationConfig::with_keys(40).workers(2).seed(3);
    let narrow = dir.join("narrow.ds");
    let wide = dir.join("wide.ds");
    generate_shard(
        &narrow,
        SingleByteDataset::new(4),
        &ShardSpec::workers(config, 0, 1),
        &GenerateOptions::default(),
        None,
        &mut |_, _| {},
    )
    .unwrap();
    generate_shard(
        &wide,
        SingleByteDataset::new(8),
        &ShardSpec::workers(config, 1, 2),
        &GenerateOptions::default(),
        None,
        &mut |_, _| {},
    )
    .unwrap();
    match merge_shards::<SingleByteDataset>(&[&narrow, &wide], &dir.join("out.ds")) {
        Err(DatasetError::ShapeMismatch(msg)) => {
            assert!(
                msg.contains("narrow.ds") && msg.contains("wide.ds"),
                "{msg}"
            )
        }
        other => panic!("shape-mismatched merge gave {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_tsc_short_keys_fail_typed_instead_of_panicking() {
    // TKIP keys need 3 bytes of prefix room; the store path must reject
    // key_len < 3 up front exactly like the in-memory generator does.
    let dir = scratch();
    let config = GenerationConfig {
        key_len: 2,
        ..GenerationConfig::with_keys(100)
    };
    let result = generate_shard(
        &dir.join("short.ds"),
        PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap(),
        &ShardSpec::full(config),
        &GenerateOptions::default(),
        None,
        &mut |_, _| {},
    );
    assert!(
        matches!(result, Err(DatasetError::InvalidConfig(ref msg)) if msg.contains("3 bytes")),
        "got {result:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resuming_a_complete_shard_does_not_touch_the_file() {
    let dir = scratch();
    let path = sample_shard(&dir);
    let before = std::fs::metadata(&path).unwrap().modified().unwrap();
    let status = rc4_store::resume_shard::<SingleByteDataset>(
        &path,
        &GenerateOptions::default(),
        None,
        &mut |_, _| {},
    )
    .unwrap();
    assert_eq!(status, rc4_store::GenerateStatus::Complete);
    let after = std::fs::metadata(&path).unwrap().modified().unwrap();
    assert_eq!(before, after, "complete shard was rewritten on resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn implausible_header_length_is_rejected_before_allocation() {
    // A hostile 16-byte preamble claiming a ~4 GiB header must be rejected
    // by the length cap, not by an attempted allocation.
    let dir = scratch();
    let path = dir.join("huge-header.ds");
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&rc4_store::MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    for result in [
        peek_header(&path).map(|_| ()),
        read_shard::<SingleByteDataset>(&path).map(|_| ()),
    ] {
        match result {
            Err(DatasetError::Corrupt(msg)) => {
                assert!(msg.contains("header length"), "{msg}")
            }
            other => panic!("huge header length gave {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Write → read for every kind, through the real generation engine, checking
/// cells and keystream totals survive unchanged.
#[test]
fn every_kind_roundtrips_through_the_store() {
    let dir = scratch();
    let config = GenerationConfig::with_keys(120).workers(2).seed(11);
    let spec = ShardSpec::full(config);
    let opts = GenerateOptions::default();

    fn roundtrip<D: StorableDataset>(
        dir: &std::path::Path,
        name: &str,
        empty_a: D,
        empty_b: D,
        spec: &ShardSpec,
        opts: &GenerateOptions,
    ) {
        let path = dir.join(name);
        generate_shard(&path, empty_a, spec, opts, None, &mut |_, _| {}).unwrap();
        let loaded = read_shard::<D>(&path).unwrap();
        // Regenerate in memory through the same engine into a second file and
        // compare raw cells: the store is the source of truth here.
        let path_b = dir.join(format!("b-{name}"));
        generate_shard(&path_b, empty_b, spec, opts, None, &mut |_, _| {}).unwrap();
        let loaded_b = read_shard::<D>(&path_b).unwrap();
        assert_eq!(
            loaded.dataset.cell_slices().concat(),
            loaded_b.dataset.cell_slices().concat(),
            "{name}: cells differ between identical generations"
        );
        assert_eq!(
            loaded.dataset.recorded_keystreams(),
            spec.config.keys,
            "{name}: keystream total wrong"
        );
    }

    roundtrip(
        &dir,
        "single.ds",
        SingleByteDataset::new(5),
        SingleByteDataset::new(5),
        &spec,
        &opts,
    );
    roundtrip(
        &dir,
        "pairs.ds",
        PairDataset::new(vec![PositionPair { a: 1, b: 3 }]).unwrap(),
        PairDataset::new(vec![PositionPair { a: 1, b: 3 }]).unwrap(),
        &spec,
        &opts,
    );
    roundtrip(
        &dir,
        "longterm.ds",
        LongTermDataset::new(7, 32).unwrap(),
        LongTermDataset::new(7, 32).unwrap(),
        &spec,
        &opts,
    );
    roundtrip(
        &dir,
        "pertsc.ds",
        PerTscDataset::new(TscConditioning::Tsc1, 3).unwrap(),
        PerTscDataset::new(TscConditioning::Tsc1, 3).unwrap(),
        &spec,
        &opts,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary recorded contents and shapes survive a write → read
    /// roundtrip bit for bit (single-byte datasets).
    #[test]
    fn proptest_single_byte_write_read_roundtrip(
        positions in 1usize..12,
        keystreams in prop::collection::vec(prop::collection::vec(any::<u8>(), 12), 1..40),
    ) {
        let dir = scratch();
        let mut ds = SingleByteDataset::new(positions);
        for ks in &keystreams {
            ds.record_keystream(&ks[..positions.min(ks.len())]);
        }
        let mut header = ShardHeader::new(
            "single",
            GenerationConfig::with_keys(keystreams.len() as u64),
            ds.shape_params(),
            0,
            1,
            ds.cell_count() as u64,
        ).unwrap();
        header.progress = vec![keystreams.len() as u64];
        let path = dir.join("prop.ds");
        write_shard(&path, &header, &ds).unwrap();
        let back = read_shard::<SingleByteDataset>(&path).unwrap();
        prop_assert_eq!(back.header, header);
        prop_assert_eq!(back.dataset.cell_slices().concat(), ds.cell_slices().concat());
        prop_assert_eq!(back.dataset.keystreams(), ds.keystreams());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same roundtrip property for pair datasets with arbitrary pair lists.
    #[test]
    fn proptest_pair_write_read_roundtrip(
        raw_pairs in prop::collection::vec((1usize..6, 6usize..10), 1..4),
        keystreams in prop::collection::vec(prop::collection::vec(any::<u8>(), 10), 1..20),
    ) {
        let dir = scratch();
        let pairs: Vec<PositionPair> = raw_pairs
            .iter()
            .map(|&(a, b)| PositionPair { a, b })
            .collect();
        let mut ds = PairDataset::new(pairs).unwrap();
        for ks in &keystreams {
            ds.record_keystream(ks);
        }
        let mut header = ShardHeader::new(
            "pairs",
            GenerationConfig::with_keys(keystreams.len() as u64),
            ds.shape_params(),
            0,
            1,
            ds.cell_count() as u64,
        ).unwrap();
        header.progress = vec![keystreams.len() as u64];
        let path = dir.join("prop.ds");
        write_shard(&path, &header, &ds).unwrap();
        let back = read_shard::<PairDataset>(&path).unwrap();
        prop_assert_eq!(back.dataset.cell_slices().concat(), ds.cell_slices().concat());
        prop_assert_eq!(back.dataset.keystreams(), ds.keystreams());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
