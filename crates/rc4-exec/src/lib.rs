//! The workspace's shared parallel execution layer.
//!
//! Before this crate existed, every parallel site hand-rolled its own
//! threading: the `rc4-stats` worker pool, `rc4-store`'s round-based shard
//! generation and the experiment hot loops each spawned scoped threads,
//! polled their own cancellation flag and invented their own progress
//! plumbing. This crate centralizes that into one substrate:
//!
//! * [`Executor`] — a scoped work-stealing thread pool (built on the vendored
//!   `crossbeam::thread::scope`) exposing [`Executor::map`] (parallel map with
//!   results in item order), [`Executor::reduce`] (map plus a fold that runs
//!   in item order, so the reduction is independent of scheduling) and
//!   [`Executor::chunked`] (parallel fill of disjoint sub-slices).
//! * [`ExecError`] — cancellation and task failure, generic over the caller's
//!   error type so every crate keeps its own error enum.
//! * [`ProgressThrottle`] — an aggregated, rate-limited progress counter so a
//!   hundred workers ticking per chunk collapse into a few events per second.
//! * [`Budget`] — shared worker-slot accounting for multi-job schedulers: a
//!   server reserves a per-job thread budget before running a job's executor
//!   and releases it after, with [`BudgetStats`] for status endpoints.
//!
//! # Determinism contract
//!
//! Callers rely on *worker-count invariance*: the same inputs must produce
//! bit-identical outputs whether the executor runs with 1 thread or N. The
//! pool guarantees its half of the contract:
//!
//! * `map` returns results **in item order**, whatever order items finished
//!   in, and runs every item exactly once.
//! * `reduce` folds the mapped results **in item order** on the calling
//!   thread; the fold never observes scheduling.
//! * With one worker (or one item) the pool degrades to an inline loop in
//!   item order on the calling thread — the serial and parallel paths execute
//!   the same per-item code.
//!
//! The caller owns the other half: per-item work must not depend on shared
//! mutable state, and any randomness must come from *per-item* RNG streams
//! (derive a seed from the item index, never thread one RNG through items).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod pool;
mod progress;

pub use budget::{Budget, BudgetLease, BudgetStats, OwnedBudgetLease};
pub use pool::{ExecError, Executor};
pub use progress::ProgressThrottle;
