//! Shared worker-budget accounting for multi-job schedulers.
//!
//! A long-lived server schedules many jobs onto one machine; each job runs
//! its own [`crate::Executor`] with a per-job thread budget. [`Budget`] is
//! the bookkeeping between them: a fixed pool of worker slots that jobs
//! reserve before running and release when done, with blocking acquisition
//! (so a scheduler thread can park until capacity frees up) and a cheap
//! [`BudgetStats`] snapshot for status endpoints.
//!
//! The budget is *advisory* accounting, not an enforcement mechanism: it
//! never spawns or limits threads itself. A job that reserves `n` slots is
//! expected to run its executor with `workers = n`. Keeping the accounting
//! separate from the pool keeps `Executor` scoped and stateless, which is
//! what the determinism contract (worker count as a pure thread budget)
//! relies on.

use std::sync::{Arc, Condvar, Mutex};

/// Point-in-time view of a [`Budget`], for status/introspection endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetStats {
    /// Total worker slots the budget was created with.
    pub total: usize,
    /// Slots currently reserved by running jobs.
    pub in_use: usize,
    /// Threads currently blocked in [`Budget::acquire`] waiting for slots.
    pub waiting: usize,
    /// Reservations granted since the budget was created.
    pub granted: usize,
}

impl BudgetStats {
    /// Slots available for immediate reservation.
    pub fn free(&self) -> usize {
        self.total - self.in_use
    }
}

#[derive(Debug)]
struct BudgetState {
    in_use: usize,
    waiting: usize,
    granted: usize,
}

/// A fixed pool of worker slots shared by concurrent jobs.
///
/// Reservations are granted by [`Budget::acquire`], which blocks until the
/// requested count fits, and returned by dropping the [`BudgetLease`].
/// Requests larger than the whole budget are clamped to it, so a job asking
/// for "as many workers as possible" simply waits for an idle machine.
///
/// ```
/// use rc4_exec::Budget;
///
/// let budget = Budget::new(4);
/// let lease = budget.acquire(3);
/// assert_eq!(lease.workers(), 3);
/// assert_eq!(budget.stats().in_use, 3);
/// drop(lease);
/// assert_eq!(budget.stats().in_use, 0);
/// ```
#[derive(Debug)]
pub struct Budget {
    total: usize,
    state: Mutex<BudgetState>,
    freed: Condvar,
}

impl Budget {
    /// Creates a budget of `total` worker slots (clamped to at least 1).
    pub fn new(total: usize) -> Self {
        Budget {
            total: total.max(1),
            state: Mutex::new(BudgetState {
                in_use: 0,
                waiting: 0,
                granted: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// Total worker slots in the budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Blocks until `workers` slots (clamped to `[1, total]`) are free, then
    /// reserves them. Fairness is the platform condvar's: all waiters wake on
    /// each release and the first to fit wins, so small jobs may overtake one
    /// large waiting job; the server's queue orders *admission*, this only
    /// orders *capacity*.
    pub fn acquire(&self, workers: usize) -> BudgetLease<'_> {
        let workers = self.reserve_blocking(workers);
        BudgetLease {
            budget: self,
            workers,
        }
    }

    /// [`Budget::acquire`] returning an [`OwnedBudgetLease`] that keeps the
    /// budget alive via `Arc`, so the reservation can move into a spawned
    /// (`'static`) job thread and be released from there.
    pub fn acquire_owned(self: &Arc<Self>, workers: usize) -> OwnedBudgetLease {
        let workers = self.reserve_blocking(workers);
        OwnedBudgetLease {
            budget: Arc::clone(self),
            workers,
        }
    }

    fn reserve_blocking(&self, workers: usize) -> usize {
        let want = workers.clamp(1, self.total);
        let mut state = self.state.lock().expect("budget lock poisoned");
        while self.total - state.in_use < want {
            state.waiting += 1;
            state = self.freed.wait(state).expect("budget lock poisoned");
            state.waiting -= 1;
        }
        state.in_use += want;
        state.granted += 1;
        want
    }

    /// Reserves `workers` slots (clamped to `[1, total]`) only if they are
    /// free right now; returns `None` instead of blocking.
    pub fn try_acquire(&self, workers: usize) -> Option<BudgetLease<'_>> {
        let want = workers.clamp(1, self.total);
        let mut state = self.state.lock().expect("budget lock poisoned");
        if self.total - state.in_use < want {
            return None;
        }
        state.in_use += want;
        state.granted += 1;
        Some(BudgetLease {
            budget: self,
            workers: want,
        })
    }

    /// Snapshots the current accounting.
    pub fn stats(&self) -> BudgetStats {
        let state = self.state.lock().expect("budget lock poisoned");
        BudgetStats {
            total: self.total,
            in_use: state.in_use,
            waiting: state.waiting,
            granted: state.granted,
        }
    }

    fn release(&self, workers: usize) {
        let mut state = self.state.lock().expect("budget lock poisoned");
        debug_assert!(state.in_use >= workers);
        state.in_use -= workers;
        drop(state);
        self.freed.notify_all();
    }
}

/// A granted reservation of worker slots; returns them on drop.
#[derive(Debug)]
pub struct BudgetLease<'a> {
    budget: &'a Budget,
    workers: usize,
}

impl BudgetLease<'_> {
    /// The number of slots this lease holds — the thread budget the job
    /// should hand its executor.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        self.budget.release(self.workers);
    }
}

/// An `Arc`-backed reservation that can outlive the acquiring scope; returns
/// its slots on drop. Created by [`Budget::acquire_owned`].
#[derive(Debug)]
pub struct OwnedBudgetLease {
    budget: Arc<Budget>,
    workers: usize,
}

impl OwnedBudgetLease {
    /// The number of slots this lease holds.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for OwnedBudgetLease {
    fn drop(&mut self) {
        self.budget.release(self.workers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn acquire_and_release_round_trip() {
        let budget = Budget::new(4);
        let a = budget.acquire(2);
        let b = budget.acquire(2);
        assert_eq!(budget.stats().in_use, 4);
        assert_eq!(budget.stats().free(), 0);
        drop(a);
        assert_eq!(budget.stats().in_use, 2);
        drop(b);
        let stats = budget.stats();
        assert_eq!(stats.in_use, 0);
        assert_eq!(stats.granted, 2);
    }

    #[test]
    fn oversized_request_is_clamped_to_total() {
        let budget = Budget::new(3);
        let lease = budget.acquire(64);
        assert_eq!(lease.workers(), 3);
        assert_eq!(budget.stats().free(), 0);
    }

    #[test]
    fn zero_request_still_reserves_one_slot() {
        let budget = Budget::new(3);
        let lease = budget.acquire(0);
        assert_eq!(lease.workers(), 1);
    }

    #[test]
    fn try_acquire_fails_without_capacity() {
        let budget = Budget::new(2);
        let _held = budget.acquire(2);
        assert!(budget.try_acquire(1).is_none());
        drop(_held);
        assert!(budget.try_acquire(1).is_some());
    }

    #[test]
    fn acquire_blocks_until_capacity_frees() {
        let budget = Arc::new(Budget::new(2));
        let held = budget.acquire(2);
        let acquired = Arc::new(AtomicUsize::new(0));

        let waiter = {
            let budget = Arc::clone(&budget);
            let acquired = Arc::clone(&acquired);
            std::thread::spawn(move || {
                let lease = budget.acquire(1);
                acquired.store(lease.workers(), Ordering::SeqCst);
            })
        };

        // Give the waiter time to park, then confirm it is actually waiting.
        for _ in 0..200 {
            if budget.stats().waiting == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(budget.stats().waiting, 1);
        assert_eq!(acquired.load(Ordering::SeqCst), 0);

        drop(held);
        waiter.join().expect("waiter thread panicked");
        assert_eq!(acquired.load(Ordering::SeqCst), 1);
        assert_eq!(budget.stats().in_use, 0);
    }

    #[test]
    fn owned_lease_moves_into_a_thread_and_releases() {
        let budget = Arc::new(Budget::new(2));
        let lease = budget.acquire_owned(2);
        assert_eq!(lease.workers(), 2);
        let worker = std::thread::spawn(move || drop(lease));
        worker.join().expect("lease thread panicked");
        assert_eq!(budget.stats().in_use, 0);
        assert_eq!(budget.stats().granted, 1);
    }

    #[test]
    fn stats_counts_parallel_grants() {
        let budget = Arc::new(Budget::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let budget = Arc::clone(&budget);
                std::thread::spawn(move || {
                    let _lease = budget.acquire(1);
                    std::thread::sleep(Duration::from_millis(2));
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("grant thread panicked");
        }
        let stats = budget.stats();
        assert_eq!(stats.granted, 8);
        assert_eq!(stats.in_use, 0);
        assert_eq!(stats.waiting, 0);
    }
}
