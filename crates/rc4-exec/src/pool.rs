//! The scoped work-stealing pool.
//!
//! Work distribution: the items of a [`Executor::map`] call are dealt to
//! per-worker deques in contiguous blocks; each worker pops from the front of
//! its own deque and, when empty, steals from the *back* of a sibling's.
//! Contiguous blocks keep a worker's items cache-adjacent, stealing from the
//! back keeps the victim's front (its own next pop) untouched, and because
//! every claimed index runs the item exactly once, scheduling can never
//! change *what* is computed — only *where*.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crossbeam::thread;

/// Why a parallel call did not return a full result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError<E> {
    /// The executor's cancellation flag was observed set before the call
    /// completed. Partial results are discarded.
    Cancelled,
    /// A task failed. When several tasks fail in one call, the failure with
    /// the lowest item index among those that ran is reported.
    Task {
        /// Index of the failing item.
        index: usize,
        /// The task's error.
        error: E,
    },
}

impl<E: core::fmt::Display> core::fmt::Display for ExecError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecError::Cancelled => write!(f, "execution cancelled"),
            ExecError::Task { index, error } => write!(f, "task {index} failed: {error}"),
        }
    }
}

impl<E: core::fmt::Display + core::fmt::Debug> std::error::Error for ExecError<E> {}

/// What one pool worker brings home: its completed `(index, result)` pairs
/// plus the failure that stopped it, if any.
type WorkerHarvest<R, E> = (Vec<(usize, R)>, Option<(usize, E)>);

/// A scoped thread pool bound to a worker budget and an optional cooperative
/// cancellation flag (typically an experiment run's token).
///
/// The executor is cheap to construct — threads are spawned per call and
/// joined before the call returns, so borrowed data can flow into tasks
/// freely. One worker means strictly inline execution on the calling thread.
///
/// # Examples
///
/// ```
/// use rc4_exec::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec
///     .map((0u64..8).collect(), |_, x| Ok::<_, ()>(x * x))
///     .unwrap();
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Executor<'e> {
    workers: usize,
    cancel: Option<&'e AtomicBool>,
}

impl<'e> Executor<'e> {
    /// Creates an executor with the given worker budget (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            cancel: None,
        }
    }

    /// A single-threaded executor: every call runs inline in item order.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Binds the executor to a cooperative cancellation flag. Workers poll it
    /// between items; a raised flag makes the in-flight call return
    /// [`ExecError::Cancelled`] once running items finish.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Option<&'e AtomicBool>) -> Self {
        self.cancel = cancel;
        self
    }

    /// The worker budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the bound cancellation flag is currently raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// The bound cancellation flag, for tasks that poll internally.
    pub fn cancel_flag(&self) -> Option<&'e AtomicBool> {
        self.cancel
    }

    /// Runs `f(index, item)` for every item and returns the results **in item
    /// order**. See the crate docs for the determinism contract.
    ///
    /// # Errors
    ///
    /// [`ExecError::Cancelled`] when the cancellation flag was observed set
    /// (this takes precedence over task failures), otherwise the
    /// lowest-indexed task failure that occurred. After a failure, workers
    /// stop claiming new items.
    pub fn map<T, R, E, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, ExecError<E>>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(usize, T) -> Result<R, E> + Sync,
    {
        let n = items.len();
        if self.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        let threads = self.workers.min(n);
        // Observability is strictly additive: with metrics/tracing disabled
        // (the default) these guards cost one relaxed atomic load each and
        // no clock reads, so results and BENCH numbers are untouched.
        let _span = rc4_obs::Span::enter_with(
            "exec.map",
            rc4_obs::kv! {
                "items" => n,
                "threads" => threads.max(1),
            },
        );
        let obs = rc4_obs::metrics::is_enabled();
        let map_start = obs.then(Instant::now);
        rc4_obs::metrics::counter_add("exec.map.calls", 1);
        if threads <= 1 {
            let mut out = Vec::with_capacity(n);
            for (index, item) in items.into_iter().enumerate() {
                if self.is_cancelled() {
                    return Err(ExecError::Cancelled);
                }
                out.push(f(index, item).map_err(|error| ExecError::Task { index, error })?);
            }
            if let Some(start) = map_start {
                rc4_obs::metrics::counter_add("exec.tasks", out.len() as u64);
                rc4_obs::metrics::observe_us("exec.map_us", start.elapsed().as_micros() as u64);
            }
            return Ok(out);
        }

        // Each item sits in a take-once slot; per-worker deques hold indices
        // in contiguous blocks (worker w owns block w).
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let queues: Vec<Mutex<VecDeque<usize>>> = split_blocks(n, threads)
            .into_iter()
            .map(|range| Mutex::new(range.collect()))
            .collect();
        let abort = AtomicBool::new(false);

        let per_worker: Vec<WorkerHarvest<R, E>> = thread::scope(|scope| {
            let slots = &slots;
            let queues = &queues;
            let abort = &abort;
            let f = &f;
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move |_| {
                        let mut done: Vec<(usize, R)> = Vec::new();
                        let mut failure: Option<(usize, E)> = None;
                        // Per-worker tallies land in the registry as one add
                        // per name at worker exit, never per item.
                        let worker_start = obs.then(Instant::now);
                        let mut tasks = 0u64;
                        let mut steals = 0u64;
                        let mut busy_us = 0u64;
                        while !abort.load(Ordering::Relaxed) && !self.is_cancelled() {
                            let Some((index, stolen)) = claim(w, queues) else {
                                break;
                            };
                            tasks += 1;
                            steals += u64::from(stolen);
                            let item = slots[index]
                                .lock()
                                .expect("item slot poisoned")
                                .take()
                                .expect("item claimed twice");
                            let task_start = obs.then(Instant::now);
                            let outcome = f(index, item);
                            if let Some(start) = task_start {
                                busy_us += start.elapsed().as_micros() as u64;
                            }
                            match outcome {
                                Ok(r) => done.push((index, r)),
                                Err(e) => {
                                    failure = Some((index, e));
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        if let Some(start) = worker_start {
                            let wall_us = start.elapsed().as_micros() as u64;
                            rc4_obs::metrics::counter_add("exec.tasks", tasks);
                            rc4_obs::metrics::counter_add("exec.steals", steals);
                            rc4_obs::metrics::counter_add("exec.worker_busy_us", busy_us);
                            rc4_obs::metrics::counter_add(
                                "exec.worker_idle_us",
                                wall_us.saturating_sub(busy_us),
                            );
                        }
                        (done, failure)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rc4-exec worker panicked"))
                .collect()
        })
        .expect("rc4-exec scope panicked");

        if self.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        let mut first_failure: Option<(usize, E)> = None;
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (done, failure) in per_worker {
            for (index, r) in done {
                out[index] = Some(r);
            }
            if let Some((index, error)) = failure {
                match &first_failure {
                    Some((best, _)) if *best <= index => {}
                    _ => first_failure = Some((index, error)),
                }
            }
        }
        if let Some((index, error)) = first_failure {
            return Err(ExecError::Task { index, error });
        }
        if let Some(start) = map_start {
            rc4_obs::metrics::observe_us("exec.map_us", start.elapsed().as_micros() as u64);
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every item ran exactly once"))
            .collect())
    }

    /// Parallel map followed by a fold **in item order** on the calling
    /// thread: `acc = merge(acc, result_i)` for `i = 0, 1, ...`. Because the
    /// fold order is fixed, the reduction is deterministic for any worker
    /// count even when `merge` is not commutative.
    ///
    /// # Errors
    ///
    /// Everything [`Executor::map`] returns; a `merge` failure is reported as
    /// [`ExecError::Task`] with the index of the offending result.
    pub fn reduce<T, R, A, E, F, M>(
        &self,
        items: Vec<T>,
        f: F,
        init: A,
        mut merge: M,
    ) -> Result<A, ExecError<E>>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(usize, T) -> Result<R, E> + Sync,
        M: FnMut(A, R) -> Result<A, E>,
    {
        let results = self.map(items, f)?;
        let mut acc = init;
        for (index, r) in results.into_iter().enumerate() {
            acc = merge(acc, r).map_err(|error| ExecError::Task { index, error })?;
        }
        Ok(acc)
    }

    /// Fills disjoint chunks of `out` in parallel: `f(chunk_index, start,
    /// chunk)` where `start` is the chunk's offset into `out`. Chunk
    /// boundaries are a scheduling detail — callers must produce the same
    /// cell values for any `chunk_len` (each output cell computed from inputs
    /// alone).
    ///
    /// # Errors
    ///
    /// Everything [`Executor::map`] returns.
    pub fn chunked<S, E, F>(
        &self,
        out: &mut [S],
        chunk_len: usize,
        f: F,
    ) -> Result<(), ExecError<E>>
    where
        S: Send,
        E: Send,
        F: Fn(usize, usize, &mut [S]) -> Result<(), E> + Sync,
    {
        let chunk_len = chunk_len.max(1);
        let items: Vec<(usize, &mut [S])> = out
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(i, c)| (i * chunk_len, c))
            .collect();
        self.map(items, |index, (start, chunk)| f(index, start, chunk))
            .map(|_| ())
    }

    /// A chunk length that splits `len` items into roughly two chunks per
    /// worker — enough slack for stealing to balance uneven chunks without
    /// drowning in per-chunk overhead.
    pub fn chunk_len_for(&self, len: usize) -> usize {
        len.div_ceil(self.workers * 2).max(1)
    }
}

/// Splits `0..n` into `parts` contiguous ranges, the first `n % parts` one
/// element longer — the same deal rule as `GenerationConfig::keys_for_worker`.
fn split_blocks(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Claims the next item index for worker `w`: own queue front first, then
/// steal from the back of the other queues (scanning from `w + 1` so load
/// spreads instead of every idle worker mobbing queue 0). The flag reports
/// whether the index was stolen from a sibling (feeds `exec.steals`).
fn claim(w: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<(usize, bool)> {
    if let Some(idx) = queues[w].lock().expect("work queue poisoned").pop_front() {
        return Some((idx, false));
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (w + offset) % n;
        if let Some(idx) = queues[victim]
            .lock()
            .expect("work queue poisoned")
            .pop_back()
        {
            return Some((idx, true));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_returns_results_in_item_order_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 8, 200] {
            let exec = Executor::new(workers);
            let got = exec
                .map(items.clone(), |i, x| {
                    assert_eq!(i as u64, x);
                    Ok::<_, ()>(x * 3 + 1)
                })
                .unwrap();
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..63).map(|_| AtomicUsize::new(0)).collect();
        let exec = Executor::new(4);
        exec.map((0..counters.len()).collect(), |_, i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            Ok::<_, ()>(())
        })
        .unwrap();
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn empty_input_and_zero_workers() {
        let exec = Executor::new(0);
        assert_eq!(exec.workers(), 1);
        let out: Vec<u8> = exec.map(Vec::<u8>::new(), |_, x| Ok::<_, ()>(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn task_error_reports_lowest_index_and_stops_claiming() {
        // Serial executor: deterministic — item 3 fails, items 4+ never run.
        let ran = AtomicUsize::new(0);
        let exec = Executor::serial();
        let err = exec
            .map((0..10).collect::<Vec<usize>>(), |i, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i >= 3 {
                    Err(format!("boom {i}"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::Task {
                index: 3,
                error: "boom 3".to_string()
            }
        );
        assert_eq!(ran.load(Ordering::Relaxed), 4);

        // Parallel: whichever workers hit errors, the lowest index among the
        // failures is reported.
        let exec = Executor::new(4);
        let err = exec
            .map((0..40).collect::<Vec<usize>>(), |i, _| {
                if i % 2 == 1 {
                    Err(i)
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        match err {
            ExecError::Task { index, error } => {
                assert_eq!(index, error);
                assert_eq!(index % 2, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pre_raised_cancel_flag_short_circuits() {
        let cancel = AtomicBool::new(true);
        for workers in [1, 4] {
            let exec = Executor::new(workers).with_cancel(Some(&cancel));
            let r = exec.map((0..100).collect::<Vec<u32>>(), |_, x| Ok::<_, ()>(x));
            assert_eq!(r, Err(ExecError::Cancelled), "workers = {workers}");
        }
    }

    #[test]
    fn cancellation_mid_run_wins_over_completion() {
        let cancel = AtomicBool::new(false);
        let exec = Executor::new(4).with_cancel(Some(&cancel));
        // The first few items raise the flag; remaining items are skipped and
        // the call reports Cancelled rather than a partial success.
        let r = exec.map((0..1000).collect::<Vec<u32>>(), |i, x| {
            if i == 0 {
                cancel.store(true, Ordering::Relaxed);
            }
            Ok::<_, ()>(x)
        });
        assert_eq!(r, Err(ExecError::Cancelled));
    }

    #[test]
    fn reduce_folds_in_item_order() {
        // A non-commutative merge (string concatenation) must come out in
        // item order for every worker count.
        let items: Vec<usize> = (0..26).collect();
        let expect: String = ('a'..='z').collect();
        for workers in [1, 3, 7] {
            let exec = Executor::new(workers);
            let got = exec
                .reduce(
                    items.clone(),
                    |_, i| Ok::<_, ()>(char::from(b'a' + i as u8)),
                    String::new(),
                    |mut acc, c| {
                        acc.push(c);
                        Ok(acc)
                    },
                )
                .unwrap();
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn chunked_fills_disjoint_slices_identically_for_any_chunking() {
        let fill = |exec: &Executor<'_>, chunk: usize| -> Vec<u64> {
            let mut out = vec![0u64; 1000];
            exec.chunked(&mut out, chunk, |_, start, slice| {
                for (off, slot) in slice.iter_mut().enumerate() {
                    *slot = ((start + off) as u64).wrapping_mul(0x9E37_79B9);
                }
                Ok::<_, ()>(())
            })
            .unwrap();
            out
        };
        let reference = fill(&Executor::serial(), 1000);
        for (workers, chunk) in [(1, 7), (4, 64), (4, 1000), (3, 1)] {
            assert_eq!(
                fill(&Executor::new(workers), chunk),
                reference,
                "workers {workers}, chunk {chunk}"
            );
        }
    }

    #[test]
    fn split_blocks_covers_everything_contiguously() {
        for (n, parts) in [(10, 3), (3, 8), (0, 2), (16, 4)] {
            let blocks = split_blocks(n, parts);
            assert_eq!(blocks.len(), parts);
            let flat: Vec<usize> = blocks.into_iter().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
        }
    }

    #[test]
    fn chunk_len_for_gives_about_two_chunks_per_worker() {
        let exec = Executor::new(4);
        assert_eq!(exec.chunk_len_for(800), 100);
        assert_eq!(exec.chunk_len_for(1), 1);
        assert_eq!(Executor::serial().chunk_len_for(10), 5);
    }

    #[test]
    fn error_display() {
        let e: ExecError<String> = ExecError::Task {
            index: 7,
            error: "x".into(),
        };
        assert!(e.to_string().contains("task 7"));
        assert!(ExecError::<String>::Cancelled
            .to_string()
            .contains("cancel"));
    }
}
