//! Aggregated, rate-limited progress reporting.
//!
//! Parallel workers used to push one event per finished chunk straight into
//! the sink; at high worker counts that floods stderr (and any recording
//! sink) with thousands of near-identical lines. [`ProgressThrottle`]
//! aggregates ticks from any number of threads into one monotonic counter and
//! forwards at most ~`max_events_per_sec` renderings of it, while always
//! letting the first and the final tick through so short runs still report
//! and completion is never silent.
//!
//! Throttling is wall-clock based and therefore non-deterministic — which is
//! fine *only* because progress events are advisory by contract
//! (`rc4-attacks`' `ProgressEvent` docs: sinks must not influence results).
//! Nothing that feeds an experiment report may pass through this type.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A thread-safe progress counter that rate-limits how often it reports.
///
/// A `total` of `0` means the total is *unknown* (streaming ingestion, open
/// -ended capture loops): every tick is purely rate-limited and no tick is
/// ever treated as "finishing". With a non-zero total, the tick that reaches
/// it emits a terminal `(done, total)` event exactly once — concurrent
/// over-shooting ticks do not produce duplicate completion records.
///
/// # Examples
///
/// ```
/// use rc4_exec::ProgressThrottle;
///
/// let progress = ProgressThrottle::new(100, 10);
/// let mut seen = Vec::new();
/// for _ in 0..100 {
///     progress.tick(1, |done, total| seen.push((done, total)));
/// }
/// // The first and the final tick always report; the middle is rate-limited.
/// assert_eq!(seen.first(), Some(&(1, 100)));
/// assert_eq!(seen.last(), Some(&(100, 100)));
/// ```
#[derive(Debug)]
pub struct ProgressThrottle {
    total: u64,
    min_interval: Duration,
    done: AtomicU64,
    /// Set by the single tick that claims the terminal emission (only
    /// meaningful when `total > 0`). Ticks arriving after the claim are
    /// post-completion noise and are swallowed entirely.
    final_claimed: AtomicBool,
    /// `None` until the first emission; guards the emission timestamp. Taken
    /// with `try_lock` so a contended tick skips its emission instead of
    /// blocking a worker (some other thread is emitting right now anyway).
    last_emit: Mutex<Option<Instant>>,
}

impl ProgressThrottle {
    /// Creates a counter for `total` units reporting at most
    /// ~`max_events_per_sec` times per second (clamped to ≥ 1).
    ///
    /// Pass `total = 0` for an unknown total: all ticks are rate-limited and
    /// none is promoted to a terminal event.
    pub fn new(total: u64, max_events_per_sec: u32) -> Self {
        Self {
            total,
            min_interval: Duration::from_secs(1) / max_events_per_sec.max(1),
            done: AtomicU64::new(0),
            final_claimed: AtomicBool::new(false),
            last_emit: Mutex::new(None),
        }
    }

    /// The configured unit total (`0` = unknown).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Records `n` completed units and calls `emit(done, total)` if this tick
    /// is due: the counter just started, just completed (known totals only),
    /// or the rate limit has lapsed. `emit` runs on the ticking thread.
    ///
    /// With a non-zero total, exactly one tick — the first to observe
    /// `done >= total` — emits the terminal event; later ticks are dropped.
    /// With `total == 0` (unknown), ticks are never forced through and never
    /// dropped: the plain rate limit decides.
    pub fn tick<F: FnOnce(u64, u64)>(&self, n: u64, emit: F) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        if self.total > 0 && done >= self.total {
            // Terminal region. The first tick here claims the one completion
            // event (blocking for the lock is fine: it happens once); every
            // later tick is post-completion noise and is swallowed so JSON
            // consumers see a single completion record.
            if !self.final_claimed.swap(true, Ordering::Relaxed) {
                let mut last = self.last_emit.lock().expect("progress mutex poisoned");
                *last = Some(Instant::now());
                emit(done, self.total);
            }
            return;
        }
        let Ok(mut last) = self.last_emit.try_lock() else {
            // Another thread holds the emission slot; its event covers us.
            return;
        };
        let due = match *last {
            None => true,
            Some(at) => at.elapsed() >= self.min_interval,
        };
        if due {
            *last = Some(Instant::now());
            emit(done, self.total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_and_final_ticks_always_emit() {
        let p = ProgressThrottle::new(1000, 10);
        let mut events = Vec::new();
        for _ in 0..1000 {
            p.tick(1, |d, t| events.push((d, t)));
        }
        assert_eq!(events.first(), Some(&(1, 1000)));
        assert_eq!(events.last(), Some(&(1000, 1000)));
        // A tight loop over 1000 ticks takes far less than a second, so the
        // rate limiter must have swallowed almost everything in between.
        assert!(
            events.len() < 100,
            "rate limit ineffective: {} events",
            events.len()
        );
        assert_eq!(p.done(), 1000);
        assert_eq!(p.total(), 1000);
    }

    #[test]
    fn multi_unit_ticks_accumulate() {
        let p = ProgressThrottle::new(100, 1000);
        let mut last_done = 0;
        for _ in 0..4 {
            p.tick(25, |d, _| last_done = d);
        }
        assert_eq!(p.done(), 100);
        assert_eq!(last_done, 100);
    }

    #[test]
    fn concurrent_ticks_report_completion_exactly() {
        use std::sync::atomic::AtomicU64;
        let p = ProgressThrottle::new(4000, 10);
        let finals = AtomicU64::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for _ in 0..1000 {
                        p.tick(1, |d, t| {
                            if d >= t {
                                finals.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(p.done(), 4000);
        // Exactly one tick reports completion — no duplicate terminal events.
        assert_eq!(finals.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn overshooting_ticks_emit_one_terminal_event() {
        use std::sync::atomic::AtomicU64;
        // 5000 ticks against a total of 4000: 1001 ticks land at or past the
        // total from 4 threads, yet only the first may report.
        let p = ProgressThrottle::new(4000, 1_000_000);
        let finals = AtomicU64::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for _ in 0..1250 {
                        p.tick(1, |d, t| {
                            if d >= t {
                                finals.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(p.done(), 5000);
        assert_eq!(finals.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unknown_total_is_rate_limited_not_forced() {
        // Regression: total == 0 used to make every tick "finished", so every
        // tick took the blocking-lock path and emitted — defeating both the
        // rate limit and the try-lock contention escape.
        let p = ProgressThrottle::new(0, 10);
        let mut events = Vec::new();
        for _ in 0..10_000 {
            p.tick(1, |d, t| events.push((d, t)));
        }
        // The first tick reports (counter just started) ...
        assert_eq!(events.first(), Some(&(1, 0)));
        // ... and the rest are rate-limited like any mid-run tick.
        assert!(
            events.len() < 100,
            "unknown-total ticks must be rate-limited: {} events",
            events.len()
        );
        assert_eq!(p.done(), 10_000);
        assert_eq!(p.total(), 0);
    }

    #[test]
    fn zero_rate_is_clamped() {
        let p = ProgressThrottle::new(2, 0);
        let mut events = 0;
        p.tick(1, |_, _| events += 1);
        p.tick(1, |_, _| events += 1);
        // First and final still get through.
        assert_eq!(events, 2);
    }
}
