//! Aggregated, rate-limited progress reporting.
//!
//! Parallel workers used to push one event per finished chunk straight into
//! the sink; at high worker counts that floods stderr (and any recording
//! sink) with thousands of near-identical lines. [`ProgressThrottle`]
//! aggregates ticks from any number of threads into one monotonic counter and
//! forwards at most ~`max_events_per_sec` renderings of it, while always
//! letting the first and the final tick through so short runs still report
//! and completion is never silent.
//!
//! Throttling is wall-clock based and therefore non-deterministic — which is
//! fine *only* because progress events are advisory by contract
//! (`rc4-attacks`' `ProgressEvent` docs: sinks must not influence results).
//! Nothing that feeds an experiment report may pass through this type.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A thread-safe progress counter that rate-limits how often it reports.
///
/// # Examples
///
/// ```
/// use rc4_exec::ProgressThrottle;
///
/// let progress = ProgressThrottle::new(100, 10);
/// let mut seen = Vec::new();
/// for _ in 0..100 {
///     progress.tick(1, |done, total| seen.push((done, total)));
/// }
/// // The first and the final tick always report; the middle is rate-limited.
/// assert_eq!(seen.first(), Some(&(1, 100)));
/// assert_eq!(seen.last(), Some(&(100, 100)));
/// ```
#[derive(Debug)]
pub struct ProgressThrottle {
    total: u64,
    min_interval: Duration,
    done: AtomicU64,
    /// `None` until the first emission; guards the emission timestamp. Taken
    /// with `try_lock` so a contended tick skips its emission instead of
    /// blocking a worker (some other thread is emitting right now anyway).
    last_emit: Mutex<Option<Instant>>,
}

impl ProgressThrottle {
    /// Creates a counter for `total` units reporting at most
    /// ~`max_events_per_sec` times per second (clamped to ≥ 1).
    pub fn new(total: u64, max_events_per_sec: u32) -> Self {
        Self {
            total,
            min_interval: Duration::from_secs(1) / max_events_per_sec.max(1),
            done: AtomicU64::new(0),
            last_emit: Mutex::new(None),
        }
    }

    /// The configured unit total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Records `n` completed units and calls `emit(done, total)` if this tick
    /// is due: the counter just started, just completed, or the rate limit
    /// has lapsed. `emit` runs on the ticking thread.
    pub fn tick<F: FnOnce(u64, u64)>(&self, n: u64, emit: F) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        let finished = done >= self.total;
        let Ok(mut last) = self.last_emit.try_lock() else {
            // Another thread holds the emission slot; its event covers us
            // unless we are the finishing tick, which must not be dropped —
            // retry with a blocking lock only then.
            if finished {
                let mut last = self.last_emit.lock().expect("progress mutex poisoned");
                *last = Some(Instant::now());
                emit(done, self.total);
            }
            return;
        };
        let due = finished
            || match *last {
                None => true,
                Some(at) => at.elapsed() >= self.min_interval,
            };
        if due {
            *last = Some(Instant::now());
            emit(done, self.total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_and_final_ticks_always_emit() {
        let p = ProgressThrottle::new(1000, 10);
        let mut events = Vec::new();
        for _ in 0..1000 {
            p.tick(1, |d, t| events.push((d, t)));
        }
        assert_eq!(events.first(), Some(&(1, 1000)));
        assert_eq!(events.last(), Some(&(1000, 1000)));
        // A tight loop over 1000 ticks takes far less than a second, so the
        // rate limiter must have swallowed almost everything in between.
        assert!(
            events.len() < 100,
            "rate limit ineffective: {} events",
            events.len()
        );
        assert_eq!(p.done(), 1000);
        assert_eq!(p.total(), 1000);
    }

    #[test]
    fn multi_unit_ticks_accumulate() {
        let p = ProgressThrottle::new(100, 1000);
        let mut last_done = 0;
        for _ in 0..4 {
            p.tick(25, |d, _| last_done = d);
        }
        assert_eq!(p.done(), 100);
        assert_eq!(last_done, 100);
    }

    #[test]
    fn concurrent_ticks_report_completion_exactly() {
        use std::sync::atomic::AtomicU64;
        let p = ProgressThrottle::new(4000, 10);
        let finals = AtomicU64::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for _ in 0..1000 {
                        p.tick(1, |d, t| {
                            if d >= t {
                                finals.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(p.done(), 4000);
        // The tick that crosses the total must have reported.
        assert!(finals.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn zero_rate_is_clamped() {
        let p = ProgressThrottle::new(2, 0);
        let mut events = 0;
        p.tick(1, |_, _| events += 1);
        p.tick(1, |_, _| events += 1);
        // First and final still get through.
        assert_eq!(events, 2);
    }
}
