//! Property-based tests for likelihoods and candidate generation.

use plaintext_recovery::{
    candidates::generate_candidates,
    charset::Charset,
    counts::SingleCounts,
    likelihood::{PairLikelihoods, SingleLikelihoods},
    viterbi::{list_viterbi, ViterbiConfig},
};
use proptest::prelude::*;

/// Strategy: a vector of 256 finite log-likelihood values.
fn log_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Algorithm 1 invariants for arbitrary likelihood tables: the list is
    /// sorted, has no duplicates, the top candidate is the per-position argmax,
    /// and every score equals the sum of its per-byte log-likelihoods.
    #[test]
    fn algorithm1_invariants(tables in prop::collection::vec(log_values(), 1..4), n in 1usize..64) {
        let liks: Vec<SingleLikelihoods> = tables
            .iter()
            .map(|t| SingleLikelihoods::from_log_values(t.clone()).unwrap())
            .collect();
        let cands = generate_candidates(&liks, n, &Charset::full()).unwrap();
        prop_assert!(!cands.is_empty());
        prop_assert!(cands.len() <= n);
        for w in cands.windows(2) {
            prop_assert!(w[0].log_likelihood >= w[1].log_likelihood - 1e-12);
        }
        let mut seen: Vec<&[u8]> = cands.iter().map(|c| c.plaintext.as_slice()).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), cands.len());

        let argmax: Vec<u8> = liks.iter().map(|l| l.best()).collect();
        let best_score: f64 = liks
            .iter()
            .zip(&argmax)
            .map(|(l, &b)| l.log_likelihood(b))
            .sum();
        prop_assert!((cands[0].log_likelihood - best_score).abs() < 1e-9);
        for cand in &cands {
            let score: f64 = liks
                .iter()
                .zip(&cand.plaintext)
                .map(|(l, &b)| l.log_likelihood(b))
                .sum();
            prop_assert!((score - cand.log_likelihood).abs() < 1e-9);
        }
    }

    /// Candidates always respect the plaintext alphabet.
    #[test]
    fn algorithm1_respects_charset(table in log_values(), n in 1usize..32) {
        let lik = SingleLikelihoods::from_log_values(table).unwrap();
        let charset = Charset::cookie();
        let cands = generate_candidates(&[lik], n, &charset).unwrap();
        for cand in &cands {
            prop_assert!(charset.accepts(&cand.plaintext));
        }
    }

    /// Single-byte likelihoods: combining is additive and the XOR structure holds —
    /// shifting the ciphertext counts by a constant XOR shifts the argmax the same way.
    #[test]
    fn likelihood_xor_equivariance(shift in any::<u8>(), seed in any::<u64>()) {
        // A deterministic biased keystream distribution.
        let mut probs = vec![1.0f64 / 256.0; 256];
        probs[(seed % 256) as usize] *= 3.0;
        let total: f64 = probs.iter().sum();
        let probs: Vec<f64> = probs.iter().map(|p| p / total).collect();

        // Counts consistent with plaintext byte 0.
        let n = 100_000u64;
        let base_counts: Vec<u64> = (0..256)
            .map(|c| (probs[c] * n as f64).round() as u64)
            .collect();
        // XORing every ciphertext byte by `shift` corresponds to plaintext `shift`.
        let mut shifted_counts = vec![0u64; 256];
        for (c, &count) in base_counts.iter().enumerate() {
            shifted_counts[c ^ shift as usize] = count;
        }
        let base = SingleLikelihoods::from_counts(&base_counts, &probs).unwrap();
        let shifted = SingleLikelihoods::from_counts(&shifted_counts, &probs).unwrap();
        prop_assert_eq!(shifted.best(), base.best() ^ shift);
    }

    /// The list-Viterbi decoder returns sorted candidates whose reported scores
    /// match the sum of the transition likelihoods along the reconstructed path.
    #[test]
    fn viterbi_scores_match_paths(seed in any::<u64>(), n in 1usize..16) {
        let weight = |t: usize, a: u8, b: u8| -> f64 {
            let mut x = seed ^ ((t as u64) << 32) ^ ((a as u64) << 16) ^ b as u64;
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 29;
            ((x >> 20) % 1000) as f64 / 37.0
        };
        let alphabet = Charset::new(&[3, 5, 7, 11, 13]).unwrap();
        let transitions = 3usize;
        let mut liks = Vec::new();
        for t in 0..transitions {
            let mut log = vec![0.0f64; 65536];
            for a in 0..=255u8 {
                for b in 0..=255u8 {
                    log[(a as usize) << 8 | b as usize] = weight(t, a, b);
                }
            }
            liks.push(PairLikelihoods::from_log_values(log).unwrap());
        }
        let config = ViterbiConfig {
            first_known: 1,
            last_known: 2,
            candidates: n,
            charset: alphabet,
        };
        let cands = list_viterbi(&liks, &config).unwrap();
        prop_assert!(!cands.is_empty());
        for w in cands.windows(2) {
            prop_assert!(w[0].log_likelihood >= w[1].log_likelihood - 1e-12);
        }
        for cand in &cands {
            let mut path = vec![1u8];
            path.extend_from_slice(&cand.plaintext);
            path.push(2);
            let score: f64 = path.windows(2).enumerate()
                .map(|(t, w)| weight(t, w[0], w[1]))
                .sum();
            prop_assert!((score - cand.log_likelihood).abs() < 1e-9);
        }
    }

    /// Ciphertext collectors never lose observations.
    #[test]
    fn collectors_preserve_totals(cts in prop::collection::vec(prop::collection::vec(any::<u8>(), 4), 1..50)) {
        let mut counts = SingleCounts::new(vec![1, 4]).unwrap();
        for ct in &cts {
            counts.record(ct);
        }
        prop_assert_eq!(counts.ciphertexts(), cts.len() as u64);
        prop_assert_eq!(counts.counts_at(0).iter().sum::<u64>(), cts.len() as u64);
        prop_assert_eq!(counts.counts_at(1).iter().sum::<u64>(), cts.len() as u64);
    }
}
