//! Ciphertext statistics collectors.
//!
//! The likelihood formulas never look at individual ciphertexts — only at
//! counts: how often each byte value appeared at a position, how often each
//! byte pair appeared at a position pair, and how often each ciphertext
//! differential appeared for an ABSAB relation. These collectors perform that
//! reduction once so the (expensive) likelihood evaluation can run over
//! compact tables.

use serde::{Deserialize, Serialize};

use crate::RecoveryError;

/// Per-position single-byte ciphertext counts.
///
/// `counts[p][v]` is the number of captured ciphertexts whose byte at tracked
/// position index `p` had value `v`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleCounts {
    positions: Vec<u64>,
    counts: Vec<u64>,
    ciphertexts: u64,
}

impl SingleCounts {
    /// Creates a collector for the given (1-based) ciphertext positions.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidConfig`] if `positions` is empty or
    /// contains zero.
    pub fn new(positions: Vec<u64>) -> Result<Self, RecoveryError> {
        if positions.is_empty() || positions.contains(&0) {
            return Err(RecoveryError::InvalidConfig(
                "positions must be non-empty and 1-based".into(),
            ));
        }
        let len = positions.len();
        Ok(Self {
            positions,
            counts: vec![0u64; len * 256],
            ciphertexts: 0,
        })
    }

    /// The tracked positions, in index order.
    pub fn positions(&self) -> &[u64] {
        &self.positions
    }

    /// Records one ciphertext (`ciphertext[pos - 1]` must exist for every tracked position).
    pub fn record(&mut self, ciphertext: &[u8]) {
        for (idx, &pos) in self.positions.iter().enumerate() {
            let v = ciphertext[pos as usize - 1] as usize;
            self.counts[idx * 256 + v] += 1;
        }
        self.ciphertexts += 1;
    }

    /// Records a ciphertext byte directly for tracked-position index `idx`.
    ///
    /// Used when the caller demultiplexes positions itself (e.g. the TKIP tool
    /// that only ever sees the 12 encrypted trailer bytes). Callers using this
    /// entry point must call [`SingleCounts::add_ciphertexts`] to keep the
    /// total in sync.
    pub fn record_byte(&mut self, idx: usize, value: u8) {
        self.counts[idx * 256 + value as usize] += 1;
    }

    /// Adds to the total ciphertext count (companion to [`SingleCounts::record_byte`]).
    pub fn add_ciphertexts(&mut self, n: u64) {
        self.ciphertexts += n;
    }

    /// The 256-entry count vector for tracked-position index `idx`.
    pub fn counts_at(&self, idx: usize) -> &[u64] {
        &self.counts[idx * 256..(idx + 1) * 256]
    }

    /// Number of ciphertexts recorded.
    pub fn ciphertexts(&self) -> u64 {
        self.ciphertexts
    }
}

/// Per-position-pair ciphertext counts (for double-byte likelihoods).
///
/// Tracks consecutive ciphertext byte pairs starting at each tracked position.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairCounts {
    start_positions: Vec<u64>,
    counts: Vec<u64>,
    ciphertexts: u64,
}

impl PairCounts {
    /// Creates a collector for consecutive pairs starting at the given (1-based) positions.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidConfig`] if `start_positions` is empty or contains zero.
    pub fn new(start_positions: Vec<u64>) -> Result<Self, RecoveryError> {
        if start_positions.is_empty() || start_positions.contains(&0) {
            return Err(RecoveryError::InvalidConfig(
                "start positions must be non-empty and 1-based".into(),
            ));
        }
        let len = start_positions.len();
        Ok(Self {
            start_positions,
            counts: vec![0u64; len * 65536],
            ciphertexts: 0,
        })
    }

    /// The tracked pair start positions.
    pub fn start_positions(&self) -> &[u64] {
        &self.start_positions
    }

    /// Records one ciphertext.
    pub fn record(&mut self, ciphertext: &[u8]) {
        for (idx, &pos) in self.start_positions.iter().enumerate() {
            let a = ciphertext[pos as usize - 1] as usize;
            let b = ciphertext[pos as usize] as usize;
            self.counts[idx * 65536 + a * 256 + b] += 1;
        }
        self.ciphertexts += 1;
    }

    /// The 65536-entry pair count table for tracked pair index `idx`.
    pub fn counts_at(&self, idx: usize) -> &[u64] {
        &self.counts[idx * 65536..(idx + 1) * 65536]
    }

    /// Number of ciphertexts recorded.
    pub fn ciphertexts(&self) -> u64 {
        self.ciphertexts
    }
}

/// Ciphertext-differential counts for one ABSAB relation.
///
/// For the relation with gap `g`, each recorded ciphertext contributes the
/// differential `(C_r ⊕ C_{r+2+g}, C_{r+1} ⊕ C_{r+3+g})` where `r` is the
/// position of the unknown pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DifferentialCounts {
    /// Position (1-based) of the first unknown byte.
    unknown_pos: u64,
    /// Position (1-based) of the first byte of the known digraph.
    known_pos: u64,
    /// The ABSAB gap `g` this relation corresponds to.
    gap: usize,
    counts: Vec<u64>,
    ciphertexts: u64,
}

impl DifferentialCounts {
    /// Creates a differential collector for an unknown pair at `unknown_pos`
    /// related to a known pair at `known_pos` with ABSAB gap `gap`.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidConfig`] if either position is zero or
    /// the positions are inconsistent with the gap (they must be exactly
    /// `gap + 2` apart in either direction).
    pub fn new(unknown_pos: u64, known_pos: u64, gap: usize) -> Result<Self, RecoveryError> {
        if unknown_pos == 0 || known_pos == 0 {
            return Err(RecoveryError::InvalidConfig("positions are 1-based".into()));
        }
        let distance = unknown_pos.abs_diff(known_pos);
        if distance != gap as u64 + 2 {
            return Err(RecoveryError::InvalidConfig(format!(
                "positions {unknown_pos} and {known_pos} are {distance} apart, expected {}",
                gap + 2
            )));
        }
        Ok(Self {
            unknown_pos,
            known_pos,
            gap,
            counts: vec![0u64; 65536],
            ciphertexts: 0,
        })
    }

    /// The ABSAB gap of this relation.
    pub fn gap(&self) -> usize {
        self.gap
    }

    /// Position of the unknown pair.
    pub fn unknown_pos(&self) -> u64 {
        self.unknown_pos
    }

    /// Position of the known pair.
    pub fn known_pos(&self) -> u64 {
        self.known_pos
    }

    /// Records one ciphertext.
    pub fn record(&mut self, ciphertext: &[u8]) {
        let u = self.unknown_pos as usize - 1;
        let k = self.known_pos as usize - 1;
        let d0 = ciphertext[u] ^ ciphertext[k];
        let d1 = ciphertext[u + 1] ^ ciphertext[k + 1];
        self.counts[d0 as usize * 256 + d1 as usize] += 1;
        self.ciphertexts += 1;
    }

    /// Count of a specific differential value `(d0, d1)`.
    pub fn count(&self, d0: u8, d1: u8) -> u64 {
        self.counts[d0 as usize * 256 + d1 as usize]
    }

    /// The full 65536-entry differential count table.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of ciphertexts recorded.
    pub fn ciphertexts(&self) -> u64 {
        self.ciphertexts
    }
}

/// Widens a count table to `f64` in one contiguous blocked pass.
///
/// The likelihood builders score candidates with fused multiply-free
/// `count * delta` accumulation over 256-slot rows (see
/// `rc4_accel::score::xor_mul_add_256`); converting the `u64` counts up front
/// keeps that hot loop free of per-element `u64 → f64` conversions and lets
/// the compiler turn this single pass into packed conversion instructions.
/// `u64 → f64` is exact for every realistic ciphertext volume (counts below
/// 2^53).
pub fn widen_counts(counts: &[u64]) -> Vec<f64> {
    counts.iter().map(|&n| n as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_counts_record() {
        let mut c = SingleCounts::new(vec![1, 3]).unwrap();
        c.record(&[0xAA, 0xBB, 0xCC]);
        c.record(&[0xAA, 0x00, 0xCD]);
        assert_eq!(c.counts_at(0)[0xAA], 2);
        assert_eq!(c.counts_at(1)[0xCC], 1);
        assert_eq!(c.counts_at(1)[0xCD], 1);
        assert_eq!(c.ciphertexts(), 2);
        assert_eq!(c.positions(), &[1, 3]);
    }

    #[test]
    fn single_counts_manual_path() {
        let mut c = SingleCounts::new(vec![5]).unwrap();
        c.record_byte(0, 0x11);
        c.record_byte(0, 0x11);
        c.add_ciphertexts(2);
        assert_eq!(c.counts_at(0)[0x11], 2);
        assert_eq!(c.ciphertexts(), 2);
    }

    #[test]
    fn single_counts_validation() {
        assert!(SingleCounts::new(vec![]).is_err());
        assert!(SingleCounts::new(vec![0]).is_err());
    }

    #[test]
    fn pair_counts_record() {
        let mut c = PairCounts::new(vec![2]).unwrap();
        c.record(&[1, 2, 3, 4]);
        c.record(&[9, 2, 3, 4]);
        assert_eq!(c.counts_at(0)[2 * 256 + 3], 2);
        assert_eq!(c.ciphertexts(), 2);
        assert!(PairCounts::new(vec![]).is_err());
    }

    #[test]
    fn differential_counts_record() {
        // Unknown pair at positions 3-4, known pair at 6-7 (gap 1).
        let mut c = DifferentialCounts::new(3, 6, 1).unwrap();
        let ct = [0u8, 0, 0x10, 0x20, 0, 0x13, 0x27];
        c.record(&ct);
        assert_eq!(c.count(0x03, 0x07), 1);
        assert_eq!(c.ciphertexts(), 1);
        assert_eq!(c.gap(), 1);
    }

    #[test]
    fn widen_counts_is_exact() {
        let counts = vec![0u64, 1, 977, 1 << 52];
        assert_eq!(
            widen_counts(&counts),
            vec![0.0, 1.0, 977.0, (1u64 << 52) as f64]
        );
    }

    #[test]
    fn differential_validation() {
        assert!(DifferentialCounts::new(0, 3, 1).is_err());
        // Distance 3 but gap 2 would require distance 4.
        assert!(DifferentialCounts::new(3, 6, 2).is_err());
        // Known plaintext before the unknown pair also works (distance 3 = gap 1 + 2).
        assert!(DifferentialCounts::new(6, 3, 1).is_ok());
    }
}
