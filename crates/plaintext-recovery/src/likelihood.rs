//! Bayesian plaintext likelihood estimation (Section 4.1 and 4.3).
//!
//! For a fixed position, the attacker has counts of how often each ciphertext
//! byte (or byte pair) value was observed. For a candidate plaintext value µ,
//! the *induced keystream distribution* is obtained by XORing the counts with
//! µ; the likelihood of µ is the multinomial probability of that induced
//! distribution under the real keystream distribution. Working with logarithms,
//!
//! ```text
//! log λ_µ      = Σ_c N[c]        · ln p_{c ⊕ µ}              (single byte)
//! log λ_µ1,µ2  = Σ_{c1,c2} N[c1,c2] · ln p_{c1⊕µ1, c2⊕µ2}     (byte pair)
//! ```
//!
//! The pair form costs 2^32 operations when evaluated naively over all (µ1, µ2);
//! when most keystream value pairs are independent and uniform (true for the
//! Fluhrer–McGrew biases, where at most 8 of 65536 cells are biased) the paper's
//! Eq. 15 reduces the work to `|I^c|` table lookups per candidate pair.
//! Likelihoods from different bias families are combined by adding their logs
//! (Eq. 25).

use rc4_exec::Executor;

use crate::RecoveryError;

/// Log-likelihoods of each of the 256 plaintext values for one byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleLikelihoods {
    log: Vec<f64>,
}

impl SingleLikelihoods {
    /// Computes single-byte log-likelihoods from ciphertext counts and a
    /// keystream distribution (Eq. 11/12).
    ///
    /// `ciphertext_counts` has 256 entries (`N[c]`), `keystream_probs` has 256
    /// entries (`p_k`); zero probabilities are floored to avoid `-inf` blowing
    /// up the whole candidate (a keystream value the model deems impossible).
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidInput`] if either slice is not 256 long.
    pub fn from_counts(
        ciphertext_counts: &[u64],
        keystream_probs: &[f64],
    ) -> Result<Self, RecoveryError> {
        Self::from_counts_with_exec(ciphertext_counts, keystream_probs, &Executor::serial())
    }

    /// [`SingleLikelihoods::from_counts`] on an explicit executor. The 256
    /// candidates form a single blocked row (too small to shard), so the
    /// executor only contributes cancellation; the result is bit-identical
    /// for any worker count (including the serial wrapper).
    ///
    /// # Errors
    ///
    /// Everything [`SingleLikelihoods::from_counts`] returns, plus
    /// [`RecoveryError::Cancelled`] when the executor's flag is raised.
    pub fn from_counts_with_exec(
        ciphertext_counts: &[u64],
        keystream_probs: &[f64],
        exec: &Executor<'_>,
    ) -> Result<Self, RecoveryError> {
        if ciphertext_counts.len() != 256 || keystream_probs.len() != 256 {
            return Err(RecoveryError::InvalidInput(
                "single-byte likelihood needs 256 counts and 256 probabilities".into(),
            ));
        }
        let log_p: Vec<f64> = keystream_probs
            .iter()
            .map(|&p| p.max(1e-300).ln())
            .collect();
        let mut log = vec![0.0f64; 256];
        // One 256-slot row: the work is blocked per observed ciphertext value
        // (`log[mu] += N[c] * ln p[c ^ mu]` for all mu at once), which is the
        // SIMD-friendly `xor_mul_add_256` shape. Iterating `c` in ascending
        // order as the outer loop gives every slot the exact accumulation
        // sequence of the old per-candidate inner loop, so results are
        // bit-identical to the historical scalar path and independent of the
        // worker count.
        exec.chunked(&mut log, 256, |_, _, chunk| {
            for (c, &n) in ciphertext_counts.iter().enumerate() {
                if n > 0 {
                    rc4_accel::score::xor_mul_add_256(chunk, &log_p, c as u8, n as f64);
                }
            }
            Ok::<_, RecoveryError>(())
        })
        .map_err(RecoveryError::from)?;
        Ok(Self { log })
    }

    /// Builds likelihoods directly from precomputed log values.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidInput`] if `log` is not 256 long.
    pub fn from_log_values(log: Vec<f64>) -> Result<Self, RecoveryError> {
        if log.len() != 256 {
            return Err(RecoveryError::InvalidInput(
                "expected 256 log-likelihood values".into(),
            ));
        }
        Ok(Self { log })
    }

    /// Uniform (uninformative) likelihoods.
    pub fn flat() -> Self {
        Self {
            log: vec![0.0; 256],
        }
    }

    /// The log-likelihood of plaintext value `mu`.
    pub fn log_likelihood(&self, mu: u8) -> f64 {
        self.log[mu as usize]
    }

    /// All 256 log-likelihoods.
    pub fn as_slice(&self) -> &[f64] {
        &self.log
    }

    /// The most likely plaintext value.
    pub fn best(&self) -> u8 {
        let mut best = 0usize;
        for (i, &v) in self.log.iter().enumerate() {
            if v > self.log[best] {
                best = i;
            }
        }
        best as u8
    }

    /// Combines this likelihood with another (independent) estimate for the
    /// same byte by adding the log-likelihoods (Eq. 25).
    pub fn combine(&mut self, other: &Self) {
        for (a, b) in self.log.iter_mut().zip(&other.log) {
            *a += b;
        }
    }

    /// Plaintext values ranked from most to least likely.
    pub fn ranked(&self) -> Vec<u8> {
        let mut order: Vec<u8> = (0..=255).collect();
        order.sort_by(|&a, &b| {
            self.log[b as usize]
                .partial_cmp(&self.log[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }
}

/// Log-likelihoods of each of the 65536 plaintext pairs for one pair position.
#[derive(Debug, Clone, PartialEq)]
pub struct PairLikelihoods {
    log: Vec<f64>,
}

impl PairLikelihoods {
    /// Computes pair log-likelihoods with the naive Eq. 13 (2^32 operations).
    ///
    /// Prefer [`PairLikelihoods::from_counts_sparse`] when the keystream model
    /// only has a few biased cells; the naive version exists as the baseline
    /// for the `likelihood_opt` ablation bench and for validating the sparse path.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidInput`] if either slice is not 65536 long.
    pub fn from_counts_dense(
        pair_counts: &[u64],
        keystream_probs: &[f64],
    ) -> Result<Self, RecoveryError> {
        Self::from_counts_dense_with_exec(pair_counts, keystream_probs, &Executor::serial())
    }

    /// [`PairLikelihoods::from_counts_dense`] on an explicit executor: the
    /// 65536 candidate pairs are scored in parallel chunks. Every candidate's
    /// accumulation runs over the same non-zero-count list in the same order
    /// whatever the chunking, so the result is bit-identical for any worker
    /// count.
    ///
    /// # Errors
    ///
    /// Everything [`PairLikelihoods::from_counts_dense`] returns, plus
    /// [`RecoveryError::Cancelled`] when the executor's flag is raised.
    pub fn from_counts_dense_with_exec(
        pair_counts: &[u64],
        keystream_probs: &[f64],
        exec: &Executor<'_>,
    ) -> Result<Self, RecoveryError> {
        if pair_counts.len() != 65536 || keystream_probs.len() != 65536 {
            return Err(RecoveryError::InvalidInput(
                "pair likelihood needs 65536 counts and probabilities".into(),
            ));
        }
        let log_p: Vec<f64> = keystream_probs
            .iter()
            .map(|&p| p.max(1e-300).ln())
            .collect();
        // Collect the non-zero counts once; ciphertext count tables are usually sparse
        // relative to 65536 cells unless the ciphertext volume is enormous.
        let nonzero: Vec<(usize, usize, f64)> = pair_counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (idx >> 8, idx & 0xff, n as f64))
            .collect();
        let mut log = vec![0.0f64; 65536];
        // Chunks are whole mu1 rows; within a row, each non-zero count cell
        // contributes `n * ln p[(c1^mu1), (c2^mu2)]` to all 256 mu2 slots at
        // once — a blocked `xor_mul_add_256` over the `c1^mu1` row of the
        // log-probability table. The cell list order is the per-slot
        // accumulation order of the old per-candidate loop, so results stay
        // bit-identical for any worker count.
        exec.chunked(
            &mut log,
            exec.chunk_len_for(256) * 256,
            |_, start, chunk| {
                for (row_off, row) in chunk.chunks_mut(256).enumerate() {
                    let mu1 = (start >> 8) + row_off;
                    for &(c1, c2, n) in &nonzero {
                        let log_p_row = &log_p[(c1 ^ mu1) << 8..][..256];
                        rc4_accel::score::xor_mul_add_256(row, log_p_row, c2 as u8, n);
                    }
                }
                Ok::<_, RecoveryError>(())
            },
        )
        .map_err(RecoveryError::from)?;
        Ok(Self { log })
    }

    /// Computes pair log-likelihoods with the paper's optimized Eq. 15.
    ///
    /// `biased_cells` lists the dependent keystream value pairs `I^c` as
    /// `(k1, k2, probability)`; every other keystream pair is treated as having
    /// probability `uniform`. Complexity is `O(|I^c| · 65536)` instead of `2^32`
    /// — with the 8 Fluhrer–McGrew cells this is the "roughly 2^19 operations"
    /// the paper quotes.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidInput`] if `pair_counts` is not 65536
    /// long, `uniform` is not positive, or a biased cell has non-positive
    /// probability.
    pub fn from_counts_sparse(
        pair_counts: &[u64],
        biased_cells: &[(u8, u8, f64)],
        uniform: f64,
        total_ciphertexts: u64,
    ) -> Result<Self, RecoveryError> {
        Self::from_counts_sparse_with_exec(
            pair_counts,
            biased_cells,
            uniform,
            total_ciphertexts,
            &Executor::serial(),
        )
    }

    /// [`PairLikelihoods::from_counts_sparse`] on an explicit executor: the
    /// 65536 candidate pairs are scored in parallel chunks. Every candidate
    /// accumulates its biased-cell terms in the cell-list order whatever the
    /// chunking, so the result is bit-identical for any worker count.
    ///
    /// # Errors
    ///
    /// Everything [`PairLikelihoods::from_counts_sparse`] returns, plus
    /// [`RecoveryError::Cancelled`] when the executor's flag is raised.
    pub fn from_counts_sparse_with_exec(
        pair_counts: &[u64],
        biased_cells: &[(u8, u8, f64)],
        uniform: f64,
        total_ciphertexts: u64,
        exec: &Executor<'_>,
    ) -> Result<Self, RecoveryError> {
        if pair_counts.len() != 65536 {
            return Err(RecoveryError::InvalidInput(
                "pair likelihood needs 65536 counts".into(),
            ));
        }
        if uniform <= 0.0 {
            return Err(RecoveryError::InvalidInput(
                "uniform probability must be positive".into(),
            ));
        }
        if biased_cells.iter().any(|&(_, _, p)| p <= 0.0) {
            return Err(RecoveryError::InvalidInput(
                "biased cell probabilities must be positive".into(),
            ));
        }
        let ln_u = uniform.ln();
        let cells: Vec<(usize, usize, f64)> = biased_cells
            .iter()
            .map(|&(k1, k2, p)| (k1 as usize, k2 as usize, p.ln() - ln_u))
            .collect();
        // Constant term |C| * ln(u) — identical for every candidate, kept so the
        // sparse and dense paths produce comparable absolute values.
        let base = total_ciphertexts as f64 * ln_u;
        // Widened once so the hot loop is pure f64 multiply-adds; exact for
        // counts below 2^53.
        let counts_f64 = crate::counts::widen_counts(pair_counts);
        let mut log = vec![base; 65536];
        // Chunks are whole mu1 rows; per row, each biased cell adds
        // `N[c1^mu1, k2^mu2] * (ln p - ln u)` to all 256 mu2 slots at once —
        // a blocked `xor_mul_add_256` over the widened `c1^mu1` counts row.
        // The cell-list order fixes every slot's accumulation sequence
        // whatever the chunking, so the result is bit-identical for any
        // worker count.
        exec.chunked(
            &mut log,
            exec.chunk_len_for(256) * 256,
            |_, start, chunk| {
                for (row_off, row) in chunk.chunks_mut(256).enumerate() {
                    let mu1 = (start >> 8) + row_off;
                    for &(k1, k2, delta) in &cells {
                        let counts_row = &counts_f64[(k1 ^ mu1) << 8..][..256];
                        rc4_accel::score::xor_mul_add_256(row, counts_row, k2 as u8, delta);
                    }
                }
                Ok::<_, RecoveryError>(())
            },
        )
        .map_err(RecoveryError::from)?;
        Ok(Self { log })
    }

    /// Builds pair likelihoods from precomputed log values.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidInput`] if `log` is not 65536 long.
    pub fn from_log_values(log: Vec<f64>) -> Result<Self, RecoveryError> {
        if log.len() != 65536 {
            return Err(RecoveryError::InvalidInput(
                "expected 65536 log-likelihood values".into(),
            ));
        }
        Ok(Self { log })
    }

    /// Uniform (uninformative) pair likelihoods.
    pub fn flat() -> Self {
        Self {
            log: vec![0.0; 65536],
        }
    }

    /// The log-likelihood of the plaintext pair `(mu1, mu2)`.
    pub fn log_likelihood(&self, mu1: u8, mu2: u8) -> f64 {
        self.log[(mu1 as usize) << 8 | mu2 as usize]
    }

    /// All 65536 log-likelihoods (row-major in `mu1`).
    pub fn as_slice(&self) -> &[f64] {
        &self.log
    }

    /// The most likely plaintext pair.
    pub fn best(&self) -> (u8, u8) {
        let mut best = 0usize;
        for (i, &v) in self.log.iter().enumerate() {
            if v > self.log[best] {
                best = i;
            }
        }
        ((best >> 8) as u8, (best & 0xff) as u8)
    }

    /// The gap between the best candidate's log-likelihood and the
    /// runner-up's — the sequential statistic streaming mode tests against
    /// its confidence threshold. Always ≥ 0; 0 when the top is tied.
    pub fn margin(&self) -> f64 {
        let mut best = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        for &v in &self.log {
            if v > best {
                second = best;
                best = v;
            } else if v > second {
                second = v;
            }
        }
        best - second
    }

    /// Combines with another independent estimate for the same pair (Eq. 25).
    pub fn combine(&mut self, other: &Self) {
        for (a, b) in self.log.iter_mut().zip(&other.log) {
            *a += b;
        }
    }

    /// Adds a raw slice of 65536 log values in place (Eq. 25 without the
    /// intermediate [`PairLikelihoods`]).
    ///
    /// Equivalent to `self.combine(&PairLikelihoods::from_log_values(..))` but
    /// without cloning the 512 KiB vote table first — the slot order and the
    /// per-slot addition are the same, so results are bit-identical to the
    /// clone-then-combine path.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidInput`] if `log` is not 65536 long.
    pub fn add_log_values(&mut self, log: &[f64]) -> Result<(), RecoveryError> {
        if log.len() != 65536 {
            return Err(RecoveryError::InvalidInput(
                "expected 65536 log-likelihood values".into(),
            ));
        }
        for (a, b) in self.log.iter_mut().zip(log) {
            *a += b;
        }
        Ok(())
    }

    /// Marginalizes onto the first byte by taking, for each `mu1`, the maximum
    /// log-likelihood over `mu2` (a max-marginal, adequate for ranking).
    pub fn max_marginal_first(&self) -> SingleLikelihoods {
        let mut log = vec![f64::NEG_INFINITY; 256];
        for (mu1, slot) in log.iter_mut().enumerate() {
            for mu2 in 0..256usize {
                let v = self.log[(mu1 << 8) | mu2];
                if v > *slot {
                    *slot = v;
                }
            }
        }
        SingleLikelihoods { log }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a keystream distribution with one strongly biased value.
    fn biased_single(value: u8, relative: f64) -> Vec<f64> {
        let mut p = vec![1.0 / 256.0; 256];
        p[value as usize] *= 1.0 + relative;
        let s: f64 = p.iter().sum();
        p.iter().map(|x| x / s).collect()
    }

    #[test]
    fn single_likelihood_recovers_plaintext_under_strong_bias() {
        // Keystream value 0 appears twice as often (Mantin-Shamir style).
        let ks = biased_single(0, 1.0);
        let plaintext = 0x42u8;
        // Simulate ciphertext counts: C = P ^ Z, so counts[c] = N * p[c ^ P].
        let n = 1_000_000u64;
        let counts: Vec<u64> = (0..256)
            .map(|c| (n as f64 * ks[c ^ plaintext as usize]).round() as u64)
            .collect();
        let lik = SingleLikelihoods::from_counts(&counts, &ks).unwrap();
        assert_eq!(lik.best(), plaintext);
        assert_eq!(lik.ranked()[0], plaintext);
    }

    #[test]
    fn single_likelihood_validation_and_flat() {
        assert!(SingleLikelihoods::from_counts(&[0; 10], &[0.0; 256]).is_err());
        assert!(SingleLikelihoods::from_log_values(vec![0.0; 10]).is_err());
        let flat = SingleLikelihoods::flat();
        assert_eq!(flat.log_likelihood(3), 0.0);
    }

    #[test]
    fn single_combine_adds_information() {
        let ks = biased_single(7, 0.5);
        let plaintext = 0x99u8;
        let n = 50_000u64;
        let counts: Vec<u64> = (0..256)
            .map(|c| (n as f64 * ks[c ^ plaintext as usize]).round() as u64)
            .collect();
        let a = SingleLikelihoods::from_counts(&counts, &ks).unwrap();
        let mut combined = a.clone();
        combined.combine(&a);
        // Combining two copies doubles every log-likelihood.
        for mu in 0..=255u8 {
            assert!((combined.log_likelihood(mu) - 2.0 * a.log_likelihood(mu)).abs() < 1e-6);
        }
    }

    #[test]
    fn pair_margin_is_best_minus_runner_up() {
        let mut log = vec![0.0; 65536];
        log[(0x12usize) << 8 | 0x34] = 9.0;
        log[(0xABusize) << 8 | 0xCD] = 2.5;
        let lik = PairLikelihoods::from_log_values(log).unwrap();
        assert_eq!(lik.best(), (0x12, 0x34));
        assert!((lik.margin() - 6.5).abs() < 1e-12);
        // A flat table is fully tied: zero margin.
        assert_eq!(PairLikelihoods::flat().margin(), 0.0);
    }

    /// Keystream pair distribution with a few (artificially strong) biased cells,
    /// plus its sparse description.
    ///
    /// The real Fluhrer–McGrew biases are `~2^-8` relative; reproducing the
    /// recovery at that strength needs ciphertext volumes that belong in the
    /// release-mode benches (Fig. 7), so the unit tests exaggerate the bias to
    /// exercise the same code path cheaply. With the strong biases a small
    /// ciphertext count also keeps the count table sparse, which keeps the
    /// dense (2^32-flavoured) evaluation fast enough for a debug-mode test.
    fn biased_pair() -> (Vec<f64>, Vec<(u8, u8, f64)>) {
        let uniform = 1.0 / 65536.0;
        let mut probs = vec![uniform; 65536];
        let cells = vec![
            (0u8, 0u8, uniform * 12.0),
            (0u8, 1u8, uniform * 6.0),
            (255u8, 255u8, uniform * 0.1),
        ];
        for &(a, b, p) in &cells {
            probs[(a as usize) << 8 | b as usize] = p;
        }
        let s: f64 = probs.iter().sum();
        let probs: Vec<f64> = probs.iter().map(|x| x / s).collect();
        (probs, cells)
    }

    /// Simulates expected ciphertext pair counts for a plaintext pair (rounding
    /// tiny expected counts down to zero, which keeps the table sparse).
    fn simulate_pair_counts(probs: &[f64], mu: (u8, u8), n: u64) -> Vec<u64> {
        let mut counts = vec![0u64; 65536];
        for k1 in 0..256usize {
            for k2 in 0..256usize {
                let c1 = k1 ^ mu.0 as usize;
                let c2 = k2 ^ mu.1 as usize;
                counts[(c1 << 8) | c2] = (probs[(k1 << 8) | k2] * n as f64).round() as u64;
            }
        }
        counts
    }

    #[test]
    fn dense_pair_likelihood_recovers_pair() {
        let (probs, _) = biased_pair();
        let mu = (0x13u8, 0x37u8);
        let counts = simulate_pair_counts(&probs, mu, 20_000);
        let lik = PairLikelihoods::from_counts_dense(&counts, &probs).unwrap();
        assert_eq!(lik.best(), mu);
    }

    #[test]
    fn sparse_matches_dense_ranking() {
        let (probs, cells) = biased_pair();
        let mu = (0xAB, 0xCD);
        let n = 20_000u64;
        let counts = simulate_pair_counts(&probs, mu, n);
        let total: u64 = counts.iter().sum();
        let dense = PairLikelihoods::from_counts_dense(&counts, &probs).unwrap();
        let sparse =
            PairLikelihoods::from_counts_sparse(&counts, &cells, 1.0 / 65536.0, total).unwrap();
        assert_eq!(dense.best(), mu);
        assert_eq!(sparse.best(), mu);
        // The two estimates must rank a handful of competitive candidates identically.
        let mut idx: Vec<usize> = (0..65536).collect();
        idx.sort_by(|&a, &b| {
            dense.as_slice()[b]
                .partial_cmp(&dense.as_slice()[a])
                .unwrap()
        });
        let top_dense: Vec<usize> = idx[..5].to_vec();
        let mut idx2: Vec<usize> = (0..65536).collect();
        idx2.sort_by(|&a, &b| {
            sparse.as_slice()[b]
                .partial_cmp(&sparse.as_slice()[a])
                .unwrap()
        });
        assert_eq!(top_dense[0], idx2[0]);
    }

    #[test]
    fn pair_validation() {
        assert!(PairLikelihoods::from_counts_dense(&[0; 3], &[0.0; 65536]).is_err());
        assert!(PairLikelihoods::from_counts_sparse(&[0; 65536], &[], 0.0, 0).is_err());
        assert!(PairLikelihoods::from_counts_sparse(
            &[0; 65536],
            &[(0, 0, -1.0)],
            1.0 / 65536.0,
            0
        )
        .is_err());
        assert!(PairLikelihoods::from_log_values(vec![0.0; 3]).is_err());
    }

    #[test]
    fn max_marginal_projects_best_pair() {
        let mut log = vec![0.0f64; 65536];
        log[(0x41 << 8) | 0x42] = 10.0;
        let pair = PairLikelihoods::from_log_values(log).unwrap();
        let marg = pair.max_marginal_first();
        assert_eq!(marg.best(), 0x41);
    }

    #[test]
    fn exec_variants_are_bit_identical_for_any_worker_count() {
        use rc4_exec::Executor;
        let (probs, cells) = biased_pair();
        let mu = (0x5A, 0xC3);
        let counts = simulate_pair_counts(&probs, mu, 30_000);
        let total: u64 = counts.iter().sum();
        let sparse_ref =
            PairLikelihoods::from_counts_sparse(&counts, &cells, 1.0 / 65536.0, total).unwrap();
        let dense_ref = PairLikelihoods::from_counts_dense(&counts, &probs).unwrap();
        let single_counts: Vec<u64> = (0..256).map(|c| (c as u64 * 37) % 1000).collect();
        let single_probs = biased_single(9, 0.7);
        let single_ref = SingleLikelihoods::from_counts(&single_counts, &single_probs).unwrap();
        for workers in [2usize, 4, 7] {
            let exec = Executor::new(workers);
            let sparse = PairLikelihoods::from_counts_sparse_with_exec(
                &counts,
                &cells,
                1.0 / 65536.0,
                total,
                &exec,
            )
            .unwrap();
            assert_eq!(sparse, sparse_ref, "sparse, workers = {workers}");
            let dense =
                PairLikelihoods::from_counts_dense_with_exec(&counts, &probs, &exec).unwrap();
            assert_eq!(dense, dense_ref, "dense, workers = {workers}");
            let single =
                SingleLikelihoods::from_counts_with_exec(&single_counts, &single_probs, &exec)
                    .unwrap();
            assert_eq!(single, single_ref, "single, workers = {workers}");
        }
    }

    #[test]
    fn cancelled_executor_aborts_likelihood_scoring() {
        use std::sync::atomic::AtomicBool;
        let cancel = AtomicBool::new(true);
        let exec = rc4_exec::Executor::new(2).with_cancel(Some(&cancel));
        let counts = vec![1u64; 65536];
        let r = PairLikelihoods::from_counts_sparse_with_exec(
            &counts,
            &[(0, 0, 2.0 / 65536.0)],
            1.0 / 65536.0,
            65536,
            &exec,
        );
        assert_eq!(r.unwrap_err(), crate::RecoveryError::Cancelled);
    }

    #[test]
    fn pair_combine_adds() {
        let (probs, cells) = biased_pair();
        let counts = simulate_pair_counts(&probs, (1, 2), 20_000);
        let total: u64 = counts.iter().sum();
        let a = PairLikelihoods::from_counts_sparse(&counts, &cells, 1.0 / 65536.0, total).unwrap();
        let mut c = a.clone();
        c.combine(&a);
        assert!((c.log_likelihood(1, 2) - 2.0 * a.log_likelihood(1, 2)).abs() < 1e-6);
    }
}
