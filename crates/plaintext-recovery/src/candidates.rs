//! Algorithm 1: ranked plaintext candidates from single-byte likelihoods.
//!
//! Given per-position log-likelihoods over the 256 byte values, the algorithm
//! incrementally builds the `N` most likely plaintexts of length 1, 2, ...,
//! `L`. At each step, for every byte value µ it keeps a cursor into the sorted
//! candidate list of the previous length; a max-heap over the 256 cursors
//! yields the next-best extension in `O(log 256)` per emitted candidate, so the
//! whole run costs `O(L · N · log 256)` — efficient enough to walk millions of
//! candidates, which is what makes the CRC-pruning step of the TKIP attack
//! practical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rc4_exec::Executor;

use crate::{charset::Charset, likelihood::SingleLikelihoods, RecoveryError};

/// A ranked plaintext candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The candidate plaintext bytes.
    pub plaintext: Vec<u8>,
    /// Its total log-likelihood.
    pub log_likelihood: f64,
}

/// Heap entry: the best unexplored extension for a particular byte value.
#[derive(Debug)]
struct HeapEntry {
    score: f64,
    value_idx: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.value_idx == other.value_idx
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.value_idx.cmp(&other.value_idx))
    }
}

/// Generates the `n` most likely plaintexts of length `likelihoods.len()`
/// from independent per-position single-byte likelihoods (Algorithm 1).
///
/// Candidates are returned in decreasing likelihood. The optional `charset`
/// restricts every byte to the given alphabet (used when the plaintext is
/// known to be e.g. a cookie value).
///
/// # Errors
///
/// Returns [`RecoveryError::InvalidInput`] if `likelihoods` is empty or
/// `n == 0`.
///
/// # Examples
///
/// ```
/// use plaintext_recovery::{candidates::generate_candidates, charset::Charset,
///                           likelihood::SingleLikelihoods};
///
/// // Two positions; byte 0x41 then 0x42 are most likely.
/// let mut a = vec![0.0f64; 256];
/// a[0x41] = 5.0;
/// a[0x40] = 4.0;
/// let mut b = vec![0.0f64; 256];
/// b[0x42] = 3.0;
/// let liks = vec![
///     SingleLikelihoods::from_log_values(a).unwrap(),
///     SingleLikelihoods::from_log_values(b).unwrap(),
/// ];
/// let cands = generate_candidates(&liks, 3, &Charset::full()).unwrap();
/// assert_eq!(cands[0].plaintext, vec![0x41, 0x42]);
/// assert_eq!(cands[1].plaintext, vec![0x40, 0x42]);
/// ```
pub fn generate_candidates(
    likelihoods: &[SingleLikelihoods],
    n: usize,
    charset: &Charset,
) -> Result<Vec<Candidate>, RecoveryError> {
    generate_candidates_with_exec(likelihoods, n, charset, &Executor::serial())
}

/// [`generate_candidates`] on an explicit executor.
///
/// The cursor-heap frontier walk is inherently sequential (each emitted
/// candidate updates the heap the next one pops from) and stays on the
/// calling thread; the backpointer reconstruction of the final candidate
/// strings — `O(L · N)` work, the dominant cost at the TKIP attack's large
/// `N` — is fanned out over rank chunks. Ranks are reconstructed
/// independently, so the output is identical for any worker count.
///
/// # Errors
///
/// Everything [`generate_candidates`] returns, plus
/// [`RecoveryError::Cancelled`] when the executor's flag is raised.
pub fn generate_candidates_with_exec(
    likelihoods: &[SingleLikelihoods],
    n: usize,
    charset: &Charset,
    exec: &Executor<'_>,
) -> Result<Vec<Candidate>, RecoveryError> {
    if likelihoods.is_empty() {
        return Err(RecoveryError::InvalidInput(
            "at least one position is required".into(),
        ));
    }
    if n == 0 {
        return Err(RecoveryError::InvalidInput("n must be > 0".into()));
    }
    let alphabet = charset.values();

    // Backpointers per position: (previous candidate rank, value index in alphabet).
    let mut steps: Vec<Vec<(u32, u16)>> = Vec::with_capacity(likelihoods.len());
    // Scores of the current frontier, sorted descending.
    let mut prev_scores: Vec<f64> = vec![0.0];

    for lik in likelihoods {
        if exec.is_cancelled() {
            return Err(RecoveryError::Cancelled);
        }
        // Per-alphabet-value cursor into the previous frontier.
        let mut cursor = vec![0usize; alphabet.len()];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(alphabet.len());
        for (vi, &v) in alphabet.iter().enumerate() {
            heap.push(HeapEntry {
                score: prev_scores[0] + lik.log_likelihood(v),
                value_idx: vi,
            });
        }

        let capacity = n.min(prev_scores.len().saturating_mul(alphabet.len()).max(1));
        let mut new_scores = Vec::with_capacity(capacity);
        let mut new_back = Vec::with_capacity(capacity);
        while new_scores.len() < capacity {
            let Some(entry) = heap.pop() else { break };
            let vi = entry.value_idx;
            let rank = cursor[vi];
            new_scores.push(entry.score);
            new_back.push((rank as u32, vi as u16));
            cursor[vi] += 1;
            if cursor[vi] < prev_scores.len() {
                heap.push(HeapEntry {
                    score: prev_scores[cursor[vi]] + lik.log_likelihood(alphabet[vi]),
                    value_idx: vi,
                });
            }
        }
        steps.push(new_back);
        prev_scores = new_scores;
    }

    // Reconstruct the candidate strings by walking the backpointers. Each
    // rank walks independently, so ranks are reconstructed in parallel
    // chunks and concatenated in rank order. Within a chunk, the walk is
    // level-synchronous over blocks of ranks: one rank's walk is a serial
    // pointer chase (`r -> steps[pos][r].0`), but a block of 64 ranks
    // advanced one position level at a time gives the core 64 independent
    // chase chains to overlap and touches each level's step table with
    // spatial locality instead of re-streaming it per rank. The per-rank
    // data read is unchanged, so the output is identical to the rank-at-a-
    // time walk for any worker count.
    const BLOCK: usize = 64;
    let ranks = prev_scores.len();
    let chunk = exec.chunk_len_for(ranks);
    let rank_chunks: Vec<usize> = (0..ranks).step_by(chunk).collect();
    let chunks: Vec<Vec<Candidate>> = exec
        .map(rank_chunks, |_, first| {
            let count = chunk.min(ranks - first);
            let mut out: Vec<Candidate> = prev_scores[first..first + count]
                .iter()
                .map(|&score| Candidate {
                    plaintext: vec![0u8; likelihoods.len()],
                    log_likelihood: score,
                })
                .collect();
            let mut cur = [0usize; BLOCK];
            for block_start in (0..count).step_by(BLOCK) {
                let b = BLOCK.min(count - block_start);
                for (slot, c) in cur[..b].iter_mut().enumerate() {
                    *c = first + block_start + slot;
                }
                for (pos, step) in steps.iter().enumerate().rev() {
                    for (slot, c) in cur[..b].iter_mut().enumerate() {
                        let (prev_rank, vi) = step[*c];
                        out[block_start + slot].plaintext[pos] = alphabet[vi as usize];
                        *c = prev_rank as usize;
                    }
                }
            }
            Ok::<_, RecoveryError>(out)
        })
        .map_err(RecoveryError::from)?;
    Ok(chunks.into_iter().flatten().collect())
}

/// Convenience wrapper returning only the single most likely plaintext.
///
/// # Errors
///
/// Same conditions as [`generate_candidates`].
pub fn most_likely(
    likelihoods: &[SingleLikelihoods],
    charset: &Charset,
) -> Result<Candidate, RecoveryError> {
    Ok(generate_candidates(likelihoods, 1, charset)?
        .into_iter()
        .next()
        .expect("n = 1 always yields one candidate"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lik_from(pairs: &[(u8, f64)]) -> SingleLikelihoods {
        let mut log = vec![-10.0f64; 256];
        for &(v, s) in pairs {
            log[v as usize] = s;
        }
        SingleLikelihoods::from_log_values(log).unwrap()
    }

    #[test]
    fn candidates_are_sorted_and_exhaustive_for_small_cases() {
        let liks = vec![
            lik_from(&[(1, 3.0), (2, 2.0), (3, 1.0)]),
            lik_from(&[(10, 5.0), (20, 4.5)]),
        ];
        let cands =
            generate_candidates(&liks, 6, &Charset::new(&[1, 2, 3, 10, 20]).unwrap()).unwrap();
        assert_eq!(cands.len(), 6);
        // Scores must be non-increasing.
        for w in cands.windows(2) {
            assert!(w[0].log_likelihood >= w[1].log_likelihood);
        }
        assert_eq!(cands[0].plaintext, vec![1, 10]);
        assert_eq!(cands[1].plaintext, vec![1, 20]);
        assert_eq!(cands[2].plaintext, vec![2, 10]);
    }

    #[test]
    fn matches_brute_force_enumeration() {
        // Three positions over a 5-letter alphabet: compare against exhaustive search.
        let alphabet = Charset::new(&[7, 8, 9, 10, 11]).unwrap();
        let liks: Vec<SingleLikelihoods> = (0..3)
            .map(|p| {
                lik_from(&[
                    (7, 0.3 * p as f64 + 0.1),
                    (8, 1.3 - p as f64 * 0.5),
                    (9, 0.71),
                    (10, -0.2 + 0.05 * p as f64),
                    (11, 0.03),
                ])
            })
            .collect();
        let n = 20;
        let fast = generate_candidates(&liks, n, &alphabet).unwrap();

        // Brute force.
        let mut all: Vec<(f64, Vec<u8>)> = Vec::new();
        for &a in alphabet.values() {
            for &b in alphabet.values() {
                for &c in alphabet.values() {
                    let score = liks[0].log_likelihood(a)
                        + liks[1].log_likelihood(b)
                        + liks[2].log_likelihood(c);
                    all.push((score, vec![a, b, c]));
                }
            }
        }
        all.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
        for i in 0..n {
            assert!((fast[i].log_likelihood - all[i].0).abs() < 1e-9, "rank {i}");
        }
        // The top candidate must match exactly (later ones may tie-swap).
        assert_eq!(fast[0].plaintext, all[0].1);
    }

    #[test]
    fn truncates_when_fewer_candidates_exist() {
        let liks = vec![lik_from(&[(0, 1.0)])];
        let cands = generate_candidates(&liks, 1000, &Charset::new(&[0, 1, 2]).unwrap()).unwrap();
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn charset_restricts_candidates() {
        // The unrestricted best value (0xFF) is outside the charset.
        let liks = vec![lik_from(&[(0xFF, 100.0), (b'a', 1.0), (b'b', 0.5)])];
        let cands = generate_candidates(&liks, 2, &Charset::new(b"ab").unwrap()).unwrap();
        assert_eq!(cands[0].plaintext, vec![b'a']);
        assert_eq!(cands[1].plaintext, vec![b'b']);
    }

    #[test]
    fn most_likely_shortcut() {
        let liks = vec![lik_from(&[(5, 2.0)]), lik_from(&[(6, 2.0)])];
        let best = most_likely(&liks, &Charset::full()).unwrap();
        assert_eq!(best.plaintext, vec![5, 6]);
    }

    #[test]
    fn validation() {
        assert!(generate_candidates(&[], 10, &Charset::full()).is_err());
        let liks = vec![lik_from(&[(0, 1.0)])];
        assert!(generate_candidates(&liks, 0, &Charset::full()).is_err());
    }

    #[test]
    fn exec_generation_is_identical_for_any_worker_count() {
        use rc4_exec::Executor;
        let liks: Vec<SingleLikelihoods> = (0..9)
            .map(|p| {
                lik_from(&[
                    ((p * 13 % 256) as u8, 2.5),
                    ((p * 29 % 256) as u8, 2.0),
                    ((p * 31 % 256) as u8, 1.5),
                ])
            })
            .collect();
        let reference = generate_candidates(&liks, 500, &Charset::full()).unwrap();
        for workers in [2usize, 4] {
            let got = generate_candidates_with_exec(
                &liks,
                500,
                &Charset::full(),
                &Executor::new(workers),
            )
            .unwrap();
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn cancelled_executor_aborts_generation() {
        use std::sync::atomic::AtomicBool;
        let cancel = AtomicBool::new(true);
        let exec = rc4_exec::Executor::new(2).with_cancel(Some(&cancel));
        let liks = vec![lik_from(&[(0, 1.0)])];
        assert_eq!(
            generate_candidates_with_exec(&liks, 4, &Charset::full(), &exec).unwrap_err(),
            crate::RecoveryError::Cancelled
        );
    }

    #[test]
    fn large_candidate_count_is_feasible() {
        // 12 positions (like MIC + ICV), 2^14 candidates.
        let liks: Vec<SingleLikelihoods> = (0..12)
            .map(|p| lik_from(&[((p * 7 % 256) as u8, 2.0), ((p * 11 % 256) as u8, 1.5)]))
            .collect();
        let cands = generate_candidates(&liks, 1 << 14, &Charset::full()).unwrap();
        assert_eq!(cands.len(), 1 << 14);
        for w in cands.windows(2) {
            assert!(w[0].log_likelihood >= w[1].log_likelihood);
        }
    }
}
