//! Algorithm 2: ranked plaintext candidates from double-byte likelihoods.
//!
//! When the available biases are inherently *pairwise* (Fluhrer–McGrew
//! digraphs, ABSAB differentials), the per-position estimates are likelihoods
//! over consecutive plaintext byte pairs. The paper models the plaintext as a
//! first-order, time-inhomogeneous hidden Markov model whose transition weights
//! at step `r` are the pair likelihoods `λ_{r, µ1, µ2}`, and generates the `N`
//! most likely byte sequences with an N-best (list) Viterbi decode, assuming
//! the first and last byte of the covered span are known.
//!
//! The implementation keeps, for every possible ending value, the `N` best
//! partial sequences ending in that value, merging the per-value sorted lists
//! of the previous step with a cursor heap (the same trick as Algorithm 1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rc4_exec::Executor;

use crate::{charset::Charset, likelihood::PairLikelihoods, RecoveryError};

/// A ranked candidate for the unknown plaintext span.
#[derive(Debug, Clone, PartialEq)]
pub struct PairCandidate {
    /// The recovered unknown bytes (excluding the known boundary bytes).
    pub plaintext: Vec<u8>,
    /// Total log-likelihood of the full path including the boundary transitions.
    pub log_likelihood: f64,
}

#[derive(Debug)]
struct MergeEntry {
    score: f64,
    source_idx: usize,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.source_idx == other.source_idx
    }
}
impl Eq for MergeEntry {}
impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.source_idx.cmp(&other.source_idx))
    }
}

/// One ending value's merged column: its top-`n` scores (descending) and
/// their `(previous value index, previous rank)` backpointers.
type MergedColumn = (Vec<f64>, Vec<(u16, u32)>);

/// Configuration for the list-Viterbi decode.
#[derive(Debug, Clone)]
pub struct ViterbiConfig {
    /// Known plaintext byte immediately before the unknown span.
    pub first_known: u8,
    /// Known plaintext byte immediately after the unknown span.
    pub last_known: u8,
    /// Number of candidates to return.
    pub candidates: usize,
    /// Alphabet of the unknown bytes.
    pub charset: Charset,
}

/// Generates ranked candidates for an unknown plaintext span of `likelihoods.len() - 1`
/// bytes, flanked by known bytes, from per-transition pair likelihoods (Algorithm 2).
///
/// `likelihoods[t]` is the pair likelihood for the transition from sequence
/// position `t` to `t + 1`, where position 0 is the known byte before the span
/// and position `likelihoods.len()` is the known byte after the span. With `L`
/// unknown bytes there must therefore be exactly `L + 1` transition likelihoods.
///
/// # Errors
///
/// Returns [`RecoveryError::InvalidInput`] if fewer than two transitions are
/// provided (no unknown byte in between) or `candidates == 0`.
///
/// # Examples
///
/// ```
/// use plaintext_recovery::{charset::Charset, likelihood::PairLikelihoods,
///                           viterbi::{list_viterbi, ViterbiConfig}};
///
/// // One unknown byte between known bytes 0x10 and 0x20; transitions prefer 0x41.
/// let mut t0 = vec![0.0f64; 65536];
/// t0[(0x10usize << 8) | 0x41] = 4.0;
/// let mut t1 = vec![0.0f64; 65536];
/// t1[(0x41usize << 8) | 0x20] = 3.0;
/// let liks = vec![
///     PairLikelihoods::from_log_values(t0).unwrap(),
///     PairLikelihoods::from_log_values(t1).unwrap(),
/// ];
/// let config = ViterbiConfig {
///     first_known: 0x10,
///     last_known: 0x20,
///     candidates: 2,
///     charset: Charset::full(),
/// };
/// let out = list_viterbi(&liks, &config).unwrap();
/// assert_eq!(out[0].plaintext, vec![0x41]);
/// ```
pub fn list_viterbi(
    likelihoods: &[PairLikelihoods],
    config: &ViterbiConfig,
) -> Result<Vec<PairCandidate>, RecoveryError> {
    list_viterbi_with_exec(likelihoods, config, &Executor::serial())
}

/// [`list_viterbi`] on an explicit executor: the beam expansion of each
/// decode step — one cursor-heap merge per possible ending value, each
/// reading only the previous step's frontier — is fanned out across the
/// executor's workers. Ending values are independent and results are
/// collected in alphabet order, so the candidate list is identical for any
/// worker count.
///
/// # Errors
///
/// Everything [`list_viterbi`] returns, plus [`RecoveryError::Cancelled`]
/// when the executor's flag is raised.
pub fn list_viterbi_with_exec(
    likelihoods: &[PairLikelihoods],
    config: &ViterbiConfig,
    exec: &Executor<'_>,
) -> Result<Vec<PairCandidate>, RecoveryError> {
    if likelihoods.len() < 2 {
        return Err(RecoveryError::InvalidInput(
            "need at least two transitions (one unknown byte)".into(),
        ));
    }
    if config.candidates == 0 {
        return Err(RecoveryError::InvalidInput("candidates must be > 0".into()));
    }
    let alphabet = config.charset.values();
    let a = alphabet.len();
    let n = config.candidates;
    let unknown_len = likelihoods.len() - 1;

    // frontier[vi] = sorted (desc) scores of partial sequences ending in alphabet[vi].
    // back[step][vi][rank] = (prev value idx, prev rank) for reconstruction.
    let mut frontier: Vec<Vec<f64>> = Vec::with_capacity(a);
    let mut backs: Vec<Vec<Vec<(u16, u32)>>> = Vec::with_capacity(unknown_len);

    // First unknown byte: transition from the known first byte.
    let first = &likelihoods[0];
    let mut first_back = Vec::with_capacity(a);
    for &v in alphabet {
        frontier.push(vec![first.log_likelihood(config.first_known, v)]);
        first_back.push(vec![(u16::MAX, 0u32)]); // sentinel: predecessor is the known byte
    }
    backs.push(first_back);

    // Remaining unknown bytes: the per-ending-value merges of one step only
    // read the previous frontier, so each step's beam expansion fans out
    // across the executor (collected back in alphabet order).
    for lik in &likelihoods[1..unknown_len] {
        let merged: Vec<MergedColumn> = exec
            .map(alphabet.to_vec(), |_, v2| {
                Ok::<_, RecoveryError>(merge_best(
                    &frontier,
                    alphabet,
                    |v1| lik.log_likelihood(v1, v2),
                    n,
                ))
            })
            .map_err(RecoveryError::from)?;
        let mut new_frontier: Vec<Vec<f64>> = Vec::with_capacity(a);
        let mut new_back: Vec<Vec<(u16, u32)>> = Vec::with_capacity(a);
        for (scores, back) in merged {
            new_frontier.push(scores);
            new_back.push(back);
        }
        frontier = new_frontier;
        backs.push(new_back);
    }

    // Final transition into the known last byte.
    let last = &likelihoods[unknown_len];
    let (final_scores, final_back) = merge_best(
        &frontier,
        alphabet,
        |v1| last.log_likelihood(v1, config.last_known),
        n,
    );

    // Reconstruct candidates.
    let mut out = Vec::with_capacity(final_scores.len());
    for (rank, &score) in final_scores.iter().enumerate() {
        let mut bytes = vec![0u8; unknown_len];
        let (mut vi, mut r) = final_back[rank];
        for step in (0..unknown_len).rev() {
            bytes[step] = alphabet[vi as usize];
            let (pvi, pr) = backs[step][vi as usize][r as usize];
            if pvi == u16::MAX {
                break;
            }
            vi = pvi;
            r = pr;
        }
        out.push(PairCandidate {
            plaintext: bytes,
            log_likelihood: score,
        });
    }
    Ok(out)
}

/// Merges the per-value sorted score lists of the previous step with an added
/// transition weight `w(value)`, returning the top-`n` scores and their sources.
fn merge_best(
    frontier: &[Vec<f64>],
    alphabet: &[u8],
    weight: impl Fn(u8) -> f64,
    n: usize,
) -> (Vec<f64>, Vec<(u16, u32)>) {
    let mut cursor = vec![0usize; frontier.len()];
    let mut heap: BinaryHeap<MergeEntry> = BinaryHeap::with_capacity(frontier.len());
    let weights: Vec<f64> = alphabet.iter().map(|&v| weight(v)).collect();
    for (vi, scores) in frontier.iter().enumerate() {
        if !scores.is_empty() {
            heap.push(MergeEntry {
                score: scores[0] + weights[vi],
                source_idx: vi,
            });
        }
    }
    let total_available: usize = frontier.iter().map(|s| s.len()).sum();
    let capacity = n.min(total_available);
    let mut scores = Vec::with_capacity(capacity);
    let mut back = Vec::with_capacity(capacity);
    while scores.len() < capacity {
        let Some(entry) = heap.pop() else { break };
        let vi = entry.source_idx;
        let rank = cursor[vi];
        scores.push(entry.score);
        back.push((vi as u16, rank as u32));
        cursor[vi] += 1;
        if cursor[vi] < frontier[vi].len() {
            heap.push(MergeEntry {
                score: frontier[vi][cursor[vi]] + weights[vi],
                source_idx: vi,
            });
        }
    }
    (scores, back)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_lik(entries: &[(u8, u8, f64)], default: f64) -> PairLikelihoods {
        let mut log = vec![default; 65536];
        for &(a, b, s) in entries {
            log[(a as usize) << 8 | b as usize] = s;
        }
        PairLikelihoods::from_log_values(log).unwrap()
    }

    #[test]
    fn single_unknown_byte() {
        let liks = vec![
            pair_lik(&[(9, 100, 5.0), (9, 101, 4.0)], 0.0),
            pair_lik(&[(100, 7, 3.0), (101, 7, 3.5)], 0.0),
        ];
        let config = ViterbiConfig {
            first_known: 9,
            last_known: 7,
            candidates: 3,
            charset: Charset::full(),
        };
        let out = list_viterbi(&liks, &config).unwrap();
        // 100: 5.0 + 3.0 = 8.0; 101: 4.0 + 3.5 = 7.5.
        assert_eq!(out[0].plaintext, vec![100]);
        assert!((out[0].log_likelihood - 8.0).abs() < 1e-12);
        assert_eq!(out[1].plaintext, vec![101]);
        for w in out.windows(2) {
            assert!(w[0].log_likelihood >= w[1].log_likelihood);
        }
    }

    #[test]
    fn matches_brute_force_over_small_alphabet() {
        // Three unknown bytes over a 4-letter alphabet with arbitrary weights.
        let alphabet = Charset::new(&[1, 2, 3, 4]).unwrap();
        let m1 = 50u8;
        let ml = 60u8;
        // Deterministic pseudo-random weights with good mixing over (r, a, b).
        let weight = |r: usize, a: u8, b: u8| -> f64 {
            let mut x = ((r as u64) << 32) | ((a as u64) << 16) | b as u64;
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 29;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 32;
            ((x >> 16) % 100_000) as f64 / 1000.0
        };
        let mut liks = Vec::new();
        for r in 0..4 {
            let mut log = vec![f64::NEG_INFINITY; 65536];
            for a in 0..=255u8 {
                for &b in alphabet.values() {
                    log[(a as usize) << 8 | b as usize] = weight(r, a, b);
                }
                log[(a as usize) << 8 | ml as usize] = weight(r, a, ml);
            }
            liks.push(PairLikelihoods::from_log_values(log).unwrap());
        }
        let config = ViterbiConfig {
            first_known: m1,
            last_known: ml,
            candidates: 10,
            charset: alphabet.clone(),
        };
        let fast = list_viterbi(&liks, &config).unwrap();

        // Brute force all 64 sequences.
        let mut all: Vec<(f64, Vec<u8>)> = Vec::new();
        for &a in alphabet.values() {
            for &b in alphabet.values() {
                for &c in alphabet.values() {
                    let score =
                        weight(0, m1, a) + weight(1, a, b) + weight(2, b, c) + weight(3, c, ml);
                    all.push((score, vec![a, b, c]));
                }
            }
        }
        all.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
        assert_eq!(fast.len(), 10);
        for i in 0..10 {
            assert!(
                (fast[i].log_likelihood - all[i].0).abs() < 1e-9,
                "rank {i}: {} vs {}",
                fast[i].log_likelihood,
                all[i].0
            );
        }
        // The reported likelihood of each returned candidate must equal its true
        // path score (guards against backpointer reconstruction bugs even when
        // equal-scoring candidates are ordered differently than the brute force).
        for cand in &fast {
            let s = weight(0, m1, cand.plaintext[0])
                + weight(1, cand.plaintext[0], cand.plaintext[1])
                + weight(2, cand.plaintext[1], cand.plaintext[2])
                + weight(3, cand.plaintext[2], ml);
            assert!((s - cand.log_likelihood).abs() < 1e-9);
        }
        assert_eq!(fast[0].plaintext, all[0].1);
    }

    #[test]
    fn candidate_count_truncates_to_available() {
        let liks = vec![pair_lik(&[], 0.0), pair_lik(&[], 0.0)];
        let config = ViterbiConfig {
            first_known: 0,
            last_known: 0,
            candidates: 10_000,
            charset: Charset::new(&[5, 6]).unwrap(),
        };
        let out = list_viterbi(&liks, &config).unwrap();
        // Only two possible sequences of length 1.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn charset_prunes_unknown_bytes() {
        // The best transition goes through a byte outside the charset.
        let liks = vec![
            pair_lik(&[(0, 200, 100.0), (0, b'a', 1.0)], 0.0),
            pair_lik(&[(200, 0, 100.0), (b'a', 0, 1.0)], 0.0),
        ];
        let config = ViterbiConfig {
            first_known: 0,
            last_known: 0,
            candidates: 1,
            charset: Charset::new(b"abc").unwrap(),
        };
        let out = list_viterbi(&liks, &config).unwrap();
        assert_eq!(out[0].plaintext, vec![b'a']);
    }

    #[test]
    fn validation() {
        let one = vec![pair_lik(&[], 0.0)];
        let config = ViterbiConfig {
            first_known: 0,
            last_known: 0,
            candidates: 1,
            charset: Charset::full(),
        };
        assert!(list_viterbi(&one, &config).is_err());
        let two = vec![pair_lik(&[], 0.0), pair_lik(&[], 0.0)];
        let bad = ViterbiConfig {
            candidates: 0,
            ..config
        };
        assert!(list_viterbi(&two, &bad).is_err());
    }

    #[test]
    fn exec_decode_is_identical_for_any_worker_count() {
        use rc4_exec::Executor;
        // A 4-unknown-byte decode over a 16-letter alphabet with mixed
        // weights; the parallel beam expansion must reproduce the serial
        // candidate list exactly, scores and all.
        let alphabet = Charset::hex_lower();
        let mut liks = Vec::new();
        for r in 0..5u64 {
            let mut log = vec![0.0f64; 65536];
            for (i, slot) in log.iter_mut().enumerate() {
                let mut x = (r << 32) | i as u64;
                x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                *slot = ((x >> 40) % 1000) as f64 / 250.0;
            }
            liks.push(PairLikelihoods::from_log_values(log).unwrap());
        }
        let config = ViterbiConfig {
            first_known: b'=',
            last_known: b';',
            candidates: 64,
            charset: alphabet,
        };
        let reference = list_viterbi(&liks, &config).unwrap();
        for workers in [2usize, 4] {
            let got = list_viterbi_with_exec(&liks, &config, &Executor::new(workers)).unwrap();
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn cancelled_executor_aborts_decode() {
        use std::sync::atomic::AtomicBool;
        let cancel = AtomicBool::new(true);
        let exec = Executor::new(2).with_cancel(Some(&cancel));
        let liks = vec![pair_lik(&[], 0.0), pair_lik(&[], 0.0), pair_lik(&[], 0.0)];
        let config = ViterbiConfig {
            first_known: 0,
            last_known: 0,
            candidates: 4,
            charset: Charset::full(),
        };
        assert_eq!(
            list_viterbi_with_exec(&liks, &config, &exec).unwrap_err(),
            RecoveryError::Cancelled
        );
    }

    #[test]
    fn longer_spans_and_ranked_output() {
        // 6 unknown bytes spelling "cookie" must be the top candidate when each
        // transition strongly prefers the right pair.
        let secret = b"cookie";
        let m1 = b'=';
        let ml = b';';
        let full: Vec<u8> = std::iter::once(m1)
            .chain(secret.iter().copied())
            .chain(std::iter::once(ml))
            .collect();
        let mut liks = Vec::new();
        for w in full.windows(2) {
            liks.push(pair_lik(&[(w[0], w[1], 8.0)], 0.0));
        }
        let config = ViterbiConfig {
            first_known: m1,
            last_known: ml,
            candidates: 16,
            charset: Charset::cookie(),
        };
        let out = list_viterbi(&liks, &config).unwrap();
        assert_eq!(out[0].plaintext, secret.to_vec());
        for w in out.windows(2) {
            assert!(w[0].log_likelihood >= w[1].log_likelihood);
        }
    }
}
