//! Plaintext likelihoods from Mantin's ABSAB bias (Section 4.2).
//!
//! The unknown plaintext pair at positions `(r, r+1)` is related to a *known*
//! plaintext pair `(µ'1, µ'2)` a gap `g` away. The keystream differential over
//! that span is zero with probability `α(g) > 2^-16`, so the ciphertext
//! differential is biased towards the plaintext differential. Counting how
//! often each ciphertext differential value occurs therefore yields a
//! likelihood for the plaintext differential, and — XORing with the known
//! plaintext — for the unknown pair itself. Because only the all-zero
//! differential is biased, the likelihood has the simple two-parameter form of
//! the paper's Eq. 22.

use crate::{counts::DifferentialCounts, likelihood::PairLikelihoods, RecoveryError};

/// Computes the pair log-likelihoods contributed by one ABSAB relation.
///
/// * `diff_counts` — ciphertext differential counts for the relation.
/// * `known_pair` — the known plaintext bytes `(µ'1, µ'2)` at the related positions.
/// * `alpha` — the keystream-differential-zero probability `α(g)` for the
///   relation's gap (see `rc4_biases::absab::alpha`).
///
/// The keystream-differential model is: value `(0, 0)` with probability `α`,
/// every other value with the uniform share `u = (1 - α) / 65535`. Following
/// Eq. 15/22, each candidate unknown pair `(µ1, µ2)` with
/// `µ̂ = (µ1 ⊕ µ'1, µ2 ⊕ µ'2)` therefore scores
/// `(|C| - N[µ̂]) ln u + N[µ̂] ln α`: observing the candidate's differential
/// more often than the uniform share predicts raises its likelihood.
///
/// # Errors
///
/// Returns [`RecoveryError::InvalidInput`] if `alpha` is not in `(0, 1)`.
pub fn absab_pair_likelihoods(
    diff_counts: &DifferentialCounts,
    known_pair: (u8, u8),
    alpha: f64,
) -> Result<PairLikelihoods, RecoveryError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(RecoveryError::InvalidInput(
            "alpha must be strictly between 0 and 1".into(),
        ));
    }
    let total = diff_counts.ciphertexts() as f64;
    let ln_alpha = alpha.ln();
    // Probability of each *specific* non-zero keystream differential.
    let ln_rest = ((1.0 - alpha) / 65535.0).ln();

    let mut log = vec![0.0f64; 65536];
    for mu1 in 0..256usize {
        let d0 = mu1 ^ known_pair.0 as usize;
        for mu2 in 0..256usize {
            let d1 = mu2 ^ known_pair.1 as usize;
            let hits = diff_counts.count(d0 as u8, d1 as u8) as f64;
            log[(mu1 << 8) | mu2] = (total - hits) * ln_rest + hits * ln_alpha;
        }
    }
    PairLikelihoods::from_log_values(log)
}

/// Combines the likelihood contributions of many ABSAB relations (and
/// optionally a Fluhrer–McGrew estimate) for the same unknown pair by summing
/// their log-likelihoods — the paper's Eq. 25.
///
/// # Errors
///
/// Returns [`RecoveryError::InvalidInput`] if `parts` is empty.
pub fn combine_pair_likelihoods(
    parts: &[PairLikelihoods],
) -> Result<PairLikelihoods, RecoveryError> {
    let Some((first, rest)) = parts.split_first() else {
        return Err(RecoveryError::InvalidInput(
            "need at least one likelihood estimate to combine".into(),
        ));
    };
    let mut combined = first.clone();
    for part in rest {
        combined.combine(part);
    }
    Ok(combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds differential counts as if the keystream differential were zero with
    /// probability `alpha` and uniform otherwise, for a true plaintext differential.
    fn synthetic_diff_counts(
        unknown_pos: u64,
        known_pos: u64,
        gap: usize,
        true_diff: (u8, u8),
        alpha: f64,
        n: u64,
    ) -> DifferentialCounts {
        let mut counts = DifferentialCounts::new(unknown_pos, known_pos, gap).unwrap();
        // Expected counts: the true differential gets the alpha boost, every
        // differential also receives a uniform share of the non-aligned mass.
        let uniform_share = (1.0 - alpha) / 65535.0;
        let max_pos = unknown_pos.max(known_pos) as usize + 1;
        let mut ct = vec![0u8; max_pos];
        for d0 in 0..256usize {
            for d1 in 0..256usize {
                let p = if (d0 as u8, d1 as u8) == true_diff {
                    alpha
                } else {
                    uniform_share
                };
                let reps = (p * n as f64).round() as u64;
                if reps == 0 {
                    continue;
                }
                // Construct a ciphertext with the desired differential.
                ct[unknown_pos as usize - 1] = d0 as u8;
                ct[unknown_pos as usize] = d1 as u8;
                ct[known_pos as usize - 1] = 0;
                ct[known_pos as usize] = 0;
                for _ in 0..reps {
                    counts.record(&ct);
                }
            }
        }
        counts
    }

    #[test]
    fn recovers_pair_from_absab_differentials() {
        let known = (b'X', b'Y');
        let secret = (b'a', b'7');
        let true_diff = (secret.0 ^ known.0, secret.1 ^ known.1);
        // Use an exaggerated alpha so a small synthetic sample suffices.
        let alpha = 0.01;
        let counts = synthetic_diff_counts(3, 8, 3, true_diff, alpha, 2_000_000);
        let lik = absab_pair_likelihoods(&counts, known, alpha).unwrap();
        assert_eq!(lik.best(), secret);
    }

    #[test]
    fn alpha_validation() {
        let counts = DifferentialCounts::new(3, 8, 3).unwrap();
        assert!(absab_pair_likelihoods(&counts, (0, 0), 0.0).is_err());
        assert!(absab_pair_likelihoods(&counts, (0, 0), 1.0).is_err());
        assert!(absab_pair_likelihoods(&counts, (0, 0), 0.5).is_ok());
    }

    #[test]
    fn combining_relations_sharpens_the_estimate() {
        let known = (0x20u8, 0x21u8);
        let secret = (0x41u8, 0x42u8);
        let true_diff = (secret.0 ^ known.0, secret.1 ^ known.1);
        let alpha = 0.002;
        // A single noisy relation with few samples may or may not succeed; combining
        // several must score the true pair at least as well as any single one does.
        let parts: Vec<PairLikelihoods> = (0..6)
            .map(|g| {
                let counts =
                    synthetic_diff_counts(3, 3 + 2 + g, g as usize, true_diff, alpha, 400_000);
                absab_pair_likelihoods(&counts, known, alpha).unwrap()
            })
            .collect();
        let combined = combine_pair_likelihoods(&parts).unwrap();
        assert_eq!(combined.best(), secret);
    }

    #[test]
    fn combine_requires_input() {
        assert!(combine_pair_likelihoods(&[]).is_err());
    }
}
