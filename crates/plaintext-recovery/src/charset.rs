//! Plaintext alphabets used to prune candidate generation.
//!
//! RFC 6265 limits a cookie value to at most 90 distinct characters (printable
//! US-ASCII except control characters, whitespace, double quote, comma,
//! semicolon and backslash). Section 6.2 of the paper exploits this to tighten
//! the brute-force bound; in the algorithms the restriction simply replaces the
//! loops over 256 byte values with loops over the allowed alphabet.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::RecoveryError;

/// A plaintext alphabet: the set of byte values a plaintext byte may take.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Charset {
    values: Vec<u8>,
    member: [bool; 256],
}

impl Charset {
    /// Builds a charset from an explicit list of allowed byte values.
    ///
    /// Duplicates are removed; order is preserved (first occurrence wins).
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidConfig`] if the list is empty.
    pub fn new(values: &[u8]) -> Result<Self, RecoveryError> {
        if values.is_empty() {
            return Err(RecoveryError::InvalidConfig(
                "charset must not be empty".into(),
            ));
        }
        let mut member = [false; 256];
        let mut unique = Vec::new();
        for &v in values {
            if !member[v as usize] {
                member[v as usize] = true;
                unique.push(v);
            }
        }
        Ok(Self {
            values: unique,
            member,
        })
    }

    /// The full byte alphabet (0–255).
    pub fn full() -> Self {
        let values: Vec<u8> = (0..=255).collect();
        Self::new(&values).expect("full charset is non-empty")
    }

    /// The RFC 6265 cookie-value alphabet (90 characters).
    ///
    /// Allowed: `0x21`, `0x23`–`0x2B`, `0x2D`–`0x3A`, `0x3C`–`0x5B`,
    /// `0x5D`–`0x7E` — i.e. printable ASCII minus space, `"`, `,`, `;` and `\`.
    pub fn cookie() -> Self {
        let mut values = Vec::new();
        for v in 0x21u8..=0x7E {
            if matches!(v, b'"' | b',' | b';' | b'\\') {
                continue;
            }
            values.push(v);
        }
        Self::new(&values).expect("cookie charset is non-empty")
    }

    /// The standard base64 alphabet plus `=` padding (65 characters), a common
    /// shape for session cookies.
    pub fn base64() -> Self {
        let mut values: Vec<u8> = Vec::new();
        values.extend(b'A'..=b'Z');
        values.extend(b'a'..=b'z');
        values.extend(b'0'..=b'9');
        values.push(b'+');
        values.push(b'/');
        values.push(b'=');
        Self::new(&values).expect("base64 charset is non-empty")
    }

    /// Lowercase hexadecimal digits (16 characters).
    pub fn hex_lower() -> Self {
        let mut values: Vec<u8> = Vec::new();
        values.extend(b'0'..=b'9');
        values.extend(b'a'..=b'f');
        Self::new(&values).expect("hex charset is non-empty")
    }

    /// The allowed byte values, in construction order.
    pub fn values(&self) -> &[u8] {
        &self.values
    }

    /// Number of allowed values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the alphabet is the full byte range.
    pub fn is_full(&self) -> bool {
        self.values.len() == 256
    }

    /// `true` only for the (invalid, unconstructible) empty set; present to
    /// satisfy the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, value: u8) -> bool {
        self.member[value as usize]
    }

    /// Returns `true` if every byte of `text` is in the alphabet.
    pub fn accepts(&self, text: &[u8]) -> bool {
        text.iter().all(|&b| self.contains(b))
    }
}

/// Serialized as the plain list of allowed byte values (the membership table
/// is derived data), so experiment configs embedding a charset stay readable.
impl Serialize for Charset {
    fn to_value(&self) -> Value {
        self.values.to_value()
    }
}

impl Deserialize for Charset {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let values = Vec::<u8>::from_value(v)?;
        Charset::new(&values).map_err(|e| DeError(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip_preserves_order_and_membership() {
        let c = Charset::base64();
        let json = serde_json::to_string(&c).unwrap();
        let back: Charset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        // An empty list must fail through the constructor's validation.
        assert!(serde_json::from_str::<Charset>("[]").is_err());
    }

    #[test]
    fn cookie_charset_has_90_values() {
        let c = Charset::cookie();
        assert_eq!(c.len(), 90);
        assert!(c.contains(b'a'));
        assert!(c.contains(b'!'));
        assert!(c.contains(b'='));
        assert!(!c.contains(b' '));
        assert!(!c.contains(b'"'));
        assert!(!c.contains(b','));
        assert!(!c.contains(b';'));
        assert!(!c.contains(b'\\'));
        assert!(!c.contains(0x00));
        assert!(!c.contains(0x7F));
    }

    #[test]
    fn base64_and_hex() {
        let b = Charset::base64();
        assert_eq!(b.len(), 65);
        assert!(b.accepts(b"SGVsbG8h+/="));
        assert!(!b.accepts(b"space here"));
        let h = Charset::hex_lower();
        assert_eq!(h.len(), 16);
        assert!(h.accepts(b"deadbeef0123"));
        assert!(!h.accepts(b"DEADBEEF"));
    }

    #[test]
    fn full_charset() {
        let f = Charset::full();
        assert_eq!(f.len(), 256);
        assert!(f.is_full());
        assert!(f.accepts(&[0, 128, 255]));
    }

    #[test]
    fn dedup_and_validation() {
        let c = Charset::new(&[1, 2, 2, 3, 1]).unwrap();
        assert_eq!(c.values(), &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(Charset::new(&[]).is_err());
    }
}
