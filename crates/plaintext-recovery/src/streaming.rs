//! Sequential early stopping for streaming recovery.
//!
//! The fixed-grid experiments ask "does the attack succeed at `n`
//! ciphertexts" for a sweep of `n`; streaming mode asks the converse — "how
//! many ciphertexts did *this* session need". [`SequentialTest`] is the
//! decision rule: after every ingested batch the attack re-scores its
//! candidate ranking and feeds the *margin* (top candidate's log-likelihood
//! minus the runner-up's, e.g. [`crate::likelihood::PairLikelihoods::margin`])
//! together with the units consumed so far. The first observation whose
//! margin clears the configured threshold *latches* a decision at that unit
//! count; once decided, later observations cannot un-decide it. A stream
//! that never clears the threshold simply runs to its cap and reports "no
//! decision".
//!
//! Latching is what makes the stop decision monotone in the ciphertext
//! count for a fixed stream: if the test is decided after `n` units it is
//! decided after every `m ≥ n` — the property the streaming experiments'
//! worker-invariance contract builds on, and the one the property tests
//! below pin down.

use crate::RecoveryError;

/// Outcome of feeding one observation to a [`SequentialTest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopStatus {
    /// The margin has cleared the threshold (now or at an earlier
    /// observation); the attack may stop. Carries the units consumed and the
    /// margin *at the deciding observation*.
    Decided {
        /// Units (ciphertexts, requests, ...) consumed when the test decided.
        units: u64,
        /// The margin observed at the deciding observation.
        margin: f64,
    },
    /// No observation has cleared the threshold yet; keep ingesting. Carries
    /// the latest observation for reporting.
    Undecided {
        /// Units consumed at the latest observation.
        units: u64,
        /// The margin at the latest observation.
        margin: f64,
    },
}

impl StopStatus {
    /// Whether this status allows the attack to stop.
    pub fn is_decided(&self) -> bool {
        matches!(self, StopStatus::Decided { .. })
    }
}

/// A latching sequential test on the top-candidate likelihood margin.
///
/// # Examples
///
/// ```
/// use plaintext_recovery::streaming::SequentialTest;
///
/// let mut test = SequentialTest::new(10.0).unwrap();
/// assert!(!test.observe(100, 4.0).is_decided());
/// assert!(test.observe(200, 12.5).is_decided());
/// // Latched: a later, weaker margin cannot revoke the decision.
/// assert!(test.observe(300, 1.0).is_decided());
/// assert_eq!(test.decision(), Some((200, 12.5)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialTest {
    threshold: f64,
    decided: Option<(u64, f64)>,
}

impl SequentialTest {
    /// Creates a test that decides once the margin reaches `threshold`
    /// (in nats, i.e. natural-log likelihood units).
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::InvalidConfig`] unless the threshold is
    /// finite and positive — a non-positive threshold would decide on the
    /// flat (all-tied) ranking before any evidence arrived.
    pub fn new(threshold: f64) -> Result<Self, RecoveryError> {
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(RecoveryError::InvalidConfig(format!(
                "confidence threshold must be finite and > 0, got {threshold}"
            )));
        }
        Ok(Self {
            threshold,
            decided: None,
        })
    }

    /// The configured confidence threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Feeds the margin observed after consuming `units` total units.
    ///
    /// NaN margins are treated as "no evidence" and never decide.
    pub fn observe(&mut self, units: u64, margin: f64) -> StopStatus {
        if let Some((at, m)) = self.decided {
            return StopStatus::Decided {
                units: at,
                margin: m,
            };
        }
        if margin >= self.threshold {
            self.decided = Some((units, margin));
            return StopStatus::Decided { units, margin };
        }
        StopStatus::Undecided { units, margin }
    }

    /// The latched `(units, margin)` decision, if any.
    pub fn decision(&self) -> Option<(u64, f64)> {
        self.decided
    }

    /// Whether a decision has latched.
    pub fn is_decided(&self) -> bool {
        self.decided.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_validation() {
        assert!(SequentialTest::new(0.0).is_err());
        assert!(SequentialTest::new(-3.0).is_err());
        assert!(SequentialTest::new(f64::NAN).is_err());
        assert!(SequentialTest::new(f64::INFINITY).is_err());
        assert!(SequentialTest::new(1e-9).is_ok());
    }

    #[test]
    fn decides_at_first_crossing_and_latches() {
        let mut test = SequentialTest::new(5.0).unwrap();
        assert_eq!(
            test.observe(10, 1.0),
            StopStatus::Undecided {
                units: 10,
                margin: 1.0
            }
        );
        assert_eq!(
            test.observe(20, 5.0),
            StopStatus::Decided {
                units: 20,
                margin: 5.0
            }
        );
        // Later observations report the ORIGINAL decision point.
        assert_eq!(
            test.observe(30, 0.0),
            StopStatus::Decided {
                units: 20,
                margin: 5.0
            }
        );
        assert_eq!(test.decision(), Some((20, 5.0)));
    }

    #[test]
    fn never_clearing_stream_never_decides() {
        let mut test = SequentialTest::new(100.0).unwrap();
        for step in 1..=50u64 {
            let status = test.observe(step * 1000, 99.0);
            assert!(!status.is_decided());
        }
        assert_eq!(test.decision(), None);
        assert!(!test.is_decided());
    }

    #[test]
    fn nan_margins_never_decide() {
        let mut test = SequentialTest::new(1.0).unwrap();
        assert!(!test.observe(10, f64::NAN).is_decided());
        assert!(test.observe(20, 2.0).is_decided());
    }

    proptest! {
        /// The stop decision is monotone in the ciphertext count for a fixed
        /// stream: replaying any prefix of the observations, the set of
        /// prefix lengths at which the test reports "decided" is upward
        /// closed, and the decision point is exactly the first observation
        /// whose margin clears the threshold.
        #[test]
        fn stop_decision_is_monotone_in_ciphertext_count(
            margins in proptest::collection::vec(-50.0f64..50.0, 1..64),
            threshold in 0.5f64..40.0,
        ) {
            let first_crossing = margins.iter().position(|&m| m >= threshold);
            let mut test = SequentialTest::new(threshold).unwrap();
            let mut decided_at: Option<usize> = None;
            for (i, &m) in margins.iter().enumerate() {
                let units = (i as u64 + 1) * 100;
                let status = test.observe(units, m);
                if status.is_decided() && decided_at.is_none() {
                    decided_at = Some(i);
                }
                // Monotone: once decided, every later prefix stays decided.
                prop_assert_eq!(status.is_decided(), decided_at.is_some());
            }
            // The decision point is the first threshold crossing, or absent.
            prop_assert_eq!(decided_at, first_crossing);
            if let Some(i) = first_crossing {
                let (units, margin) = test.decision().unwrap();
                prop_assert_eq!(units, (i as u64 + 1) * 100);
                prop_assert_eq!(margin, margins[i]);
            } else {
                prop_assert_eq!(test.decision(), None);
            }
        }

        /// Replaying the same stream into a fresh test gives the identical
        /// decision — the statistic is a pure function of the stream.
        #[test]
        fn replay_gives_identical_decision(
            margins in proptest::collection::vec(-10.0f64..30.0, 1..32),
            threshold in 1.0f64..20.0,
        ) {
            let run = |ms: &[f64]| {
                let mut t = SequentialTest::new(threshold).unwrap();
                for (i, &m) in ms.iter().enumerate() {
                    t.observe(i as u64 + 1, m);
                }
                t.decision()
            };
            prop_assert_eq!(run(&margins), run(&margins));
        }
    }
}
