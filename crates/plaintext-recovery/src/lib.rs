//! Bayesian plaintext recovery from RC4 keystream biases — Section 4 of the paper.
//!
//! Given many encryptions of the *same* plaintext under independent RC4 keys,
//! the keystream biases leak the plaintext. This crate implements the full
//! recovery pipeline:
//!
//! * [`counts`] — collectors that reduce a stream of ciphertexts to the count
//!   vectors the likelihood formulas need (per-position byte counts, pair
//!   counts, and ABSAB ciphertext-differential counts).
//! * [`likelihood`] — the Bayesian likelihood estimators: single-byte
//!   (Eq. 11–12), double-byte (Eq. 13) and the optimized evaluation over a
//!   small set of dependent keystream values (Eq. 15–16), plus combination of
//!   multiple bias families by multiplying likelihoods (Eq. 25).
//! * [`absab`] — likelihoods derived from Mantin's ABSAB bias via ciphertext
//!   differentials against surrounding known plaintext (Eq. 17–24).
//! * [`candidates`] — Algorithm 1: a ranked list of plaintext candidates from
//!   single-byte likelihoods.
//! * [`viterbi`] — Algorithm 2: a ranked candidate list from double-byte
//!   likelihoods, i.e. an N-best (list) Viterbi decode of the implied hidden
//!   Markov model, with optional restriction to a plaintext alphabet.
//! * [`charset`] — plaintext alphabets (e.g. the ≤ 90 characters RFC 6265
//!   allows in a cookie value) used to prune the search.
//! * [`streaming`] — the sequential early-stopping rule for streaming
//!   ingestion: re-score online, stop once the top candidate's likelihood
//!   margin over the runner-up clears a confidence threshold.
//!
//! All likelihood math is done in log space for numerical stability, exactly
//! as the paper recommends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absab;
pub mod candidates;
pub mod charset;
pub mod counts;
pub mod likelihood;
pub mod streaming;
pub mod viterbi;

/// Errors returned by the recovery algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// An input had an unexpected shape (wrong number of cells, empty, ...).
    InvalidInput(String),
    /// The requested configuration is inconsistent (e.g. empty alphabet).
    InvalidConfig(String),
    /// A parallel recovery call was cancelled through its executor's
    /// cooperative cancellation flag before it completed.
    Cancelled,
}

impl core::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            RecoveryError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RecoveryError::Cancelled => write!(f, "recovery cancelled"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Executor outcomes fold back into the recovery error model so the
/// `_with_exec` function variants keep returning [`RecoveryError`].
impl From<rc4_exec::ExecError<RecoveryError>> for RecoveryError {
    fn from(e: rc4_exec::ExecError<RecoveryError>) -> Self {
        match e {
            rc4_exec::ExecError::Cancelled => RecoveryError::Cancelled,
            rc4_exec::ExecError::Task { error, .. } => error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(RecoveryError::InvalidInput("x".into())
            .to_string()
            .contains("x"));
        assert!(RecoveryError::InvalidConfig("y".into())
            .to_string()
            .contains("configuration"));
    }
}
