//! The generalized Fluhrer–McGrew (FM) digraph biases — Table 1 of the paper.
//!
//! Fluhrer and McGrew showed that certain consecutive keystream byte pairs
//! `(Z_r, Z_{r+1})` occur with probability deviating from `2^-16` by a factor
//! `(1 ± 2^-7)` or `(1 ± 2^-8)`, depending on the PRGA counter `i = r mod 256`.
//! The paper generalizes the table with extra conditions on the absolute
//! position `r` (rows that do not hold, or hold differently, at positions 1, 2
//! and 5) and shows the biases persist — with different strength — in the
//! initial keystream bytes (Fig. 4).

use crate::{Sign, UNIFORM_PAIR};

/// Identifier for each Fluhrer–McGrew digraph family, matching Table 1 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FmDigraph {
    /// `(0, 0)` at `i = 1`, strength `2^-7`.
    ZeroZeroAtOne,
    /// `(0, 0)` at `i != 1, 255`.
    ZeroZero,
    /// `(0, 1)` at `i != 0, 1`.
    ZeroOne,
    /// `(0, i + 1)` at `i != 0, 255` (negative).
    ZeroIPlusOne,
    /// `(i + 1, 255)` at `i != 254`, requires `r != 1`.
    IPlusOne255,
    /// `(129, 129)` at `i = 2`, requires `r != 2`.
    OneTwoNine,
    /// `(255, i + 1)` at `i != 1, 254`.
    TwoFiftyFiveIPlusOne,
    /// `(255, i + 2)` at `i ∈ [1, 252]`, requires `r != 2`.
    TwoFiftyFiveIPlusTwo,
    /// `(255, 0)` at `i = 254`.
    TwoFiftyFiveZero,
    /// `(255, 1)` at `i = 255`.
    TwoFiftyFiveOne,
    /// `(255, 2)` at `i = 0, 1`.
    TwoFiftyFiveTwo,
    /// `(255, 255)` at `i != 254`, requires `r != 5` (negative).
    TwoFiftyFive255,
}

/// A concrete biased digraph at a given position: the value pair, its sign and
/// its long-term probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmBias {
    /// Which Table 1 row produced this entry.
    pub digraph: FmDigraph,
    /// First byte value of the digraph.
    pub first: u8,
    /// Second byte value of the digraph.
    pub second: u8,
    /// Sign of the bias.
    pub sign: Sign,
    /// Long-term probability of the pair, e.g. `2^-16 (1 + 2^-8)`.
    pub probability: f64,
}

impl FmDigraph {
    /// All twelve Table 1 rows.
    pub const ALL: [FmDigraph; 12] = [
        FmDigraph::ZeroZeroAtOne,
        FmDigraph::ZeroZero,
        FmDigraph::ZeroOne,
        FmDigraph::ZeroIPlusOne,
        FmDigraph::IPlusOne255,
        FmDigraph::OneTwoNine,
        FmDigraph::TwoFiftyFiveIPlusOne,
        FmDigraph::TwoFiftyFiveIPlusTwo,
        FmDigraph::TwoFiftyFiveZero,
        FmDigraph::TwoFiftyFiveOne,
        FmDigraph::TwoFiftyFiveTwo,
        FmDigraph::TwoFiftyFive255,
    ];

    /// Relative strength of the bias (`2^-7` for the strongest row, `2^-8` otherwise).
    pub fn strength(self) -> f64 {
        match self {
            FmDigraph::ZeroZeroAtOne => 2f64.powi(-7),
            _ => 2f64.powi(-8),
        }
    }

    /// Sign of the bias.
    pub fn sign(self) -> Sign {
        match self {
            FmDigraph::ZeroIPlusOne | FmDigraph::TwoFiftyFive255 => Sign::Negative,
            _ => Sign::Positive,
        }
    }

    /// Returns the biased value pair at PRGA counter `i`, if this row applies at `i`.
    ///
    /// `i` is the PRGA counter when the first byte of the digraph is output,
    /// i.e. `i = r mod 256` for keystream position `r` (1-based).
    pub fn pair_at(self, i: u8) -> Option<(u8, u8)> {
        let ip1 = i.wrapping_add(1);
        let ip2 = i.wrapping_add(2);
        match self {
            FmDigraph::ZeroZeroAtOne => (i == 1).then_some((0, 0)),
            FmDigraph::ZeroZero => (i != 1 && i != 255).then_some((0, 0)),
            FmDigraph::ZeroOne => (i != 0 && i != 1).then_some((0, 1)),
            FmDigraph::ZeroIPlusOne => (i != 0 && i != 255).then_some((0, ip1)),
            FmDigraph::IPlusOne255 => (i != 254).then_some((ip1, 255)),
            FmDigraph::OneTwoNine => (i == 2).then_some((129, 129)),
            FmDigraph::TwoFiftyFiveIPlusOne => (i != 1 && i != 254).then_some((255, ip1)),
            FmDigraph::TwoFiftyFiveIPlusTwo => ((1..=252).contains(&i)).then_some((255, ip2)),
            FmDigraph::TwoFiftyFiveZero => (i == 254).then_some((255, 0)),
            FmDigraph::TwoFiftyFiveOne => (i == 255).then_some((255, 1)),
            FmDigraph::TwoFiftyFiveTwo => (i == 0 || i == 1).then_some((255, 2)),
            FmDigraph::TwoFiftyFive255 => (i != 254).then_some((255, 255)),
        }
    }

    /// Whether the generalized (short-term) table excludes this row at absolute position `r`.
    ///
    /// The paper's Table 1 adds conditions `r != 1`, `r != 2` and `r != 5` to
    /// three rows; everywhere else the long-term row also applies to the
    /// initial keystream bytes (with different strength, see Fig. 4).
    pub fn excluded_at_position(self, r: u64) -> bool {
        match self {
            FmDigraph::IPlusOne255 => r == 1,
            FmDigraph::OneTwoNine | FmDigraph::TwoFiftyFiveIPlusTwo => r == 2,
            FmDigraph::TwoFiftyFive255 => r == 5,
            _ => false,
        }
    }

    /// Long-term probability of the digraph pair where the row applies.
    pub fn probability(self) -> f64 {
        UNIFORM_PAIR * (1.0 + self.sign().apply(self.strength()))
    }
}

/// Returns every Fluhrer–McGrew bias active for the digraph starting at
/// keystream position `r` (1-based).
///
/// The PRGA counter is `i = r mod 256`; rows excluded at this absolute
/// position by the generalized table are dropped.
///
/// # Examples
///
/// ```
/// use rc4_biases::fm::{fm_biases_at, FmDigraph};
///
/// // At i = 1 the strongest row (0,0) applies.
/// let biases = fm_biases_at(1);
/// assert!(biases.iter().any(|b| b.digraph == FmDigraph::ZeroZeroAtOne));
///
/// // At position 2 (i = 2) the (129,129) row is excluded by the r != 2 condition.
/// let biases = fm_biases_at(2);
/// assert!(!biases.iter().any(|b| b.digraph == FmDigraph::OneTwoNine));
/// ```
pub fn fm_biases_at(r: u64) -> Vec<FmBias> {
    let i = (r % 256) as u8;
    let mut out = Vec::new();
    for d in FmDigraph::ALL {
        if d.excluded_at_position(r) {
            continue;
        }
        if let Some((first, second)) = d.pair_at(i) {
            out.push(FmBias {
                digraph: d,
                first,
                second,
                sign: d.sign(),
                probability: d.probability(),
            });
        }
    }
    out
}

/// Builds the full 65536-entry long-term joint distribution of
/// `(Z_r, Z_{r+1})` implied by the Fluhrer–McGrew biases at position `r`.
///
/// All pairs not named by Table 1 share the remaining probability mass
/// uniformly, so the vector sums to one and can be fed directly to the
/// double-byte likelihood estimator or used to sample synthetic ciphertext
/// statistics.
pub fn fm_joint_distribution(r: u64) -> Vec<f64> {
    let biases = fm_biases_at(r);
    let mut dist = vec![UNIFORM_PAIR; 65536];
    let mut excess = 0.0;
    for b in &biases {
        let idx = b.first as usize * 256 + b.second as usize;
        excess += b.probability - dist[idx];
        dist[idx] = b.probability;
    }
    // Spread the compensating mass over the unbiased cells so the distribution
    // stays normalized.
    let unbiased_cells = 65536 - biases.len();
    let correction = excess / unbiased_cells as f64;
    let biased_idx: std::collections::HashSet<usize> = biases
        .iter()
        .map(|b| b.first as usize * 256 + b.second as usize)
        .collect();
    for (idx, p) in dist.iter_mut().enumerate() {
        if !biased_idx.contains(&idx) {
            *p -= correction;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_defined() {
        assert_eq!(FmDigraph::ALL.len(), 12);
    }

    #[test]
    fn strongest_row_is_zero_zero_at_one() {
        assert_eq!(FmDigraph::ZeroZeroAtOne.strength(), 2f64.powi(-7));
        assert_eq!(FmDigraph::ZeroZero.strength(), 2f64.powi(-8));
    }

    #[test]
    fn negative_rows() {
        assert_eq!(FmDigraph::ZeroIPlusOne.sign(), Sign::Negative);
        assert_eq!(FmDigraph::TwoFiftyFive255.sign(), Sign::Negative);
        assert_eq!(FmDigraph::ZeroZero.sign(), Sign::Positive);
    }

    #[test]
    fn pair_conditions_on_i() {
        // (0,0) at i=1 comes from the strong row, not the generic one.
        assert_eq!(FmDigraph::ZeroZeroAtOne.pair_at(1), Some((0, 0)));
        assert_eq!(FmDigraph::ZeroZero.pair_at(1), None);
        assert_eq!(FmDigraph::ZeroZero.pair_at(255), None);
        assert_eq!(FmDigraph::ZeroZero.pair_at(7), Some((0, 0)));
        // (255, i+1) excluded at i = 1 and 254.
        assert_eq!(FmDigraph::TwoFiftyFiveIPlusOne.pair_at(1), None);
        assert_eq!(FmDigraph::TwoFiftyFiveIPlusOne.pair_at(254), None);
        assert_eq!(FmDigraph::TwoFiftyFiveIPlusOne.pair_at(10), Some((255, 11)));
        // (255, i+2) only for i in [1, 252].
        assert_eq!(FmDigraph::TwoFiftyFiveIPlusTwo.pair_at(0), None);
        assert_eq!(FmDigraph::TwoFiftyFiveIPlusTwo.pair_at(253), None);
        assert_eq!(
            FmDigraph::TwoFiftyFiveIPlusTwo.pair_at(100),
            Some((255, 102))
        );
        // Edge rows.
        assert_eq!(FmDigraph::TwoFiftyFiveZero.pair_at(254), Some((255, 0)));
        assert_eq!(FmDigraph::TwoFiftyFiveOne.pair_at(255), Some((255, 1)));
        assert_eq!(FmDigraph::TwoFiftyFiveTwo.pair_at(0), Some((255, 2)));
        assert_eq!(FmDigraph::TwoFiftyFiveTwo.pair_at(1), Some((255, 2)));
        assert_eq!(FmDigraph::TwoFiftyFiveTwo.pair_at(2), None);
    }

    #[test]
    fn position_exclusions() {
        assert!(FmDigraph::IPlusOne255.excluded_at_position(1));
        assert!(!FmDigraph::IPlusOne255.excluded_at_position(257));
        assert!(FmDigraph::OneTwoNine.excluded_at_position(2));
        assert!(FmDigraph::TwoFiftyFive255.excluded_at_position(5));
        assert!(!FmDigraph::ZeroZero.excluded_at_position(1));
    }

    #[test]
    fn biases_at_positions_have_expected_counts() {
        // The paper notes at most 8 of the 65536 pairs are biased at any position.
        for r in 1..=1024u64 {
            let biases = fm_biases_at(r);
            assert!(
                biases.len() <= 8,
                "position {r} has {} biases",
                biases.len()
            );
            assert!(!biases.is_empty(), "position {r} has no biases");
            // No duplicate value pairs.
            let mut pairs: Vec<(u8, u8)> = biases.iter().map(|b| (b.first, b.second)).collect();
            pairs.sort_unstable();
            pairs.dedup();
            assert_eq!(pairs.len(), biases.len(), "duplicate pair at position {r}");
        }
    }

    #[test]
    fn probabilities_match_table() {
        let strong = FmDigraph::ZeroZeroAtOne.probability();
        assert!((strong - UNIFORM_PAIR * (1.0 + 1.0 / 128.0)).abs() < 1e-20);
        let neg = FmDigraph::TwoFiftyFive255.probability();
        assert!((neg - UNIFORM_PAIR * (1.0 - 1.0 / 256.0)).abs() < 1e-20);
    }

    #[test]
    fn joint_distribution_is_normalized_and_biased() {
        for r in [1u64, 2, 5, 17, 255, 256, 257, 300] {
            let dist = fm_joint_distribution(r);
            let sum: f64 = dist.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "position {r} sum {sum}");
            for b in fm_biases_at(r) {
                let idx = b.first as usize * 256 + b.second as usize;
                assert!((dist[idx] - b.probability).abs() < 1e-18);
            }
        }
    }

    #[test]
    fn long_term_positions_follow_counter_only() {
        // Far from the start, biases depend only on i = r mod 256.
        let a = fm_biases_at(10_000 * 256 + 77);
        let b = fm_biases_at(20_000 * 256 + 77);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digraph, y.digraph);
            assert_eq!((x.first, x.second), (y.first, y.second));
        }
    }
}
