//! Influence of the first two keystream bytes on later bytes (Fig. 5).
//!
//! One of the paper's most striking findings is how much information `Z_1`
//! and `Z_2` leak about *every* one of the first 256 keystream bytes. Six
//! families of conditional biases are reported, together with four dependency
//! pairs between `Z_1` and `Z_2` themselves. This module encodes those
//! families so the experiment harness can measure their relative bias per
//! position and compare the sign/shape against Fig. 5.

use crate::Sign;

/// The six bias families of Section 3.3.2 (Fig. 5).
///
/// For a given later position `i` (the paper uses `i` for the position of the
/// other keystream byte, `3 <= i <= 256`), each family names a joint event on
/// `(Z_1 or Z_2, Z_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Z1Z2Family {
    /// Family 1: `Z_1 = 257 - i ∧ Z_i = 0` (generally positive).
    Z1Is257MinusIAndZiZero,
    /// Family 2: `Z_1 = 257 - i ∧ Z_i = i` (generally positive).
    Z1Is257MinusIAndZiI,
    /// Family 3: `Z_1 = 257 - i ∧ Z_i = 257 - i` (negative).
    Z1Is257MinusIAndZi257MinusI,
    /// Family 4: `Z_1 = i - 1 ∧ Z_i = 1` (generally positive).
    Z1IsIMinus1AndZiOne,
    /// Family 5: `Z_2 = 0 ∧ Z_i = 0` (generally negative).
    Z2ZeroAndZiZero,
    /// Family 6: `Z_2 = 0 ∧ Z_i = i` (generally negative).
    Z2ZeroAndZiI,
}

impl Z1Z2Family {
    /// All six families, in the paper's numbering order.
    pub const ALL: [Z1Z2Family; 6] = [
        Z1Z2Family::Z1Is257MinusIAndZiZero,
        Z1Z2Family::Z1Is257MinusIAndZiI,
        Z1Z2Family::Z1Is257MinusIAndZi257MinusI,
        Z1Z2Family::Z1IsIMinus1AndZiOne,
        Z1Z2Family::Z2ZeroAndZiZero,
        Z1Z2Family::Z2ZeroAndZiI,
    ];

    /// The paper's family number (1–6).
    pub fn number(self) -> u8 {
        match self {
            Z1Z2Family::Z1Is257MinusIAndZiZero => 1,
            Z1Z2Family::Z1Is257MinusIAndZiI => 2,
            Z1Z2Family::Z1Is257MinusIAndZi257MinusI => 3,
            Z1Z2Family::Z1IsIMinus1AndZiOne => 4,
            Z1Z2Family::Z2ZeroAndZiZero => 5,
            Z1Z2Family::Z2ZeroAndZiI => 6,
        }
    }

    /// Whether the family conditions on `Z_1` (`true`) or `Z_2` (`false`).
    pub fn conditions_on_z1(self) -> bool {
        !matches!(self, Z1Z2Family::Z2ZeroAndZiZero | Z1Z2Family::Z2ZeroAndZiI)
    }

    /// The typical sign of the relative bias reported in the paper.
    ///
    /// Families involving `Z_1` are generally positive except family 3;
    /// families involving `Z_2` are generally negative.
    pub fn typical_sign(self) -> Sign {
        match self {
            Z1Z2Family::Z1Is257MinusIAndZi257MinusI
            | Z1Z2Family::Z2ZeroAndZiZero
            | Z1Z2Family::Z2ZeroAndZiI => Sign::Negative,
            _ => Sign::Positive,
        }
    }

    /// The event `(value of the early byte, value of Z_i)` for a given later position `i`.
    ///
    /// Returns `None` for positions where the event is degenerate (e.g. `i < 3`,
    /// where the "early" and "late" byte would coincide or the value wraps onto
    /// a trivial case).
    pub fn event(self, i: u16) -> Option<Z1Z2Event> {
        if !(3..=256).contains(&i) {
            return None;
        }
        let late = ((i as u64) & 0xff) as u8; // value "i" reduced mod 256 (position 256 -> 0)
        let v257_minus_i = ((257 - i as i32) & 0xff) as u8;
        let v_i_minus_1 = ((i as i32 - 1) & 0xff) as u8;
        let (early_pos, early_val, late_val) = match self {
            Z1Z2Family::Z1Is257MinusIAndZiZero => (1, v257_minus_i, 0),
            Z1Z2Family::Z1Is257MinusIAndZiI => (1, v257_minus_i, late),
            Z1Z2Family::Z1Is257MinusIAndZi257MinusI => (1, v257_minus_i, v257_minus_i),
            Z1Z2Family::Z1IsIMinus1AndZiOne => (1, v_i_minus_1, 1),
            Z1Z2Family::Z2ZeroAndZiZero => (2, 0, 0),
            Z1Z2Family::Z2ZeroAndZiI => (2, 0, late),
        };
        Some(Z1Z2Event {
            family: self,
            early_pos,
            early_val,
            late_pos: i as u64,
            late_val,
        })
    }
}

/// A concrete joint event `(Z_{early_pos} = early_val ∧ Z_{late_pos} = late_val)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Z1Z2Event {
    /// The family this event belongs to.
    pub family: Z1Z2Family,
    /// 1 or 2: which early byte is conditioned on.
    pub early_pos: u64,
    /// Required value of the early byte.
    pub early_val: u8,
    /// Position of the later byte (3..=256).
    pub late_pos: u64,
    /// Required value of the later byte.
    pub late_val: u8,
}

/// The four dependency pairs between `Z_1` and `Z_2` themselves (Sect. 3.3.2):
///
/// * A: `Z_1 = 0 ∧ Z_2 = x` (negative for `x != 0`)
/// * B: `Z_1 = x ∧ Z_2 = 258 - x` (positive)
/// * C: `Z_1 = x ∧ Z_2 = 0` (negative for `x != 0`)
/// * D: `Z_1 = x ∧ Z_2 = 1` (positive)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Z1Z2PairFamily {
    /// `Z_1 = 0 ∧ Z_2 = x`, negative for `x != 0`.
    A,
    /// `Z_1 = x ∧ Z_2 = 258 - x`, positive.
    B,
    /// `Z_1 = x ∧ Z_2 = 0`, negative for `x != 0`.
    C,
    /// `Z_1 = x ∧ Z_2 = 1`, positive.
    D,
}

impl Z1Z2PairFamily {
    /// All four families.
    pub const ALL: [Z1Z2PairFamily; 4] = [
        Z1Z2PairFamily::A,
        Z1Z2PairFamily::B,
        Z1Z2PairFamily::C,
        Z1Z2PairFamily::D,
    ];

    /// The `(Z_1, Z_2)` value pair for parameter `x`.
    pub fn pair(self, x: u8) -> (u8, u8) {
        match self {
            Z1Z2PairFamily::A => (0, x),
            Z1Z2PairFamily::B => (x, (258u16.wrapping_sub(x as u16) & 0xff) as u8),
            Z1Z2PairFamily::C => (x, 0),
            Z1Z2PairFamily::D => (x, 1),
        }
    }

    /// Typical sign of the bias for `x != 0`.
    pub fn typical_sign(self) -> Sign {
        match self {
            Z1Z2PairFamily::A | Z1Z2PairFamily::C => Sign::Negative,
            Z1Z2PairFamily::B | Z1Z2PairFamily::D => Sign::Positive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_numbering_and_conditioning() {
        assert_eq!(Z1Z2Family::ALL.len(), 6);
        for (idx, f) in Z1Z2Family::ALL.iter().enumerate() {
            assert_eq!(f.number() as usize, idx + 1);
        }
        assert!(Z1Z2Family::Z1Is257MinusIAndZiZero.conditions_on_z1());
        assert!(!Z1Z2Family::Z2ZeroAndZiZero.conditions_on_z1());
    }

    #[test]
    fn typical_signs_match_paper() {
        use Z1Z2Family::*;
        assert_eq!(Z1Is257MinusIAndZiZero.typical_sign(), Sign::Positive);
        assert_eq!(Z1Is257MinusIAndZi257MinusI.typical_sign(), Sign::Negative);
        assert_eq!(Z2ZeroAndZiZero.typical_sign(), Sign::Negative);
        assert_eq!(Z2ZeroAndZiI.typical_sign(), Sign::Negative);
    }

    #[test]
    fn events_for_specific_positions() {
        // i = 5: 257 - i = 252.
        let e = Z1Z2Family::Z1Is257MinusIAndZiZero.event(5).unwrap();
        assert_eq!(e.early_pos, 1);
        assert_eq!(e.early_val, 252);
        assert_eq!(e.late_pos, 5);
        assert_eq!(e.late_val, 0);

        let e = Z1Z2Family::Z1IsIMinus1AndZiOne.event(5).unwrap();
        assert_eq!(e.early_val, 4);
        assert_eq!(e.late_val, 1);

        let e = Z1Z2Family::Z2ZeroAndZiI.event(200).unwrap();
        assert_eq!(e.early_pos, 2);
        assert_eq!(e.early_val, 0);
        assert_eq!(e.late_val, 200);

        // Position 256: value "i" wraps to 0, 257 - i = 1.
        let e = Z1Z2Family::Z1Is257MinusIAndZiI.event(256).unwrap();
        assert_eq!(e.early_val, 1);
        assert_eq!(e.late_val, 0);
    }

    #[test]
    fn out_of_range_positions_rejected() {
        assert!(Z1Z2Family::Z2ZeroAndZiZero.event(2).is_none());
        assert!(Z1Z2Family::Z2ZeroAndZiZero.event(257).is_none());
        assert!(Z1Z2Family::Z2ZeroAndZiZero.event(3).is_some());
    }

    #[test]
    fn pair_families() {
        assert_eq!(Z1Z2PairFamily::A.pair(7), (0, 7));
        assert_eq!(Z1Z2PairFamily::B.pair(10), (10, 248));
        assert_eq!(Z1Z2PairFamily::B.pair(2), (2, 0));
        assert_eq!(Z1Z2PairFamily::C.pair(99), (99, 0));
        assert_eq!(Z1Z2PairFamily::D.pair(5), (5, 1));
        assert_eq!(Z1Z2PairFamily::A.typical_sign(), Sign::Negative);
        assert_eq!(Z1Z2PairFamily::D.typical_sign(), Sign::Positive);
    }
}
