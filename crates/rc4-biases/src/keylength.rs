//! Key-length–dependent biases (16-byte keys).
//!
//! Several of the strongest structural biases depend on the RC4 key length
//! `ℓ`. For the 16-byte keys used by TLS and TKIP the paper highlights:
//!
//! * Sen Gupta et al.: `Z_ℓ` is biased towards `256 - ℓ` — for `ℓ = 16`,
//!   `Z_16` towards 240.
//! * The paper's Table 2 upper half: `Z_{16w - 1} = Z_{16w} = 256 - 16w` for
//!   `1 <= w <= 7` (a *negative* pair bias relative to the single-byte model).
//! * The paper's Fig. 6 observation: `Z_{256 + 16k}` is biased towards `32k`
//!   for `1 <= k <= 7` (single-byte biases beyond position 256).

use crate::UNIFORM_SINGLE;

/// The key length all paper datasets use (128-bit keys).
pub const PAPER_KEY_LEN: usize = 16;

/// A single-byte key-length bias: position and favoured value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyLengthBias {
    /// Keystream position (1-based).
    pub position: u64,
    /// The value the byte is biased towards.
    pub value: u8,
}

/// Sen Gupta's key-length bias `Z_ℓ → 256 - ℓ` for key length `len`.
///
/// Returns `None` for key lengths where `256 - len` does not fit a byte
/// (only `len = 0` would overflow; all legal RC4 key lengths work).
pub fn sen_gupta_bias(len: usize) -> Option<KeyLengthBias> {
    if len == 0 || len > 255 {
        return None;
    }
    Some(KeyLengthBias {
        position: len as u64,
        value: (256 - len) as u8,
    })
}

/// The beyond-256 single-byte biases of Fig. 6: `Z_{256 + 16k} → 32k` for `1 <= k <= 7`.
pub fn beyond_256_biases() -> Vec<KeyLengthBias> {
    (1u64..=7)
        .map(|k| KeyLengthBias {
            position: 256 + 16 * k,
            value: (32 * k) as u8,
        })
        .collect()
}

/// The positions of the paper's `Z_{16w-1} = Z_{16w} = 256 - 16w` pair biases.
pub fn multiple_of_16_pairs() -> Vec<(u64, u64, u8)> {
    (1u64..=7)
        .map(|w| (16 * w - 1, 16 * w, (256 - 16 * w as i64) as u8))
        .collect()
}

/// Measures the empirical probability `Pr[Z_pos = value]` over `keys` random
/// 16-byte keys (deterministic in `seed`), for verifying key-length biases.
pub fn measure_single(position: u64, value: u8, keys: u64, seed: u64) -> f64 {
    let mut hits = 0u64;
    for k in 0..keys {
        let mut key = [0u8; PAPER_KEY_LEN];
        let mut x = seed ^ k.wrapping_mul(0xD6E8_FEB8_6659_FD93).wrapping_add(3);
        for chunk in key.chunks_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let ks = rc4::keystream(&key, position as usize).expect("valid key");
        if ks[position as usize - 1] == value {
            hits += 1;
        }
    }
    hits as f64 / keys as f64
}

/// Expected order of magnitude of the `Z_16 → 240` bias for 16-byte keys.
///
/// The literature reports a relative bias of roughly `2^-4.8` at `Z_16`; this
/// constant is only used by tests/benches as a sanity band, not by the attacks.
pub fn z16_expected_probability() -> f64 {
    UNIFORM_SINGLE * (1.0 + 2f64.powf(-4.8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sen_gupta_for_common_lengths() {
        assert_eq!(
            sen_gupta_bias(16),
            Some(KeyLengthBias {
                position: 16,
                value: 240
            })
        );
        assert_eq!(
            sen_gupta_bias(5),
            Some(KeyLengthBias {
                position: 5,
                value: 251
            })
        );
        assert!(sen_gupta_bias(0).is_none());
        assert!(sen_gupta_bias(256).is_none());
    }

    #[test]
    fn beyond_256_structure() {
        let biases = beyond_256_biases();
        assert_eq!(biases.len(), 7);
        assert_eq!(biases[0].position, 272);
        assert_eq!(biases[0].value, 32);
        assert_eq!(biases[6].position, 368);
        assert_eq!(biases[6].value, 224);
    }

    #[test]
    fn pair_positions_structure() {
        let pairs = multiple_of_16_pairs();
        assert_eq!(pairs.len(), 7);
        assert_eq!(pairs[0], (15, 16, 240));
        assert_eq!(pairs[6], (111, 112, 144));
    }

    #[test]
    fn z16_measurement_is_sane() {
        // The Z_16 -> 240 relative bias is ~2^-4.8 (3.6%); detecting it reliably
        // needs millions of keys, which the release-mode repro harness does
        // (Fig. 6 / Table 2). The unit test only checks the estimator returns a
        // probability in a plausible band around uniform.
        let p = measure_single(16, 240, 10_000, 0x16);
        assert!(
            p > UNIFORM_SINGLE * 0.6 && p < UNIFORM_SINGLE * 1.6,
            "Pr[Z16=240] = {p} outside sanity band"
        );
    }

    #[test]
    fn measure_is_deterministic() {
        assert_eq!(
            measure_single(2, 0, 2_000, 9),
            measure_single(2, 0, 2_000, 9)
        );
    }
}
