//! Builders turning bias descriptions into concrete probability vectors.
//!
//! The likelihood estimators in `plaintext-recovery` and the sampled-mode
//! experiment drivers in `rc4-attacks` both consume plain probability vectors:
//! 256 entries for a single keystream byte, 65536 entries for a byte pair.
//! This module centralizes the conversions from the analytic bias catalogue
//! (and from empirical counts) into such vectors, always keeping them
//! normalized.

use crate::{fm, UNIFORM_PAIR, UNIFORM_SINGLE};

/// A normalized single-byte keystream distribution (256 entries).
#[derive(Debug, Clone, PartialEq)]
pub struct SingleDistribution {
    probs: Vec<f64>,
}

impl SingleDistribution {
    /// The uniform single-byte distribution.
    pub fn uniform() -> Self {
        Self {
            probs: vec![UNIFORM_SINGLE; 256],
        }
    }

    /// Builds a distribution from raw counts, normalizing them.
    ///
    /// Cells with zero total fall back to uniform.
    pub fn from_counts(counts: &[u64]) -> Self {
        assert_eq!(
            counts.len(),
            256,
            "single-byte distribution needs 256 cells"
        );
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Self::uniform();
        }
        Self {
            probs: counts.iter().map(|&c| c as f64 / total as f64).collect(),
        }
    }

    /// Builds a distribution from explicit probabilities, renormalizing.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not have 256 entries or sums to zero.
    pub fn from_probabilities(probs: &[f64]) -> Self {
        assert_eq!(probs.len(), 256, "single-byte distribution needs 256 cells");
        let sum: f64 = probs.iter().sum();
        assert!(sum > 0.0, "probabilities must not all be zero");
        Self {
            probs: probs.iter().map(|&p| p / sum).collect(),
        }
    }

    /// A uniform distribution with one value's probability scaled by `1 + relative`.
    ///
    /// Handy for constructing single-bias models like Mantin–Shamir
    /// (`biased_value = 0`, `relative = 1.0` at position 2).
    pub fn with_relative_bias(biased_value: u8, relative: f64) -> Self {
        let mut probs = vec![UNIFORM_SINGLE; 256];
        probs[biased_value as usize] *= 1.0 + relative;
        Self::from_probabilities(&probs)
    }

    /// Probability of `value`.
    pub fn prob(&self, value: u8) -> f64 {
        self.probs[value as usize]
    }

    /// The full probability vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Natural logarithms of the probabilities (used by the likelihood engines).
    pub fn log_probs(&self) -> Vec<f64> {
        self.probs
            .iter()
            .map(|&p| p.max(f64::MIN_POSITIVE).ln())
            .collect()
    }
}

/// A normalized double-byte keystream distribution (65536 entries).
#[derive(Debug, Clone, PartialEq)]
pub struct PairDistribution {
    probs: Vec<f64>,
}

impl PairDistribution {
    /// The uniform pair distribution.
    pub fn uniform() -> Self {
        Self {
            probs: vec![UNIFORM_PAIR; 65536],
        }
    }

    /// The long-term Fluhrer–McGrew distribution for the digraph starting at position `r`.
    pub fn fluhrer_mcgrew(r: u64) -> Self {
        Self {
            probs: fm::fm_joint_distribution(r),
        }
    }

    /// Builds a distribution from raw counts, normalizing them.
    ///
    /// Falls back to uniform when the counts are all zero.
    pub fn from_counts(counts: &[u64]) -> Self {
        assert_eq!(counts.len(), 65536, "pair distribution needs 65536 cells");
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Self::uniform();
        }
        Self {
            probs: counts.iter().map(|&c| c as f64 / total as f64).collect(),
        }
    }

    /// Builds a distribution from explicit probabilities, renormalizing.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not have 65536 entries or sums to zero.
    pub fn from_probabilities(probs: &[f64]) -> Self {
        assert_eq!(probs.len(), 65536, "pair distribution needs 65536 cells");
        let sum: f64 = probs.iter().sum();
        assert!(sum > 0.0, "probabilities must not all be zero");
        Self {
            probs: probs.iter().map(|&p| p / sum).collect(),
        }
    }

    /// Probability of the pair `(x, y)`.
    pub fn prob(&self, x: u8, y: u8) -> f64 {
        self.probs[x as usize * 256 + y as usize]
    }

    /// The full probability vector (row-major in the first byte).
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// The cells whose probability deviates from `baseline` by more than `tolerance`,
    /// as `(x, y, probability)` triples.
    ///
    /// This is the paper's "set `I^c` of dependent keystream values" used in the
    /// optimized likelihood computation (Eq. 15): everything outside the
    /// returned set is treated as uniform/independent.
    pub fn biased_cells(&self, baseline: f64, tolerance: f64) -> Vec<(u8, u8, f64)> {
        let mut out = Vec::new();
        for (idx, &p) in self.probs.iter().enumerate() {
            if (p - baseline).abs() > tolerance {
                out.push(((idx / 256) as u8, (idx % 256) as u8, p));
            }
        }
        out
    }

    /// Marginal distribution of the first byte.
    pub fn marginal_first(&self) -> SingleDistribution {
        let mut m = vec![0.0f64; 256];
        for (x, slot) in m.iter_mut().enumerate() {
            let mut s = 0.0;
            for y in 0..256 {
                s += self.probs[x * 256 + y];
            }
            *slot = s;
        }
        SingleDistribution::from_probabilities(&m)
    }

    /// Marginal distribution of the second byte.
    pub fn marginal_second(&self) -> SingleDistribution {
        let mut m = vec![0.0f64; 256];
        for (y, slot) in m.iter_mut().enumerate() {
            let mut s = 0.0;
            for x in 0..256 {
                s += self.probs[x * 256 + y];
            }
            *slot = s;
        }
        SingleDistribution::from_probabilities(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_single_is_normalized() {
        let d = SingleDistribution::uniform();
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((d.prob(7) - UNIFORM_SINGLE).abs() < 1e-18);
    }

    #[test]
    fn single_from_counts() {
        let mut counts = vec![1u64; 256];
        counts[0] = 3;
        let d = SingleDistribution::from_counts(&counts);
        assert!(d.prob(0) > d.prob(1));
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // All-zero counts fall back to uniform.
        let z = SingleDistribution::from_counts(&vec![0u64; 256]);
        assert_eq!(z, SingleDistribution::uniform());
    }

    #[test]
    fn single_with_relative_bias() {
        let d = SingleDistribution::with_relative_bias(0, 1.0);
        // Pr[0] should be about twice Pr[1] after renormalization.
        assert!((d.prob(0) / d.prob(1) - 2.0).abs() < 1e-9);
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_probs_are_finite() {
        let d = SingleDistribution::with_relative_bias(3, 0.5);
        assert!(d.log_probs().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn pair_uniform_and_fm() {
        let u = PairDistribution::uniform();
        assert!((u.prob(1, 2) - UNIFORM_PAIR).abs() < 1e-20);

        let fm_dist = PairDistribution::fluhrer_mcgrew(257); // i = 1, strong (0,0) row
        assert!(fm_dist.prob(0, 0) > UNIFORM_PAIR);
        let sum: f64 = fm_dist.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn biased_cells_extraction() {
        let fm_dist = PairDistribution::fluhrer_mcgrew(10);
        let cells = fm_dist.biased_cells(UNIFORM_PAIR, UNIFORM_PAIR * 2f64.powi(-10));
        // At most 8 biased digraphs at any position.
        assert!(
            !cells.is_empty() && cells.len() <= 8,
            "{} cells",
            cells.len()
        );
        // The (0,0) cell is among them at i = 10.
        assert!(cells.iter().any(|&(x, y, _)| x == 0 && y == 0));
    }

    #[test]
    fn pair_from_counts_and_marginals() {
        let mut counts = vec![1u64; 65536];
        counts[5 * 256 + 7] = 100;
        let d = PairDistribution::from_counts(&counts);
        assert!(d.prob(5, 7) > d.prob(5, 8));
        let m1 = d.marginal_first();
        let m2 = d.marginal_second();
        assert!(m1.prob(5) > m1.prob(6));
        assert!(m2.prob(7) > m2.prob(8));
    }

    #[test]
    #[should_panic(expected = "65536")]
    fn pair_from_counts_wrong_shape_panics() {
        let _ = PairDistribution::from_counts(&[1, 2, 3]);
    }
}
