//! Short-term biases in the initial RC4 keystream bytes.
//!
//! This module catalogues the known single-byte and double-byte biases that
//! only occur in the initial keystream bytes, plus the new ones reported in
//! Section 3.3 of the paper (Table 2 and Equations 3–5). The constants give
//! the paper's measured probabilities so the reproduction can compare its own
//! measurements against them (see `EXPERIMENTS.md`).

use crate::{Sign, UNIFORM_SINGLE};

/// The Mantin–Shamir bias: `Pr[Z_2 = 0] ≈ 2 · 2^-8`.
pub const MANTIN_SHAMIR_Z2_ZERO: f64 = 2.0 * UNIFORM_SINGLE;

/// Paul–Preneel: `Pr[Z_1 = Z_2] = 2^-8 (1 - 2^-8)`.
pub const PAUL_PRENEEL_Z1_EQ_Z2: f64 = UNIFORM_SINGLE * (1.0 - UNIFORM_SINGLE);

/// Isobe et al.: `Pr[Z_1 = Z_2 = 0] ≈ 3 · 2^-16`.
pub const ISOBE_Z1_Z2_ZERO: f64 = 3.0 / 65536.0;

/// A double-byte bias between two (possibly non-consecutive) initial positions,
/// as reported in Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionPairBias {
    /// Position of the first byte (1-based).
    pub pos_a: u64,
    /// Required value of the first byte.
    pub val_a: u8,
    /// Position of the second byte (1-based).
    pub pos_b: u64,
    /// Required value of the second byte.
    pub val_b: u8,
    /// The paper's measured probability of the joint event.
    pub paper_probability: f64,
    /// Sign of the bias relative to the single-byte expectation.
    pub sign: Sign,
}

/// Builds `2^x (1 ± 2^y)`-style probabilities as printed in Table 2.
fn p(base_exp: f64, sign: Sign, rel_exp: f64) -> f64 {
    2f64.powf(base_exp) * (1.0 + sign.apply(2f64.powf(-rel_exp)))
}

/// Table 2, upper half: the key-length–dependent consecutive biases
/// `Z_{16w-1} = Z_{16w} = 256 - 16w` for `1 <= w <= 7`.
pub fn table2_consecutive() -> Vec<PositionPairBias> {
    let rows: [(u64, f64, f64); 7] = [
        (16, -15.947_86, 4.894),
        (32, -15.964_86, 5.427),
        (48, -15.975_95, 5.963),
        (64, -15.983_63, 6.469),
        (80, -15.990_20, 7.150),
        (96, -15.994_05, 7.740),
        (112, -15.996_68, 8.331),
    ];
    rows.iter()
        .map(|&(pos, base, rel)| {
            let value = (256 - pos as i64) as u8;
            PositionPairBias {
                pos_a: pos - 1,
                val_a: value,
                pos_b: pos,
                val_b: value,
                paper_probability: p(base, Sign::Negative, rel),
                sign: Sign::Negative,
            }
        })
        .collect()
}

/// Table 2, lower half: new biases between non-consecutive initial bytes.
pub fn table2_nonconsecutive() -> Vec<PositionPairBias> {
    use Sign::{Negative, Positive};
    let rows: [(u64, u8, u64, u8, f64, Sign, f64); 16] = [
        (3, 4, 5, 4, -16.002_43, Positive, 7.912),
        (3, 131, 131, 3, -15.995_43, Positive, 8.700),
        (3, 131, 131, 131, -15.993_47, Negative, 9.511),
        (4, 5, 6, 255, -15.999_18, Positive, 8.208),
        (14, 0, 16, 14, -15.993_49, Positive, 9.941),
        (15, 47, 17, 16, -16.001_91, Positive, 11.279),
        (15, 112, 32, 224, -15.966_37, Negative, 10.904),
        (15, 159, 32, 224, -15.965_74, Positive, 9.493),
        (16, 240, 31, 63, -15.950_21, Positive, 8.996),
        (16, 240, 32, 16, -15.949_76, Positive, 9.261),
        (16, 240, 33, 16, -15.949_60, Positive, 10.516),
        (16, 240, 40, 32, -15.949_76, Positive, 10.933),
        (16, 240, 48, 16, -15.949_89, Positive, 10.832),
        (16, 240, 48, 208, -15.926_19, Negative, 10.965),
        (16, 240, 64, 192, -15.933_57, Negative, 11.229),
        (1, 0, 2, 0, -16.0, Positive, 0.415), // Isobe Z1 = Z2 = 0 (≈ 3 * 2^-16) for completeness
    ];
    rows.iter()
        .map(
            |&(pos_a, val_a, pos_b, val_b, base, sign, rel)| PositionPairBias {
                pos_a,
                val_a,
                pos_b,
                val_b,
                paper_probability: p(base, sign, rel),
                sign,
            },
        )
        .collect()
}

/// Equations 3–5: equality biases among the first four keystream bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EqualityBias {
    /// First position of the equality (1-based).
    pub pos_a: u64,
    /// Second position of the equality (1-based).
    pub pos_b: u64,
    /// The paper's probability `Pr[Z_a = Z_b]`.
    pub paper_probability: f64,
    /// Sign relative to `2^-8`.
    pub sign: Sign,
}

/// The three new equality biases of Equations 3–5:
/// `Z_1 = Z_3` (negative), `Z_1 = Z_4` (positive), `Z_2 = Z_4` (negative).
pub fn equality_biases() -> [EqualityBias; 3] {
    [
        EqualityBias {
            pos_a: 1,
            pos_b: 3,
            paper_probability: UNIFORM_SINGLE * (1.0 - 2f64.powf(-9.617)),
            sign: Sign::Negative,
        },
        EqualityBias {
            pos_a: 1,
            pos_b: 4,
            paper_probability: UNIFORM_SINGLE * (1.0 + 2f64.powf(-8.590)),
            sign: Sign::Positive,
        },
        EqualityBias {
            pos_a: 2,
            pos_b: 4,
            paper_probability: UNIFORM_SINGLE * (1.0 - 2f64.powf(-9.622)),
            sign: Sign::Negative,
        },
    ]
}

/// Measures `Pr[Z_a = Z_b]` over `keys` random 16-byte keys (deterministic in `seed`).
///
/// Used by the experiment harness to compare against [`equality_biases`].
pub fn measure_equality(pos_a: u64, pos_b: u64, keys: u64, seed: u64) -> f64 {
    let needed = pos_a.max(pos_b) as usize;
    let mut hits = 0u64;
    for k in 0..keys {
        let mut key = [0u8; 16];
        let mut x = seed ^ k.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
        for chunk in key.chunks_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let ks = rc4::keystream(&key, needed).expect("valid key");
        if ks[pos_a as usize - 1] == ks[pos_b as usize - 1] {
            hits += 1;
        }
    }
    hits as f64 / keys as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_are_plausible() {
        assert!((MANTIN_SHAMIR_Z2_ZERO - 2.0 / 256.0).abs() < 1e-15);
        assert!(PAUL_PRENEEL_Z1_EQ_Z2 < UNIFORM_SINGLE);
        assert!(ISOBE_Z1_Z2_ZERO > 2.0 / 65536.0);
    }

    #[test]
    fn table2_consecutive_structure() {
        let rows = table2_consecutive();
        assert_eq!(rows.len(), 7);
        for (w, row) in rows.iter().enumerate() {
            let w = (w + 1) as u64;
            assert_eq!(row.pos_a, 16 * w - 1);
            assert_eq!(row.pos_b, 16 * w);
            assert_eq!(row.val_a, (256 - 16 * w as i64) as u8);
            assert_eq!(row.val_a, row.val_b);
            assert_eq!(row.sign, Sign::Negative);
            // All listed probabilities are below the 2^-16 independence baseline times 1.
            assert!(row.paper_probability < 2f64.powi(-15));
            assert!(row.paper_probability > 2f64.powi(-17));
        }
    }

    #[test]
    fn table2_nonconsecutive_structure() {
        let rows = table2_nonconsecutive();
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert!(row.pos_a < row.pos_b, "rows are ordered by position");
            assert!(row.paper_probability > 0.0 && row.paper_probability < 1.0);
        }
        // The Z16 = 240 cluster is the largest group, as the paper observes.
        let z16 = rows
            .iter()
            .filter(|r| r.pos_a == 16 && r.val_a == 240)
            .count();
        assert!(z16 >= 6);
    }

    #[test]
    fn equality_bias_signs() {
        let [e13, e14, e24] = equality_biases();
        assert!(e13.paper_probability < UNIFORM_SINGLE);
        assert!(e14.paper_probability > UNIFORM_SINGLE);
        assert!(e24.paper_probability < UNIFORM_SINGLE);
    }

    #[test]
    fn mantin_shamir_measurable_at_small_scale() {
        // Z2 = 0 with probability about 2/256: measure it via the equality helper's
        // sibling path by direct keystream generation.
        let keys = 40_000u64;
        let mut hits = 0u64;
        for k in 0..keys {
            let key = (k.wrapping_mul(0x9E37_79B9).wrapping_add(12345) as u128).to_le_bytes();
            let ks = rc4::keystream(&key, 2).unwrap();
            if ks[1] == 0 {
                hits += 1;
            }
        }
        let p = hits as f64 / keys as f64;
        assert!(p > 1.5 / 256.0 && p < 2.5 / 256.0, "Pr[Z2=0] = {p}");
    }

    #[test]
    fn measured_equalities_close_to_uniform_but_consistent() {
        // Equality biases are tiny (2^-9-ish relative); at small sample sizes we
        // only check the estimates are near 1/256 and the function is deterministic.
        let a = measure_equality(1, 3, 5_000, 7);
        let b = measure_equality(1, 3, 5_000, 7);
        assert_eq!(a, b);
        assert!((a - UNIFORM_SINGLE).abs() < 0.01);
    }
}
