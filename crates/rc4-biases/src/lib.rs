//! Analytic catalogue of RC4 keystream biases.
//!
//! The attacks in this workspace exploit statistical irregularities in the RC4
//! keystream. This crate collects the bias models used by the paper — both the
//! previously known ones and the new families the paper reports — in a form the
//! likelihood engines and the experiment harness can consume:
//!
//! * [`fm`] — the generalized Fluhrer–McGrew digraph biases (Table 1),
//!   including the position conditions and the construction of full
//!   double-byte keystream distributions for any PRGA counter value.
//! * [`absab`] — Mantin's ABSAB digraph-repetition bias, its gap-dependent
//!   strength, and the ciphertext-differential formulation used in Section 4.2.
//! * [`shortterm`] — known and newly reported single/double-byte biases in the
//!   initial keystream bytes: Mantin–Shamir `Z_2 = 0`, the `Z_r = r` bias,
//!   the Table 2 consecutive/non-consecutive biases and Equations 3–5.
//! * [`z1z2`] — the six bias families through which `Z_1` and `Z_2` influence
//!   all of the first 256 keystream bytes (Fig. 5), plus the `Z_1`/`Z_2`
//!   dependency pairs A–D.
//! * [`keylength`] — key-length–dependent biases for 16-byte keys
//!   (`Z_{16w-1} = Z_{16w} = 256 - 16w`, `Z_{256+16k} = 32k`, `Z_ℓ = 256 - ℓ`).
//! * [`longterm`] — long-term biases at `256`-aligned positions: Sen Gupta's
//!   `(0, 0)`, the paper's new `(128, 0)` (Eq. 8) and the `Z_a = Z_b`
//!   dependency family (Eq. 9).
//! * [`distributions`] — helpers that turn bias descriptions into concrete
//!   probability vectors (256 or 65536 entries) usable by the
//!   `plaintext-recovery` likelihood estimators and the sampled-mode
//!   experiment drivers.
//!
//! Probabilities follow the paper's notation: a bias is expressed relative to
//! the uniform baseline, e.g. `2^-16 (1 + 2^-8)` for a positive long-term
//! digraph bias.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absab;
pub mod distributions;
pub mod fm;
pub mod keylength;
pub mod longterm;
pub mod shortterm;
pub mod z1z2;

/// Uniform probability of a single keystream byte value, `2^-8`.
pub const UNIFORM_SINGLE: f64 = 1.0 / 256.0;

/// Uniform probability of a keystream byte pair, `2^-16`.
pub const UNIFORM_PAIR: f64 = 1.0 / 65536.0;

/// Sign of a bias relative to the uniform (or independence) baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// The event occurs more often than the baseline predicts.
    Positive,
    /// The event occurs less often than the baseline predicts.
    Negative,
}

impl Sign {
    /// Applies the sign to a relative magnitude: `+m` or `-m`.
    pub fn apply(self, magnitude: f64) -> f64 {
        match self {
            Sign::Positive => magnitude,
            Sign::Negative => -magnitude,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_constants() {
        assert!((UNIFORM_SINGLE * 256.0 - 1.0).abs() < 1e-15);
        assert!((UNIFORM_PAIR * 65536.0 - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sign_application() {
        assert_eq!(Sign::Positive.apply(0.5), 0.5);
        assert_eq!(Sign::Negative.apply(0.5), -0.5);
    }
}
