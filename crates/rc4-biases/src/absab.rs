//! Mantin's ABSAB bias (digraph repetition) and its differential form.
//!
//! Mantin observed a long-term bias towards the pattern `A B S A B`: a byte
//! pair repeating after a short gap `S` of `g` bytes. In the paper's notation
//! (Eq. 1):
//!
//! ```text
//! Pr[(Z_r, Z_{r+1}) = (Z_{r+g+2}, Z_{r+g+3})] = 2^-16 (1 + 2^-8 e^{(-4 - 8g)/256})
//! ```
//!
//! Section 4.2 turns this into a plaintext-recovery tool: define the
//! *differential* `Ẑ_r^g = (Z_r ⊕ Z_{r+2+g}, Z_{r+1} ⊕ Z_{r+3+g})`; then the
//! ciphertext differential equals the plaintext differential whenever the
//! keystream differential is `(0, 0)`, which happens with probability `α(g)`
//! above. The attacker surrounds an unknown plaintext with known bytes and
//! aggregates many such differentials into a likelihood for the unknown pair.

use crate::UNIFORM_PAIR;

/// The maximum gap the paper uses in its attacks (larger gaps are measurably
/// biased up to at least 135, but contribute little).
pub const MAX_ATTACK_GAP: usize = 128;

/// Probability that the keystream differential over a gap of `g` bytes is `(0, 0)`.
///
/// This is the paper's `α(g) = 2^-16 (1 + 2^-8 e^{(-4 - 8g)/256})` (Eq. 1/18).
///
/// # Examples
///
/// ```
/// use rc4_biases::absab::alpha;
///
/// // The bias shrinks as the gap grows but never drops below uniform.
/// assert!(alpha(0) > alpha(64));
/// assert!(alpha(128) > 1.0 / 65536.0);
/// ```
pub fn alpha(gap: usize) -> f64 {
    UNIFORM_PAIR * (1.0 + relative_strength(gap))
}

/// The relative strength `2^-8 e^{(-4 - 8g)/256}` of the ABSAB bias at gap `g`.
pub fn relative_strength(gap: usize) -> f64 {
    let g = gap as f64;
    2f64.powi(-8) * ((-4.0 - 8.0 * g) / 256.0).exp()
}

/// Description of one usable ABSAB relation around an unknown plaintext pair.
///
/// The unknown plaintext bytes sit at positions `r` and `r+1`; the related
/// known plaintext bytes sit at `r + 2 + gap` and `r + 3 + gap` (gap after) or
/// at `r - 2 - gap` and `r - 1 - gap` (gap before, by symmetry of the bias).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsabRelation {
    /// Gap length `g` in bytes between the two digraphs.
    pub gap: usize,
    /// Whether the known digraph precedes (`true`) or follows (`false`) the unknown one.
    pub known_before: bool,
}

impl AbsabRelation {
    /// Probability that the keystream differential for this relation is zero.
    pub fn alpha(&self) -> f64 {
        alpha(self.gap)
    }

    /// Positions (1-based) of the known plaintext digraph when the unknown
    /// digraph starts at position `r`.
    ///
    /// Returns `None` if the relation would reach before position 1.
    pub fn known_positions(&self, r: u64) -> Option<(u64, u64)> {
        let offset = self.gap as u64 + 2;
        if self.known_before {
            if r <= offset {
                return None;
            }
            Some((r - offset, r - offset + 1))
        } else {
            Some((r + offset, r + offset + 1))
        }
    }
}

/// Enumerates the ABSAB relations available when the unknown pair is surrounded
/// by `known_before` bytes of known plaintext before it and `known_after` bytes
/// after it, capped at `max_gap`.
///
/// This mirrors the paper's Fig. 7 setup: with 128 bytes of known plaintext on
/// both sides and a maximum gap of 128 there are `2 * 129` usable relations.
pub fn available_relations(
    known_before: usize,
    known_after: usize,
    max_gap: usize,
) -> Vec<AbsabRelation> {
    let mut out = Vec::new();
    // A gap of g "after" needs g + 2 known bytes following the unknown pair.
    for gap in 0..=max_gap {
        if known_after >= gap + 2 {
            out.push(AbsabRelation {
                gap,
                known_before: false,
            });
        }
    }
    for gap in 0..=max_gap {
        if known_before >= gap + 2 {
            out.push(AbsabRelation {
                gap,
                known_before: true,
            });
        }
    }
    out
}

/// Empirically estimates the ABSAB probability at a given gap by generating
/// keystream blocks, mirroring the paper's validation that the bias is
/// detectable up to gaps of at least 135 bytes.
///
/// Returns the fraction of positions where `(Z_r, Z_{r+1}) = (Z_{r+g+2}, Z_{r+g+3})`.
pub fn measure_alpha(keys: u64, block_len: usize, gap: usize, seed: u64) -> f64 {
    use rc4::Prga;
    let mut hits = 0u64;
    let mut total = 0u64;
    let needed = gap + 4;
    assert!(block_len >= needed, "block too short for the requested gap");
    for k in 0..keys {
        // Simple deterministic 16-byte key derivation for the measurement.
        let mut key = [0u8; 16];
        let mut x = seed ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for chunk in key.chunks_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let mut prga = Prga::new(&key).expect("16-byte key");
        let block = prga.take_vec(block_len);
        for r in 0..block_len - needed + 1 {
            total += 1;
            if block[r] == block[r + gap + 2] && block[r + 1] == block[r + gap + 3] {
                hits += 1;
            }
        }
    }
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_decreases_with_gap_but_stays_above_uniform() {
        let mut prev = f64::INFINITY;
        for gap in [0usize, 1, 8, 32, 64, 128, 256] {
            let a = alpha(gap);
            assert!(a < prev);
            assert!(a > UNIFORM_PAIR);
            prev = a;
        }
    }

    #[test]
    fn alpha_matches_formula_at_zero_gap() {
        let expected = UNIFORM_PAIR * (1.0 + 2f64.powi(-8) * (-4.0f64 / 256.0).exp());
        assert!((alpha(0) - expected).abs() < 1e-24);
    }

    #[test]
    fn relation_positions() {
        let after = AbsabRelation {
            gap: 3,
            known_before: false,
        };
        assert_eq!(after.known_positions(10), Some((15, 16)));
        let before = AbsabRelation {
            gap: 3,
            known_before: true,
        };
        assert_eq!(before.known_positions(10), Some((5, 6)));
        assert_eq!(before.known_positions(5), None);
        assert!(after.alpha() > UNIFORM_PAIR);
    }

    #[test]
    fn available_relations_counts_match_paper_setup() {
        // 130+ known bytes on both sides with max gap 128 -> 2 * 129 relations.
        let rels = available_relations(130, 130, 128);
        assert_eq!(rels.len(), 2 * 129);
        // Asymmetric case: only following plaintext available.
        let rels = available_relations(0, 130, 128);
        assert_eq!(rels.len(), 129);
        assert!(rels.iter().all(|r| !r.known_before));
        // Not enough known plaintext for any relation.
        assert!(available_relations(1, 1, 128).is_empty());
    }

    #[test]
    fn measured_alpha_is_sane_and_deterministic() {
        // The ABSAB relative bias is ~2^-8: confirming it statistically needs on
        // the order of 2^32 digraph samples, which belongs in the release-mode
        // repro harness (Fig. 7), not a unit test. Here we only verify the
        // estimator returns a sane probability near 2^-16 and is deterministic.
        let measured = measure_alpha(16, 4_096, 0, 0xABAB);
        assert!(measured > UNIFORM_PAIR * 0.5 && measured < UNIFORM_PAIR * 2.0);
        assert_eq!(measured, measure_alpha(16, 4_096, 0, 0xABAB));
    }

    #[test]
    #[should_panic(expected = "block too short")]
    fn measure_alpha_rejects_short_blocks() {
        let _ = measure_alpha(1, 4, 8, 0);
    }
}
