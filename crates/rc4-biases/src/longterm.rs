//! Long-term biases at 256-aligned positions (Section 3.4).
//!
//! Besides the Fluhrer–McGrew digraphs and Mantin's ABSAB pattern, two
//! families of long-term biases live at positions that are multiples of 256:
//!
//! * Sen Gupta et al.: `Pr[(Z_{256w}, Z_{256w+2}) = (0, 0)] = 2^-16 (1 + 2^-8)`.
//! * The paper's new bias (Eq. 8): `Pr[(Z_{256w}, Z_{256w+2}) = (128, 0)] = 2^-16 (1 + 2^-8)`.
//! * Eq. 9: weak dependencies `Pr[Z_{256w+a} = Z_{256w+b}] ≈ 2^-8 (1 ± 2^-16)`
//!   whose sign pattern the paper leaves as an open problem.

use crate::UNIFORM_PAIR;

/// A long-term aligned-pair bias `(Z_{256w}, Z_{256w+2}) = (first, second)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignedPairBias {
    /// Value of `Z_{256w}`.
    pub first: u8,
    /// Value of `Z_{256w+2}`.
    pub second: u8,
    /// Long-term probability of the pair.
    pub probability: f64,
}

/// Sen Gupta's `(0, 0)` bias at 256-aligned positions.
pub fn sen_gupta_aligned() -> AlignedPairBias {
    AlignedPairBias {
        first: 0,
        second: 0,
        probability: UNIFORM_PAIR * (1.0 + 2f64.powi(-8)),
    }
}

/// The paper's new `(128, 0)` bias at 256-aligned positions (Eq. 8).
pub fn new_128_0_aligned() -> AlignedPairBias {
    AlignedPairBias {
        first: 128,
        second: 0,
        probability: UNIFORM_PAIR * (1.0 + 2f64.powi(-8)),
    }
}

/// Both aligned-pair biases, for iteration by the experiment harness.
pub fn aligned_biases() -> [AlignedPairBias; 2] {
    [sen_gupta_aligned(), new_128_0_aligned()]
}

/// The magnitude of the Eq. 9 equality dependencies, `2^-16` relative.
pub const EQ9_RELATIVE_MAGNITUDE: f64 = 1.0 / 65536.0;

/// Measures `Pr[(Z_{256w}, Z_{256w+2}) = (first, second)]` empirically.
///
/// Generates `keys` keystreams of `blocks * 256` bytes each (dropping nothing:
/// the first aligned position used is 256 itself, far enough for the long-term
/// regime given `w >= 1`), and counts the aligned pairs.
pub fn measure_aligned_pair(first: u8, second: u8, keys: u64, blocks: usize, seed: u64) -> f64 {
    assert!(blocks >= 2, "need at least two 256-byte blocks");
    let len = blocks * 256 + 3;
    let mut hits = 0u64;
    let mut total = 0u64;
    for k in 0..keys {
        let mut key = [0u8; 16];
        let mut x = seed ^ k.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(11);
        for chunk in key.chunks_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let ks = rc4::keystream(&key, len).expect("valid key");
        for w in 1..=blocks as u64 {
            let pos = (w * 256) as usize; // 1-based position 256w
            let z_a = ks[pos - 1];
            let z_b = ks[pos + 1];
            total += 1;
            if z_a == first && z_b == second {
                hits += 1;
            }
        }
    }
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_bias_constants() {
        let sg = sen_gupta_aligned();
        assert_eq!((sg.first, sg.second), (0, 0));
        let new = new_128_0_aligned();
        assert_eq!((new.first, new.second), (128, 0));
        for b in aligned_biases() {
            assert!((b.probability - UNIFORM_PAIR * (1.0 + 1.0 / 256.0)).abs() < 1e-20);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn eq9_magnitude_is_tiny() {
        assert!(EQ9_RELATIVE_MAGNITUDE < 1e-4);
    }

    #[test]
    fn measurement_runs_and_is_in_range() {
        // The aligned biases are ~2^-8 relative; verifying their presence needs
        // more samples than a unit test should spend, so only check the estimate
        // is a sane probability near 2^-16 and deterministic.
        let p = measure_aligned_pair(0, 0, 64, 4, 42);
        assert!((0.0..1e-3).contains(&p));
        assert_eq!(p, measure_aligned_pair(0, 0, 64, 4, 42));
    }

    #[test]
    #[should_panic(expected = "two 256-byte blocks")]
    fn measurement_needs_blocks() {
        let _ = measure_aligned_pair(0, 0, 1, 1, 0);
    }
}
