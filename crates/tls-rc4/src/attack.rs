//! The Section-6 attack: recovering an HTTPS cookie from RC4-encrypted requests.
//!
//! For every captured request the attacker knows every plaintext byte except
//! the cookie value, and knows the cookie's keystream position. Two bias
//! families contribute likelihood information about consecutive cookie bytes:
//!
//! * **Fluhrer–McGrew digraphs** — per transition, the 65536 ciphertext pair
//!   counts are scored against the FM keystream distribution at that position
//!   (the optimized sparse evaluation of Eq. 15).
//! * **Mantin's ABSAB bias** — for every gap `g` reaching into the known
//!   plaintext before or after the cookie, the ciphertext differential is
//!   biased towards the plaintext differential. Because the known plaintext is
//!   fixed, each observation can be credited directly to the plaintext pair it
//!   votes for with weight `ln α(g) − ln u`; accumulating those weighted votes
//!   per transition yields exactly the combined ABSAB log-likelihood of
//!   Eq. 22/25 while storing a single 65536-entry table per transition instead
//!   of one table per `(transition, gap)` pair.
//!
//! The combined per-transition likelihoods feed Algorithm 2 (list Viterbi) over
//! the cookie alphabet, and the resulting candidate list is brute-forced
//! against the web server (simulated here by an oracle closure).

use plaintext_recovery::{
    charset::Charset,
    likelihood::PairLikelihoods,
    viterbi::{list_viterbi_with_exec, PairCandidate, ViterbiConfig},
    RecoveryError,
};
use rc4_biases::{absab, fm};
use rc4_exec::Executor;

use crate::{http::RequestTemplate, traffic::CapturedRequest, TlsError};

/// Recovery-layer errors fold into the TLS error model, preserving
/// cancellation so callers can tell an aborted attack from a broken one.
fn recovery_error(e: RecoveryError) -> TlsError {
    match e {
        RecoveryError::Cancelled => TlsError::Cancelled,
        other => TlsError::InvalidConfig(other.to_string()),
    }
}

/// Configuration of the cookie-recovery attack.
#[derive(Debug, Clone)]
pub struct CookieAttackConfig {
    /// Maximum ABSAB gap to exploit (the paper uses 128).
    pub max_gap: usize,
    /// Number of cookie candidates to generate (the paper brute-forces `2^23`).
    pub candidates: usize,
    /// Alphabet the cookie bytes are drawn from (RFC 6265 allows at most 90).
    pub charset: Charset,
    /// Whether to use the Fluhrer–McGrew likelihoods.
    pub use_fm: bool,
    /// Whether to use the ABSAB likelihoods.
    pub use_absab: bool,
}

impl Default for CookieAttackConfig {
    fn default() -> Self {
        Self {
            max_gap: 128,
            candidates: 1 << 15,
            charset: Charset::cookie(),
            use_fm: true,
            use_absab: true,
        }
    }
}

/// Ciphertext statistics accumulated at the cookie positions.
///
/// For a cookie of `L` bytes there are `L + 1` transitions: known-prefix byte →
/// cookie byte 1, cookie byte `t` → `t + 1`, and cookie byte `L` → known-suffix
/// byte. Per transition we keep the FM pair counts and the accumulated ABSAB
/// vote table described in the module documentation.
#[derive(Debug, Clone)]
pub struct CookieStatistics {
    cookie_len: usize,
    /// Byte offset of the first cookie byte within the request.
    cookie_offset: usize,
    /// Known plaintext before / after the cookie (the full request with the
    /// cookie bytes zeroed is not needed — only the surrounding bytes).
    known_prefix: Vec<u8>,
    known_suffix: Vec<u8>,
    max_gap: usize,
    /// FM pair counts per transition (65536 each).
    fm_counts: Vec<Vec<u64>>,
    /// ABSAB weighted votes per transition (65536 each), indexed by plaintext pair.
    absab_votes: Vec<Vec<f64>>,
    /// Keystream residue (position of the first cookie byte mod 256), fixed by alignment.
    cookie_residue: Option<u64>,
    requests: u64,
}

impl CookieStatistics {
    /// Creates empty statistics for the given request template.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::InvalidConfig`] for a zero-length cookie.
    pub fn new(template: &RequestTemplate, max_gap: usize) -> Result<Self, TlsError> {
        if template.cookie_len == 0 {
            return Err(TlsError::InvalidConfig("cookie length must be > 0".into()));
        }
        let transitions = template.cookie_len + 1;
        Ok(Self {
            cookie_len: template.cookie_len,
            cookie_offset: template.cookie_offset(),
            known_prefix: template.known_prefix(),
            known_suffix: template.known_suffix(),
            max_gap,
            fm_counts: vec![vec![0u64; 65536]; transitions],
            absab_votes: vec![vec![0.0f64; 65536]; transitions],
            cookie_residue: None,
            requests: 0,
        })
    }

    /// Number of requests accumulated.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Cookie length in bytes.
    pub fn cookie_len(&self) -> usize {
        self.cookie_len
    }

    /// Adds one captured request.
    ///
    /// # Errors
    ///
    /// * [`TlsError::Malformed`] if the ciphertext is shorter than the template.
    /// * [`TlsError::InvalidConfig`] if the cookie residue differs from earlier
    ///   captures (the alignment step should have pinned it).
    pub fn add(&mut self, capture: &CapturedRequest) -> Result<(), TlsError> {
        let needed = self.cookie_offset + self.cookie_len + self.known_suffix.len();
        if capture.ciphertext.len() < needed {
            return Err(TlsError::Malformed(format!(
                "captured request has {} bytes, template needs {needed}",
                capture.ciphertext.len()
            )));
        }
        // 1-based keystream position of the first cookie byte.
        let cookie_pos = capture.payload_offset + self.cookie_offset as u64 + 1;
        let residue = cookie_pos % 256;
        match self.cookie_residue {
            None => self.cookie_residue = Some(residue),
            Some(r) if r == residue => {}
            Some(r) => {
                return Err(TlsError::InvalidConfig(format!(
                    "cookie residue changed from {r} to {residue}; requests are not aligned"
                )))
            }
        }

        let ct = &capture.ciphertext;
        let start = self.cookie_offset; // 0-based index of first cookie byte
                                        // Transition t covers request bytes (start - 1 + t, start + t).
        for t in 0..=self.cookie_len {
            let a = ct[start - 1 + t] as usize;
            let b = ct[start + t] as usize;
            self.fm_counts[t][(a << 8) | b] += 1;
        }

        // ABSAB votes: relate each transition's (unknown) pair to known plaintext
        // pairs before the cookie and after it.
        for t in 0..=self.cookie_len {
            let u0 = start - 1 + t; // 0-based index of the first byte of the pair
                                    // Known plaintext after the cookie: positions >= start + cookie_len.
            for gap in 0..=self.max_gap {
                let k0 = u0 + gap + 2;
                // Both known bytes must be in the known suffix region.
                if k0 < start + self.cookie_len {
                    continue;
                }
                let Some((p0, p1)) = self.known_byte(k0).zip(self.known_byte(k0 + 1)) else {
                    break;
                };
                let Some((c0, c1)) = ct.get(k0).zip(ct.get(k0 + 1)) else {
                    break;
                };
                let d0 = ct[u0] ^ c0 ^ p0;
                let d1 = ct[u0 + 1] ^ c1 ^ p1;
                let alpha = absab::alpha(gap);
                let weight = alpha.ln() - ((1.0 - alpha) / 65535.0).ln();
                self.absab_votes[t][(d0 as usize) << 8 | d1 as usize] += weight;
            }
            // Known plaintext before the cookie: positions < start - 1.
            for gap in 0..=self.max_gap {
                let offset = gap + 2;
                if u0 < offset {
                    break;
                }
                let k0 = u0 - offset;
                if k0 + 1 >= start - 1 + t && t > 0 {
                    // The "known" pair would overlap unknown cookie bytes.
                    continue;
                }
                if k0 + 1 >= self.known_prefix.len() && k0 + 1 >= start {
                    continue;
                }
                let Some((p0, p1)) = self.known_byte(k0).zip(self.known_byte(k0 + 1)) else {
                    continue;
                };
                let d0 = ct[u0] ^ ct[k0] ^ p0;
                let d1 = ct[u0 + 1] ^ ct[k0 + 1] ^ p1;
                let alpha = absab::alpha(gap);
                let weight = alpha.ln() - ((1.0 - alpha) / 65535.0).ln();
                self.absab_votes[t][(d0 as usize) << 8 | d1 as usize] += weight;
            }
        }
        self.requests += 1;
        Ok(())
    }

    /// The known plaintext byte at request offset `idx`, or `None` if `idx`
    /// falls inside the unknown cookie value or beyond the request.
    fn known_byte(&self, idx: usize) -> Option<u8> {
        if idx < self.cookie_offset {
            self.known_prefix.get(idx).copied()
        } else if idx < self.cookie_offset + self.cookie_len {
            None
        } else {
            self.known_suffix
                .get(idx - self.cookie_offset - self.cookie_len)
                .copied()
        }
    }

    /// Computes the combined per-transition pair likelihoods.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::InvalidConfig`] when no requests have been added or
    /// both bias families are disabled.
    pub fn likelihoods(
        &self,
        config: &CookieAttackConfig,
    ) -> Result<Vec<PairLikelihoods>, TlsError> {
        self.likelihoods_with_exec(config, &Executor::serial())
    }

    /// [`CookieStatistics::likelihoods`] on an explicit executor: the per
    /// transition FM scoring and ABSAB combination — independent 65536-entry
    /// table computations — run in parallel, collected back in transition
    /// order (identical output for any worker count).
    ///
    /// # Errors
    ///
    /// Everything [`CookieStatistics::likelihoods`] returns, plus
    /// [`TlsError::Cancelled`] when the executor's flag is raised.
    pub fn likelihoods_with_exec(
        &self,
        config: &CookieAttackConfig,
        exec: &Executor<'_>,
    ) -> Result<Vec<PairLikelihoods>, TlsError> {
        if self.requests == 0 {
            return Err(TlsError::InvalidConfig("no captured requests".into()));
        }
        if !config.use_fm && !config.use_absab {
            return Err(TlsError::InvalidConfig(
                "at least one bias family must be enabled".into(),
            ));
        }
        let residue = self.cookie_residue.unwrap_or(0);
        exec.map((0..=self.cookie_len).collect(), |_, t| {
            let mut combined: Option<PairLikelihoods> = None;
            if config.use_fm {
                // 1-based keystream position of the first byte of this transition.
                let first_pos = residue + t as u64;
                let position = if first_pos == 0 { 256 } else { first_pos };
                let cells: Vec<(u8, u8, f64)> = fm::fm_biases_at(position.max(1))
                    .into_iter()
                    .map(|b| (b.first, b.second, b.probability))
                    .collect();
                let fm_lik = PairLikelihoods::from_counts_sparse(
                    &self.fm_counts[t],
                    &cells,
                    1.0 / 65536.0,
                    self.requests,
                )
                .map_err(recovery_error)?;
                combined = Some(fm_lik);
            }
            if config.use_absab {
                combined = Some(match combined {
                    // Fold the vote table straight into the FM likelihoods:
                    // same per-slot addition as clone-then-combine (bit-
                    // identical) without materializing a 512 KiB copy per
                    // transition.
                    Some(mut c) => {
                        c.add_log_values(&self.absab_votes[t])
                            .map_err(recovery_error)?;
                        c
                    }
                    None => PairLikelihoods::from_log_values(self.absab_votes[t].clone())
                        .map_err(recovery_error)?,
                });
            }
            Ok(combined.expect("at least one family enabled"))
        })
        .map_err(TlsError::from)
    }

    /// The known plaintext byte immediately before the cookie.
    pub fn boundary_before(&self) -> u8 {
        self.known_prefix[self.known_prefix.len() - 1]
    }

    /// The known plaintext byte immediately after the cookie.
    pub fn boundary_after(&self) -> u8 {
        self.known_suffix[0]
    }
}

/// Outcome of the cookie recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct CookieRecoveryOutcome {
    /// The recovered cookie (present when the brute force succeeded).
    pub cookie: Option<Vec<u8>>,
    /// Position (0-based) of the true cookie in the candidate list, when found.
    pub candidate_index: Option<usize>,
    /// Number of candidates generated.
    pub candidates_generated: usize,
    /// Number of brute-force attempts performed.
    pub attempts: usize,
}

/// Generates the ranked cookie candidate list from accumulated statistics.
///
/// # Errors
///
/// Propagates the validation errors of [`CookieStatistics::likelihoods`] and of
/// the list-Viterbi decoder.
pub fn cookie_candidates(
    stats: &CookieStatistics,
    config: &CookieAttackConfig,
) -> Result<Vec<PairCandidate>, TlsError> {
    cookie_candidates_with_exec(stats, config, &Executor::serial())
}

/// [`cookie_candidates`] on an explicit executor: both analysis stages — the
/// per-transition likelihood tables and the list-Viterbi beam expansion —
/// fan out across the executor's workers. The candidate list is identical
/// for any worker count.
///
/// # Errors
///
/// Everything [`cookie_candidates`] returns, plus [`TlsError::Cancelled`]
/// when the executor's flag is raised.
pub fn cookie_candidates_with_exec(
    stats: &CookieStatistics,
    config: &CookieAttackConfig,
    exec: &Executor<'_>,
) -> Result<Vec<PairCandidate>, TlsError> {
    let likelihoods = stats.likelihoods_with_exec(config, exec)?;
    let viterbi = ViterbiConfig {
        first_known: stats.boundary_before(),
        last_known: stats.boundary_after(),
        candidates: config.candidates,
        charset: config.charset.clone(),
    };
    list_viterbi_with_exec(&likelihoods, &viterbi, exec).map_err(recovery_error)
}

/// The sequential statistic of streaming mode: the top-ranked candidate's
/// log-likelihood margin over the runner-up. `None` until the list has at
/// least two candidates (with fewer there is no runner-up to beat, so there
/// is no evidence of separation either).
///
/// The list produced by [`cookie_candidates_with_exec`] is sorted by
/// descending log-likelihood, so the margin is simply the gap between the
/// first two entries.
pub fn candidate_margin(candidates: &[PairCandidate]) -> Option<f64> {
    match candidates {
        [first, second, ..] => Some(first.log_likelihood - second.log_likelihood),
        _ => None,
    }
}

/// Walks the candidate list and tests each candidate against `oracle`
/// (in practice: an HTTPS request with the guessed cookie; here: a closure).
///
/// The paper's tool tested more than 20000 cookies per second over persistent
/// connections with HTTP pipelining; [`brute_force_rate_seconds`] converts an
/// attempt count into the corresponding wall-clock time.
pub fn brute_force_cookie(
    candidates: &[PairCandidate],
    mut oracle: impl FnMut(&[u8]) -> bool,
) -> CookieRecoveryOutcome {
    for (index, cand) in candidates.iter().enumerate() {
        if oracle(&cand.plaintext) {
            return CookieRecoveryOutcome {
                cookie: Some(cand.plaintext.clone()),
                candidate_index: Some(index),
                candidates_generated: candidates.len(),
                attempts: index + 1,
            };
        }
    }
    CookieRecoveryOutcome {
        cookie: None,
        candidate_index: None,
        candidates_generated: candidates.len(),
        attempts: candidates.len(),
    }
}

/// Wall-clock seconds needed to test `attempts` cookies at `rate` attempts per second.
pub fn brute_force_rate_seconds(attempts: u64, rate: u64) -> f64 {
    attempts as f64 / rate.max(1) as f64
}

/// Runs the complete attack: candidate generation followed by brute force.
///
/// # Errors
///
/// Propagates statistics/likelihood validation errors; an exhausted candidate
/// list is reported through the outcome rather than as an error.
pub fn recover_cookie(
    stats: &CookieStatistics,
    config: &CookieAttackConfig,
    oracle: impl FnMut(&[u8]) -> bool,
) -> Result<CookieRecoveryOutcome, TlsError> {
    let candidates = cookie_candidates(stats, config)?;
    Ok(brute_force_cookie(&candidates, oracle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{TrafficConfig, TrafficGenerator};

    fn template(cookie_len: usize) -> RequestTemplate {
        RequestTemplate::new("site.com", "auth", cookie_len)
    }

    #[test]
    fn statistics_validation() {
        let t = template(8);
        let mut stats = CookieStatistics::new(&t, 16).unwrap();
        assert!(CookieStatistics::new(&template(0), 16).is_err());
        // Too-short capture is rejected.
        let short = CapturedRequest {
            connection: 0,
            payload_offset: 0,
            ciphertext: vec![0u8; 10],
        };
        assert!(stats.add(&short).is_err());
        // Likelihoods require at least one request and one enabled family.
        assert!(stats.likelihoods(&CookieAttackConfig::default()).is_err());
    }

    #[test]
    fn residue_consistency_enforced() {
        let t = template(8);
        let mut stats = CookieStatistics::new(&t, 4).unwrap();
        let len = t.request_len();
        let ok = CapturedRequest {
            connection: 0,
            payload_offset: 0,
            ciphertext: vec![0u8; len],
        };
        stats.add(&ok).unwrap();
        let misaligned = CapturedRequest {
            connection: 0,
            payload_offset: 3,
            ciphertext: vec![0u8; len],
        };
        assert!(stats.add(&misaligned).is_err());
    }

    #[test]
    fn known_byte_lookup() {
        let t = template(4);
        let stats = CookieStatistics::new(&t, 4).unwrap();
        let off = t.cookie_offset();
        // Prefix bytes are known.
        assert_eq!(stats.known_byte(0), Some(b'G'));
        assert_eq!(stats.known_byte(off - 1), Some(b'='));
        // Cookie bytes are unknown.
        assert_eq!(stats.known_byte(off), None);
        assert_eq!(stats.known_byte(off + 3), None);
        // Suffix bytes are known again.
        assert_eq!(stats.known_byte(off + 4), Some(b';'));
        assert_eq!(stats.boundary_before(), b'=');
        assert_eq!(stats.boundary_after(), b';');
    }

    /// End-to-end recovery in "genie" mode: captures are generated with real TLS
    /// connections, and the statistics are then scored against a genie keystream
    /// model — here realized by replacing the FM/ABSAB likelihoods with votes
    /// accumulated from an artificially strong ABSAB-style channel. Rather than
    /// faking keystreams, we simply check that with the *real* (weak) biases and
    /// a small number of captures the machinery runs end to end and produces a
    /// well-formed ranked candidate list over the cookie alphabet; statistical
    /// success at realistic strengths is exercised by the Fig. 10 bench.
    #[test]
    fn pipeline_produces_ranked_cookie_candidates() {
        let cookie = b"SESSIONTOKEN00AA";
        let mut gen = TrafficGenerator::new(
            template(cookie.len()),
            cookie.to_vec(),
            TrafficConfig {
                requests_per_connection: 64,
                ..TrafficConfig::default()
            },
        )
        .unwrap();
        let mut stats = CookieStatistics::new(gen.template(), 32).unwrap();
        // Alignment: the template length is not forced to a multiple of 256 here,
        // so restrict to the captures on the first connection whose residues match
        // the first one.
        let caps = gen.capture(64).unwrap();
        let first_residue = (caps[0].payload_offset + stats.cookie_offset as u64 + 1) % 256;
        for cap in &caps {
            let residue = (cap.payload_offset + stats.cookie_offset as u64 + 1) % 256;
            if residue == first_residue {
                stats.add(cap).unwrap();
            }
        }
        assert!(stats.requests() > 0);

        let config = CookieAttackConfig {
            candidates: 32,
            ..CookieAttackConfig::default()
        };
        let candidates = cookie_candidates(&stats, &config).unwrap();
        assert!(!candidates.is_empty());
        assert!(candidates.len() <= 32);
        for cand in &candidates {
            assert_eq!(cand.plaintext.len(), cookie.len());
            assert!(config.charset.accepts(&cand.plaintext));
        }
        for w in candidates.windows(2) {
            assert!(w[0].log_likelihood >= w[1].log_likelihood);
        }
    }

    #[test]
    fn brute_force_reports_position_and_misses() {
        let candidates = vec![
            PairCandidate {
                plaintext: b"aaaa".to_vec(),
                log_likelihood: 3.0,
            },
            PairCandidate {
                plaintext: b"bbbb".to_vec(),
                log_likelihood: 2.0,
            },
            PairCandidate {
                plaintext: b"cccc".to_vec(),
                log_likelihood: 1.0,
            },
        ];
        let hit = brute_force_cookie(&candidates, |c| c == b"bbbb");
        assert_eq!(hit.cookie.as_deref(), Some(b"bbbb".as_ref()));
        assert_eq!(hit.candidate_index, Some(1));
        assert_eq!(hit.attempts, 2);

        let miss = brute_force_cookie(&candidates, |_| false);
        assert!(miss.cookie.is_none());
        assert_eq!(miss.attempts, 3);

        // 2^23 attempts at 20000/s is under 7 minutes, as the paper notes.
        let secs = brute_force_rate_seconds(1 << 23, 20_000);
        assert!(secs < 7.0 * 60.0);
    }

    #[test]
    fn candidate_margin_is_top_two_gap() {
        let make = |lls: &[f64]| -> Vec<PairCandidate> {
            lls.iter()
                .map(|&ll| PairCandidate {
                    plaintext: b"x".to_vec(),
                    log_likelihood: ll,
                })
                .collect()
        };
        assert_eq!(candidate_margin(&make(&[])), None);
        assert_eq!(candidate_margin(&make(&[5.0])), None);
        let m = candidate_margin(&make(&[5.0, 1.5, 0.0])).unwrap();
        assert!((m - 3.5).abs() < 1e-12);
    }
}
