//! TLS substrate and the Section-6 HTTPS cookie attack.
//!
//! The paper's second attack decrypts a `secure` HTTP cookie sent over TLS with
//! the `RC4-SHA1` cipher suite, by making the victim's browser transmit the
//! cookie a few hundred million times and aggregating Fluhrer–McGrew and ABSAB
//! likelihoods over the captured records. This crate builds the pieces:
//!
//! * [`record`] — the TLS record layer with RC4_128 encryption and HMAC-SHA1
//!   authentication, including the key-block derivation from the master secret
//!   (so "the RC4 key is effectively uniform per connection" is a property of
//!   real machinery, not an assumption wired into the attack).
//! * [`http`] — the manipulated HTTPS request of Listing 3: known headers
//!   before the cookie, attacker-injected cookies after it, and the padding
//!   needed to pin the cookie to a fixed keystream position modulo 256.
//! * [`traffic`] — the traffic-generation model standing in for the paper's
//!   JavaScript/WebWorker setup (cross-origin requests over persistent
//!   connections at ~4450 requests per second) and the passive capture of the
//!   encrypted records.
//! * [`attack`] — ciphertext statistics at the cookie positions, combined
//!   Fluhrer–McGrew + ABSAB pair likelihoods, Algorithm-2 candidate generation
//!   over the cookie alphabet, and the brute-force driver that tests candidates
//!   against the web server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod http;
pub mod record;
pub mod traffic;

/// Errors produced by the TLS substrate and the cookie attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// A record failed MAC verification or was otherwise rejected.
    RecordRejected(&'static str),
    /// Malformed or truncated input.
    Malformed(String),
    /// Invalid configuration.
    InvalidConfig(String),
    /// The attack exhausted its candidate budget without finding the cookie.
    AttackFailed(String),
    /// A parallel attack stage was cancelled through its executor's
    /// cooperative cancellation flag before it completed.
    Cancelled,
}

impl core::fmt::Display for TlsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TlsError::RecordRejected(what) => write!(f, "record rejected: {what}"),
            TlsError::Malformed(msg) => write!(f, "malformed input: {msg}"),
            TlsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TlsError::AttackFailed(msg) => write!(f, "attack failed: {msg}"),
            TlsError::Cancelled => write!(f, "attack cancelled"),
        }
    }
}

impl std::error::Error for TlsError {}

/// Executor outcomes fold back into the TLS error model so the `_with_exec`
/// attack variants keep returning [`TlsError`].
impl From<rc4_exec::ExecError<TlsError>> for TlsError {
    fn from(e: rc4_exec::ExecError<TlsError>) -> Self {
        match e {
            rc4_exec::ExecError::Cancelled => TlsError::Cancelled,
            rc4_exec::ExecError::Task { error, .. } => error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(TlsError::RecordRejected("MAC").to_string().contains("MAC"));
        assert!(TlsError::AttackFailed("budget".into())
            .to_string()
            .contains("budget"));
    }
}
