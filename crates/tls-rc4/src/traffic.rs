//! Traffic generation and capture for the HTTPS cookie attack.
//!
//! In the live attack (Sect. 6.3) the attacker injects JavaScript into a plain
//! HTTP page; WebWorkers in the victim's browser then issue cross-origin
//! requests to the targeted HTTPS site at roughly 4450 requests per second
//! over persistent TLS connections, each request automatically carrying the
//! secure cookie. A passive sniffer reassembles the TLS records and hands the
//! encrypted requests to the analysis tool.
//!
//! This module is the deterministic stand-in for that setup: it drives real
//! [`crate::record`] connections carrying real [`crate::http`] requests and
//! yields the captured ciphertexts together with their keystream offsets.

use rand::{rngs::StdRng, RngCore, SeedableRng};

use crypto_prims::prf::TlsVersion;

use crate::{
    http::RequestTemplate,
    record::{derive_keys, RecordEncryptor, HEADER_LEN},
    TlsError,
};

/// One captured encrypted request.
#[derive(Debug, Clone)]
pub struct CapturedRequest {
    /// Index of the TLS connection this request was sent on.
    pub connection: u64,
    /// Keystream offset (0-based, within the connection) of the first payload byte.
    pub payload_offset: u64,
    /// The encrypted request payload (record body without header, MAC bytes excluded).
    pub ciphertext: Vec<u8>,
}

/// Configuration of the traffic generator.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Requests per second the victim's browser achieves (paper: ~4450 when
    /// idle, ~4100 while watching videos).
    pub requests_per_second: u64,
    /// Number of requests sent on one persistent connection before the browser
    /// opens a fresh one (key renewal is tolerated by the attack).
    pub requests_per_connection: u64,
    /// TLS version negotiated.
    pub version: TlsVersion,
    /// Seed for the per-connection secrets.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            requests_per_second: 4450,
            requests_per_connection: 10_000,
            version: TlsVersion::Tls12,
            seed: 0xC00C1E,
        }
    }
}

/// Simulates the victim's browser sending the manipulated request over
/// persistent TLS connections while the attacker captures the ciphertexts.
#[derive(Debug)]
pub struct TrafficGenerator {
    template: RequestTemplate,
    cookie: Vec<u8>,
    config: TrafficConfig,
    rng: StdRng,
    connection_index: u64,
    requests_on_connection: u64,
    encryptor: RecordEncryptor,
    total_requests: u64,
}

impl TrafficGenerator {
    /// Creates a generator for a fixed secret cookie value.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::InvalidConfig`] if the cookie length does not match
    /// the template or the configuration is degenerate.
    pub fn new(
        template: RequestTemplate,
        cookie: Vec<u8>,
        config: TrafficConfig,
    ) -> Result<Self, TlsError> {
        if cookie.len() != template.cookie_len {
            return Err(TlsError::InvalidConfig(format!(
                "cookie has {} bytes, template expects {}",
                cookie.len(),
                template.cookie_len
            )));
        }
        if config.requests_per_connection == 0 || config.requests_per_second == 0 {
            return Err(TlsError::InvalidConfig(
                "request rates must be non-zero".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let encryptor = Self::fresh_connection(&mut rng, config.version)?;
        Ok(Self {
            template,
            cookie,
            config,
            rng,
            connection_index: 0,
            requests_on_connection: 0,
            encryptor,
            total_requests: 0,
        })
    }

    fn fresh_connection(
        rng: &mut StdRng,
        version: TlsVersion,
    ) -> Result<RecordEncryptor, TlsError> {
        let mut master = [0u8; 48];
        let mut client_random = [0u8; 32];
        let mut server_random = [0u8; 32];
        rng.fill_bytes(&mut master);
        rng.fill_bytes(&mut client_random);
        rng.fill_bytes(&mut server_random);
        let keys = derive_keys(version, &master, &client_random, &server_random);
        RecordEncryptor::new(version, &keys.client)
    }

    /// The request template in use.
    pub fn template(&self) -> &RequestTemplate {
        &self.template
    }

    /// Total requests generated so far.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Generates and captures the next `count` encrypted requests.
    ///
    /// # Errors
    ///
    /// Propagates template build errors (which would indicate an internal
    /// inconsistency between the template and the stored cookie).
    pub fn capture(&mut self, count: usize) -> Result<Vec<CapturedRequest>, TlsError> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if self.requests_on_connection >= self.config.requests_per_connection {
                self.encryptor = Self::fresh_connection(&mut self.rng, self.config.version)?;
                self.connection_index += 1;
                self.requests_on_connection = 0;
            }
            let request = self.template.build(&self.cookie)?;
            let payload_offset = self.encryptor.keystream_offset();
            let record = self.encryptor.encrypt(&request);
            // Strip the record header and the trailing MAC: the analysis only
            // needs the encrypted request bytes and their keystream offset.
            let ciphertext = record[HEADER_LEN..HEADER_LEN + request.len()].to_vec();
            out.push(CapturedRequest {
                connection: self.connection_index,
                payload_offset,
                ciphertext,
            });
            self.requests_on_connection += 1;
            self.total_requests += 1;
        }
        Ok(out)
    }

    /// Wall-clock hours the real setup would need to produce `requests` requests.
    pub fn hours_for(&self, requests: u64) -> f64 {
        requests as f64 / self.config.requests_per_second as f64 / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(cookie: &[u8]) -> TrafficGenerator {
        let template = RequestTemplate::new("site.com", "auth", cookie.len());
        TrafficGenerator::new(template, cookie.to_vec(), TrafficConfig::default()).unwrap()
    }

    #[test]
    fn captures_have_consistent_shape() {
        let mut g = generator(b"SECRETCOOKIE1234");
        let caps = g.capture(20).unwrap();
        assert_eq!(caps.len(), 20);
        let len = g.template().request_len();
        for cap in &caps {
            assert_eq!(cap.ciphertext.len(), len);
        }
        assert_eq!(g.total_requests(), 20);
    }

    #[test]
    fn ciphertext_is_keystream_xor_request_at_offset() {
        let cookie = b"SECRETCOOKIE1234";
        let mut g = generator(cookie);
        let caps = g.capture(3).unwrap();
        // Offsets advance by request length + MAC length per record.
        assert_eq!(caps[0].payload_offset, 0);
        let advance = (g.template().request_len() + 20) as u64;
        assert_eq!(caps[1].payload_offset, advance);
        assert_eq!(caps[2].payload_offset, 2 * advance);
        // The cookie bytes really sit at the template's offset.
        let offset = g.template().cookie_offset();
        let request = g.template().build(cookie).unwrap();
        assert_eq!(&request[offset..offset + cookie.len()], cookie);
    }

    #[test]
    fn connections_rotate_and_keys_change() {
        let template = RequestTemplate::new("site.com", "auth", 4);
        let config = TrafficConfig {
            requests_per_connection: 5,
            ..TrafficConfig::default()
        };
        let mut g = TrafficGenerator::new(template, b"abcd".to_vec(), config).unwrap();
        let caps = g.capture(12).unwrap();
        assert_eq!(caps[0].connection, 0);
        assert_eq!(caps[4].connection, 0);
        assert_eq!(caps[5].connection, 1);
        assert_eq!(caps[10].connection, 2);
        // A new connection restarts the keystream offset.
        assert_eq!(caps[5].payload_offset, 0);
        // Same plaintext, different connection keys -> different ciphertexts.
        assert_ne!(caps[0].ciphertext, caps[5].ciphertext);
    }

    #[test]
    fn config_validation() {
        let template = RequestTemplate::new("site.com", "auth", 4);
        assert!(TrafficGenerator::new(
            template.clone(),
            b"toolong".to_vec(),
            TrafficConfig::default()
        )
        .is_err());
        let bad = TrafficConfig {
            requests_per_connection: 0,
            ..TrafficConfig::default()
        };
        assert!(TrafficGenerator::new(template, b"abcd".to_vec(), bad).is_err());
    }

    #[test]
    fn time_estimate_matches_paper() {
        let g = generator(b"SECRETCOOKIE1234");
        // 9 * 2^27 requests at 4450 req/s is about 75 hours (Sect. 6.3).
        let hours = g.hours_for(9 * (1 << 27));
        assert!(hours > 70.0 && hours < 80.0, "estimated {hours} hours");
    }
}
