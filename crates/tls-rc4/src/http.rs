//! The manipulated HTTPS request surrounding the targeted cookie.
//!
//! Section 6.1 of the paper arranges, through a man-in-the-middle position on
//! plain HTTP, that every HTTPS request the victim's browser sends has the
//! following shape: predictable request line and headers, then a `Cookie`
//! header whose *first* value is the targeted `auth` cookie, followed by
//! attacker-injected cookies. The attacker therefore knows every byte before
//! and after the secret cookie value, and can pad the injected cookies so the
//! secret sits at a chosen keystream position modulo 256 (needed to make
//! optimal use of the position-dependent Fluhrer–McGrew biases).

use crate::TlsError;

/// Template of the manipulated request.
#[derive(Debug, Clone)]
pub struct RequestTemplate {
    /// Host name of the targeted site (e.g. `site.com`).
    pub host: String,
    /// Request path.
    pub path: String,
    /// Name of the targeted cookie (e.g. `auth`).
    pub cookie_name: String,
    /// Length in bytes of the secret cookie value.
    pub cookie_len: usize,
    /// Attacker-chosen padding appended to the request path as a query string;
    /// adjusting its length shifts the position of the secret cookie within
    /// the request (the browser echoes whatever URL the attacker's injected
    /// JavaScript requests).
    pub path_padding: usize,
    /// Attacker-chosen padding inserted via an injected cookie after the
    /// secret value; used to round the total request length to a multiple of
    /// 256 so the cookie residue is identical for every request on a
    /// persistent connection.
    pub alignment_padding: usize,
}

impl RequestTemplate {
    /// Creates a template for a 16-character cookie on `host`.
    pub fn new(host: &str, cookie_name: &str, cookie_len: usize) -> Self {
        Self {
            host: host.to_string(),
            path: "/".to_string(),
            cookie_name: cookie_name.to_string(),
            cookie_len,
            path_padding: 0,
            alignment_padding: 0,
        }
    }

    /// The request bytes that precede the secret cookie value.
    ///
    /// The attacker knows these exactly: the request line, the static headers
    /// and the `Cookie: name=` prefix.
    pub fn known_prefix(&self) -> Vec<u8> {
        let mut s = String::new();
        let mut path = self.path.clone();
        if self.path_padding > 0 {
            path.push_str("?p=");
            path.push_str(&"A".repeat(self.path_padding));
        }
        s.push_str(&format!("GET {path} HTTP/1.1\r\n"));
        s.push_str(&format!("Host: {}\r\n", self.host));
        s.push_str(
            "User-Agent: Mozilla/5.0 (X11; Linux i686; rv:32.0) Gecko/20100101 Firefox/32.0\r\n",
        );
        s.push_str("Accept: text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8\r\n");
        s.push_str("Accept-Language: en-US,en;q=0.5\r\n");
        s.push_str("Accept-Encoding: gzip, deflate\r\n");
        s.push_str("Connection: keep-alive\r\n");
        s.push_str(&format!("Cookie: {}=", self.cookie_name));
        s.into_bytes()
    }

    /// The request bytes that follow the secret cookie value: the injected
    /// cookies (including alignment padding) and the final CRLFs.
    pub fn known_suffix(&self) -> Vec<u8> {
        let mut s = String::new();
        s.push_str("; injected1=");
        s.push_str(&"P".repeat(self.alignment_padding));
        s.push_str("knownplaintextknownplaintextknownplaintextknownplaintext");
        s.push_str("; injected2=knownplaintextknownplaintextknownplaintextknownplaintext");
        s.push_str("; injected3=knownplaintextknownplaintextknownplaintextknownplaintext");
        s.push_str("\r\n\r\n");
        s.into_bytes()
    }

    /// Builds the full request for a given secret cookie value.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::InvalidConfig`] if the provided value does not have
    /// the configured length.
    pub fn build(&self, cookie_value: &[u8]) -> Result<Vec<u8>, TlsError> {
        if cookie_value.len() != self.cookie_len {
            return Err(TlsError::InvalidConfig(format!(
                "cookie value has {} bytes, template expects {}",
                cookie_value.len(),
                self.cookie_len
            )));
        }
        let mut out = self.known_prefix();
        out.extend_from_slice(cookie_value);
        out.extend_from_slice(&self.known_suffix());
        Ok(out)
    }

    /// Byte offset of the first secret cookie byte within the request.
    pub fn cookie_offset(&self) -> usize {
        self.known_prefix().len()
    }

    /// Total request length.
    pub fn request_len(&self) -> usize {
        self.cookie_offset() + self.cookie_len + self.known_suffix().len()
    }

    /// Adjusts the paddings so that the cookie's first byte lands at keystream
    /// position `target mod 256` and stays there for every request of the
    /// connection, given that the first request's payload starts at keystream
    /// offset `payload_offset` (0-based) and that every record consumes
    /// `record_overhead` extra keystream bytes after the request (20 for the
    /// HMAC-SHA1 record MAC of the `RC4-SHA1` suite).
    ///
    /// The attacker learns the unpadded request length by observing one
    /// request (RC4 adds no padding, so lengths are visible on the wire) and
    /// then sets the paddings; this method performs that computation:
    /// path padding moves the cookie to the requested residue, cookie padding
    /// rounds the per-record keystream consumption (request plus MAC) to a
    /// multiple of 256 so the residue repeats on every following request.
    pub fn align_cookie(&mut self, payload_offset: u64, target: u8, record_overhead: usize) {
        let cookie_pos = payload_offset + self.cookie_offset() as u64; // 0-based keystream index
        let current = (cookie_pos % 256) as u16;
        let want = target as u16;
        let delta = ((256 + want - current) % 256) as usize;
        if delta > 0 {
            // The "?p=" marker itself adds 3 bytes the first time padding is used.
            if self.path_padding == 0 && delta >= 3 {
                self.path_padding = delta - 3;
            } else {
                self.path_padding += delta;
            }
        }
        let rem = (self.request_len() + record_overhead) % 256;
        if rem != 0 {
            self.alignment_padding += 256 - rem;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_layout() {
        let t = RequestTemplate::new("site.com", "auth", 16);
        let cookie = b"ABCDEFGHIJKLMNOP";
        let req = t.build(cookie).unwrap();
        let offset = t.cookie_offset();
        assert_eq!(&req[offset..offset + 16], cookie);
        // The prefix ends with "Cookie: auth=".
        let prefix = t.known_prefix();
        assert!(prefix.ends_with(b"Cookie: auth="));
        // The suffix starts right after the cookie and begins with the injected cookie.
        assert!(req[offset + 16..].starts_with(b"; injected1="));
        assert!(req.ends_with(b"\r\n\r\n"));
        assert_eq!(req.len(), t.request_len());
    }

    #[test]
    fn wrong_cookie_length_rejected() {
        let t = RequestTemplate::new("site.com", "auth", 16);
        assert!(t.build(b"short").is_err());
    }

    #[test]
    fn surrounding_known_plaintext_is_large_enough_for_absab() {
        let t = RequestTemplate::new("site.com", "auth", 16);
        // The paper uses gaps up to 128; we need at least gap+2 known bytes on a side.
        assert!(t.known_prefix().len() >= 130);
        assert!(t.known_suffix().len() >= 130);
    }

    /// The per-record keystream overhead of the RC4-SHA1 record MAC.
    const MAC_OVERHEAD: usize = 20;

    #[test]
    fn alignment_fixes_cookie_residue_and_request_size() {
        let mut t = RequestTemplate::new("site.com", "auth", 16);
        t.align_cookie(0, 0, MAC_OVERHEAD);
        // After alignment the per-record keystream consumption (request + MAC) is
        // a multiple of 256, so the cookie residue is identical for every request
        // on the connection.
        assert_eq!((t.request_len() + MAC_OVERHEAD) % 256, 0);
        let first_residue = (t.cookie_offset() as u64) % 256;
        let second_residue =
            ((t.request_len() + MAC_OVERHEAD) as u64 + t.cookie_offset() as u64) % 256;
        assert_eq!(first_residue, second_residue);
    }

    #[test]
    fn alignment_targets_requested_residue() {
        for target in [0u8, 7, 100, 255] {
            for offset in [0u64, 512, 1000] {
                let mut t = RequestTemplate::new("site.com", "auth", 16);
                t.align_cookie(offset, target, MAC_OVERHEAD);
                assert_eq!(
                    (t.request_len() + MAC_OVERHEAD) % 256,
                    0,
                    "target {target} offset {offset}"
                );
                let residue = ((offset + t.cookie_offset() as u64) % 256) as u8;
                // Padding can only grow the request, and the delta computation may
                // land 3 bytes long when the "?p=" marker is first introduced with
                // delta < 3; accept exact alignment or the documented wrap.
                assert!(
                    residue == target || usize::from(residue.wrapping_sub(target)) <= 3,
                    "target {target} offset {offset} got residue {residue}"
                );
            }
        }
    }
}
