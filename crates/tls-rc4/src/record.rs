//! The TLS record protocol with the `RC4-SHA1` cipher suite.
//!
//! After the handshake, both sides hold a 48-byte master secret. The key block
//! expanded from it provides an HMAC-SHA1 key and an RC4 key per direction.
//! Every application-data record is MACed (over an implicit 64-bit sequence
//! number, the record header and the plaintext) and then encrypted with the
//! connection's RC4 keystream — no per-record IV, no padding, which is exactly
//! why a fixed plaintext at a fixed position keeps hitting the same biased
//! keystream positions.

use crypto_prims::{hmac::Hmac, prf::TlsVersion, sha1::Sha1};
use rc4::Rc4;

use crate::TlsError;

/// TLS content type for application data.
pub const CONTENT_TYPE_APPLICATION_DATA: u8 = 23;

/// Length of the HMAC-SHA1 record MAC.
pub const MAC_LEN: usize = 20;

/// Length of the TLS record header (type, version, length).
pub const HEADER_LEN: usize = 5;

/// The key material for one direction of an `RC4_128_SHA` connection.
#[derive(Debug, Clone)]
pub struct DirectionKeys {
    /// HMAC-SHA1 key (20 bytes).
    pub mac_key: Vec<u8>,
    /// RC4 key (16 bytes).
    pub enc_key: Vec<u8>,
}

/// Key material for both directions, as produced by the key-block expansion.
#[derive(Debug, Clone)]
pub struct ConnectionKeys {
    /// Client-to-server keys.
    pub client: DirectionKeys,
    /// Server-to-client keys.
    pub server: DirectionKeys,
}

/// Expands the master secret into the `RC4_128_SHA` key block (RFC 5246 §6.3).
///
/// The key block layout is: client MAC key, server MAC key, client write key,
/// server write key (20 + 20 + 16 + 16 = 72 bytes).
pub fn derive_keys(
    version: TlsVersion,
    master_secret: &[u8; 48],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
) -> ConnectionKeys {
    let mut seed = Vec::with_capacity(64);
    seed.extend_from_slice(server_random);
    seed.extend_from_slice(client_random);
    let block = version.prf(master_secret, b"key expansion", &seed, 72);
    ConnectionKeys {
        client: DirectionKeys {
            mac_key: block[0..20].to_vec(),
            enc_key: block[40..56].to_vec(),
        },
        server: DirectionKeys {
            mac_key: block[20..40].to_vec(),
            enc_key: block[56..72].to_vec(),
        },
    }
}

/// Sending half of an RC4 record connection.
#[derive(Debug, Clone)]
pub struct RecordEncryptor {
    version: TlsVersion,
    cipher: Rc4,
    mac_key: Vec<u8>,
    sequence: u64,
    keystream_offset: u64,
}

impl RecordEncryptor {
    /// Creates the encryptor for one direction.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::InvalidConfig`] if the RC4 key length is invalid.
    pub fn new(version: TlsVersion, keys: &DirectionKeys) -> Result<Self, TlsError> {
        let cipher = Rc4::new(&keys.enc_key)
            .map_err(|e| TlsError::InvalidConfig(format!("bad RC4 key: {e}")))?;
        Ok(Self {
            version,
            cipher,
            mac_key: keys.mac_key.clone(),
            sequence: 0,
            keystream_offset: 0,
        })
    }

    /// Encrypts an application-data record and returns the full wire bytes
    /// (header followed by the encrypted payload and MAC).
    pub fn encrypt(&mut self, payload: &[u8]) -> Vec<u8> {
        let mac = self.record_mac(CONTENT_TYPE_APPLICATION_DATA, payload);
        let mut body = Vec::with_capacity(payload.len() + MAC_LEN);
        body.extend_from_slice(payload);
        body.extend_from_slice(&mac);
        self.cipher.apply_keystream(&mut body);
        self.keystream_offset += body.len() as u64;
        self.sequence += 1;

        let (major, minor) = self.version.wire_bytes();
        let mut record = Vec::with_capacity(HEADER_LEN + body.len());
        record.push(CONTENT_TYPE_APPLICATION_DATA);
        record.push(major);
        record.push(minor);
        record.extend_from_slice(&(body.len() as u16).to_be_bytes());
        record.extend_from_slice(&body);
        record
    }

    /// The RC4 keystream position (0-based) at which the *next* record's
    /// payload will start. The attack uses this to locate the cookie within the
    /// connection-wide keystream.
    pub fn keystream_offset(&self) -> u64 {
        self.keystream_offset
    }

    /// Number of records sent.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    fn record_mac(&self, content_type: u8, payload: &[u8]) -> Vec<u8> {
        let (major, minor) = self.version.wire_bytes();
        let mut mac = Hmac::<Sha1>::new(&self.mac_key);
        mac.update(&self.sequence.to_be_bytes());
        mac.update(&[content_type, major, minor]);
        mac.update(&(payload.len() as u16).to_be_bytes());
        mac.update(payload);
        mac.finalize()
    }
}

/// Receiving half of an RC4 record connection.
#[derive(Debug, Clone)]
pub struct RecordDecryptor {
    version: TlsVersion,
    cipher: Rc4,
    mac_key: Vec<u8>,
    sequence: u64,
}

impl RecordDecryptor {
    /// Creates the decryptor for one direction.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::InvalidConfig`] if the RC4 key length is invalid.
    pub fn new(version: TlsVersion, keys: &DirectionKeys) -> Result<Self, TlsError> {
        let cipher = Rc4::new(&keys.enc_key)
            .map_err(|e| TlsError::InvalidConfig(format!("bad RC4 key: {e}")))?;
        Ok(Self {
            version,
            cipher,
            mac_key: keys.mac_key.clone(),
            sequence: 0,
        })
    }

    /// Decrypts a full record (header included) and verifies its MAC.
    ///
    /// # Errors
    ///
    /// * [`TlsError::Malformed`] for truncated records or bad headers.
    /// * [`TlsError::RecordRejected`] when MAC verification fails.
    pub fn decrypt(&mut self, record: &[u8]) -> Result<Vec<u8>, TlsError> {
        if record.len() < HEADER_LEN + MAC_LEN {
            return Err(TlsError::Malformed("record too short".into()));
        }
        let content_type = record[0];
        let declared_len = u16::from_be_bytes([record[3], record[4]]) as usize;
        if record.len() != HEADER_LEN + declared_len {
            return Err(TlsError::Malformed(format!(
                "record length {} does not match header {}",
                record.len() - HEADER_LEN,
                declared_len
            )));
        }
        let mut body = record[HEADER_LEN..].to_vec();
        self.cipher.apply_keystream(&mut body);
        let payload_len = body.len() - MAC_LEN;
        let (payload, mac) = body.split_at(payload_len);

        let (major, minor) = self.version.wire_bytes();
        let mut expected = Hmac::<Sha1>::new(&self.mac_key);
        expected.update(&self.sequence.to_be_bytes());
        expected.update(&[content_type, major, minor]);
        expected.update(&(payload_len as u16).to_be_bytes());
        expected.update(payload);
        let expected = expected.finalize();
        self.sequence += 1;
        if expected != mac {
            return Err(TlsError::RecordRejected("HMAC mismatch"));
        }
        Ok(payload.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> ConnectionKeys {
        derive_keys(TlsVersion::Tls12, &[0x11; 48], &[0x22; 32], &[0x33; 32])
    }

    #[test]
    fn key_block_layout() {
        let k = keys();
        assert_eq!(k.client.mac_key.len(), 20);
        assert_eq!(k.server.mac_key.len(), 20);
        assert_eq!(k.client.enc_key.len(), 16);
        assert_eq!(k.server.enc_key.len(), 16);
        assert_ne!(k.client.enc_key, k.server.enc_key);
        assert_ne!(k.client.mac_key, k.server.mac_key);
        // Different master secrets give unrelated keys.
        let other = derive_keys(TlsVersion::Tls12, &[0x12; 48], &[0x22; 32], &[0x33; 32]);
        assert_ne!(k.client.enc_key, other.client.enc_key);
        // TLS 1.0 derivation differs from TLS 1.2.
        let v10 = derive_keys(TlsVersion::Tls10, &[0x11; 48], &[0x22; 32], &[0x33; 32]);
        assert_ne!(k.client.enc_key, v10.client.enc_key);
    }

    #[test]
    fn record_roundtrip_over_many_records() {
        let k = keys();
        let mut enc = RecordEncryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        let mut dec = RecordDecryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        for i in 0..50u32 {
            let payload = format!("GET /{i} HTTP/1.1\r\nHost: site.com\r\n\r\n");
            let record = enc.encrypt(payload.as_bytes());
            let back = dec.decrypt(&record).unwrap();
            assert_eq!(back, payload.as_bytes());
        }
        assert_eq!(enc.sequence(), 50);
    }

    #[test]
    fn keystream_offset_advances_by_payload_plus_mac() {
        let k = keys();
        let mut enc = RecordEncryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        assert_eq!(enc.keystream_offset(), 0);
        let _ = enc.encrypt(&[0u8; 100]);
        assert_eq!(enc.keystream_offset(), 120);
        let _ = enc.encrypt(&[0u8; 7]);
        assert_eq!(enc.keystream_offset(), 120 + 27);
    }

    #[test]
    fn tampering_is_detected() {
        let k = keys();
        let mut enc = RecordEncryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        let mut dec = RecordDecryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        let mut record = enc.encrypt(b"secret cookie inside");
        record[HEADER_LEN + 3] ^= 0x01;
        assert_eq!(
            dec.decrypt(&record).unwrap_err(),
            TlsError::RecordRejected("HMAC mismatch")
        );
    }

    #[test]
    fn replay_and_reorder_are_detected_via_sequence_numbers() {
        let k = keys();
        let mut enc = RecordEncryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        let r1 = enc.encrypt(b"first");
        let r2 = enc.encrypt(b"second");
        // Decrypting out of order desynchronizes both the keystream and the
        // sequence number, so the MAC must fail.
        let mut dec = RecordDecryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        assert!(dec.decrypt(&r2).is_err());
        let _ = r1;
    }

    #[test]
    fn malformed_records_rejected() {
        let k = keys();
        let mut dec = RecordDecryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        assert!(dec.decrypt(&[23, 3, 3, 0, 1]).is_err());
        // Declared length mismatch.
        let mut enc = RecordEncryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        let mut record = enc.encrypt(b"hello");
        record.truncate(record.len() - 1);
        assert!(matches!(dec.decrypt(&record), Err(TlsError::Malformed(_))));
    }

    #[test]
    fn ciphertext_prefix_equals_keystream_xor_plaintext() {
        // The attack's core assumption: record payload bytes are plaintext XOR
        // the connection RC4 keystream at the corresponding offset.
        let k = keys();
        let mut enc = RecordEncryptor::new(TlsVersion::Tls12, &k.client).unwrap();
        let payload = b"cookie=SECRETSECRET; other=x";
        let record = enc.encrypt(payload);
        let ks = rc4::keystream(&k.client.enc_key, payload.len()).unwrap();
        for (i, &p) in payload.iter().enumerate() {
            assert_eq!(record[HEADER_LEN + i], p ^ ks[i]);
        }
    }
}
