//! Property-based tests for the TLS record substrate and request templates.

use crypto_prims::prf::TlsVersion;
use proptest::prelude::*;
use tls_rc4::{
    http::RequestTemplate,
    record::{derive_keys, RecordDecryptor, RecordEncryptor, HEADER_LEN},
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Record streams round-trip for arbitrary secrets and payload sequences.
    #[test]
    fn record_stream_roundtrip(master in prop::array::uniform32(any::<u8>()),
                               payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..8)) {
        // Stretch the 32 arbitrary bytes into the 48-byte master secret.
        let mut secret = [0u8; 48];
        secret[..32].copy_from_slice(&master);
        secret[32..].copy_from_slice(&master[..16]);
        let keys = derive_keys(TlsVersion::Tls12, &secret, &[1u8; 32], &[2u8; 32]);
        let mut enc = RecordEncryptor::new(TlsVersion::Tls12, &keys.client).unwrap();
        let mut dec = RecordDecryptor::new(TlsVersion::Tls12, &keys.client).unwrap();
        for payload in &payloads {
            let record = enc.encrypt(payload);
            prop_assert_eq!(record.len(), HEADER_LEN + payload.len() + 20);
            let back = dec.decrypt(&record).unwrap();
            prop_assert_eq!(&back, payload);
        }
    }

    /// Tampering with any encrypted byte of a record is rejected.
    #[test]
    fn record_tampering_detected(master in prop::array::uniform32(any::<u8>()),
                                 payload in prop::collection::vec(any::<u8>(), 1..200),
                                 corrupt in any::<usize>(), bit in 0u8..8) {
        let mut secret = [0u8; 48];
        secret[..32].copy_from_slice(&master);
        let keys = derive_keys(TlsVersion::Tls10, &secret, &[3u8; 32], &[4u8; 32]);
        let mut enc = RecordEncryptor::new(TlsVersion::Tls10, &keys.server).unwrap();
        let mut dec = RecordDecryptor::new(TlsVersion::Tls10, &keys.server).unwrap();
        let mut record = enc.encrypt(&payload);
        let body_len = record.len() - HEADER_LEN;
        let idx = HEADER_LEN + (corrupt % body_len);
        record[idx] ^= 1 << bit;
        prop_assert!(dec.decrypt(&record).is_err());
    }

    /// Request templates: the cookie always sits where `cookie_offset` claims,
    /// surrounded by the declared known prefix/suffix, for arbitrary cookie
    /// lengths and paddings.
    #[test]
    fn template_layout(cookie_len in 1usize..64,
                       path_padding in 0usize..300,
                       alignment_padding in 0usize..300,
                       fill in any::<u8>()) {
        let mut template = RequestTemplate::new("example.org", "auth", cookie_len);
        template.path_padding = path_padding;
        template.alignment_padding = alignment_padding;
        let cookie = vec![fill | 0x20; cookie_len]; // printable-ish
        let request = template.build(&cookie).unwrap();
        let offset = template.cookie_offset();
        prop_assert_eq!(&request[offset..offset + cookie_len], &cookie[..]);
        prop_assert_eq!(&request[..offset], &template.known_prefix()[..]);
        prop_assert_eq!(&request[offset + cookie_len..], &template.known_suffix()[..]);
        prop_assert_eq!(request.len(), template.request_len());
    }

    /// Cookie alignment always makes the per-record keystream consumption
    /// (request plus record MAC) a multiple of 256, so the cookie residue is
    /// the same for every request on a persistent connection.
    #[test]
    fn alignment_always_multiple_of_256(cookie_len in 1usize..40,
                                        offset in 0u64..10_000,
                                        target in any::<u8>(),
                                        overhead in 0usize..64) {
        let mut template = RequestTemplate::new("example.org", "auth", cookie_len);
        template.align_cookie(offset, target, overhead);
        prop_assert_eq!((template.request_len() + overhead) % 256, 0);
    }
}
