//! Blocking client for the `reprod` protocol.
//!
//! One TCP connection, one request frame per call, typed results. The only
//! stateful call is [`Client::watch`], which keeps reading progress frames
//! until the job's terminal `end` frame arrives.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use serde::Value;

use crate::ledger::JobStatus;
use crate::protocol::{parse_response, JobSpec, Request};
use crate::ServeError;

/// A connected `reprod` client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One registry entry as reported by the server's `list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentInfo {
    /// Canonical experiment name.
    pub name: String,
    /// One-line description.
    pub summary: String,
    /// Accepted aliases.
    pub aliases: Vec<String>,
}

impl Client {
    /// Connects to a server at `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection fails.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let writer = TcpStream::connect(addr)
            .map_err(|e| ServeError::Io(format!("cannot connect to {addr}: {e}")))?;
        let reader = writer
            .try_clone()
            .map_err(|e| ServeError::Io(format!("cannot clone stream: {e}")))?;
        Ok(Client {
            reader: BufReader::new(reader),
            writer,
        })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Value, ServeError> {
        writeln!(self.writer, "{}", request.to_line())
            .and_then(|()| self.writer.flush())
            .map_err(|e| ServeError::Io(format!("cannot send request: {e}")))?;
        self.read_frame()
    }

    fn read_frame(&mut self) -> Result<Value, ServeError> {
        let line = self.read_line()?;
        parse_response(line.trim())
    }

    /// Reads one raw JSON frame without the `ok` envelope check — watch
    /// streams interleave `{"event": ...}` frames after the initial ack.
    fn read_event_frame(&mut self) -> Result<Value, ServeError> {
        let line = self.read_line()?;
        serde_json::from_str(line.trim())
            .map_err(|e| ServeError::Protocol(format!("malformed frame: {e}")))
    }

    fn read_line(&mut self) -> Result<String, ServeError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| ServeError::Io(format!("cannot read response: {e}")))?;
        if n == 0 {
            return Err(ServeError::Io("server closed the connection".to_string()));
        }
        Ok(line)
    }

    /// Lists the server's registered experiments.
    ///
    /// # Errors
    ///
    /// Transport errors as [`ServeError::Io`], server refusals as
    /// [`ServeError::Server`].
    pub fn list(&mut self) -> Result<Vec<ExperimentInfo>, ServeError> {
        let response = self.round_trip(&Request::List)?;
        let Ok(Value::Array(items)) = response.field("experiments") else {
            return Err(ServeError::Protocol(
                "list response lacks `experiments`".to_string(),
            ));
        };
        items
            .iter()
            .map(|item| {
                let name = str_field(item, "name")?;
                let summary = str_field(item, "summary")?;
                let aliases = match item.field("aliases") {
                    Ok(Value::Array(a)) => a
                        .iter()
                        .filter_map(|v| match v {
                            Value::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                Ok(ExperimentInfo {
                    name,
                    summary,
                    aliases,
                })
            })
            .collect()
    }

    /// Submits a job; returns its server-assigned ID.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] when admission is refused (unknown experiment,
    /// draining server), [`ServeError::Io`] on transport failure.
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, ServeError> {
        let response = self.round_trip(&Request::Submit(spec))?;
        u64_field(&response, "id")
    }

    /// Fetches every ledger record, oldest first, as wire values.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Protocol`] on transport or frame
    /// problems.
    pub fn jobs(&mut self) -> Result<Vec<Value>, ServeError> {
        let response = self.round_trip(&Request::Jobs)?;
        match response.field("jobs") {
            Ok(Value::Array(items)) => Ok(items.clone()),
            _ => Err(ServeError::Protocol(
                "jobs response lacks `jobs`".to_string(),
            )),
        }
    }

    /// Streams job `id`'s progress events from sequence `from`, invoking
    /// `on_event(seq, line)` per event, until the job is terminal. Returns
    /// the terminal status and how many events the server dropped beyond its
    /// per-job buffer.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] for unknown jobs, [`ServeError::Io`] /
    /// [`ServeError::Protocol`] on transport or frame problems.
    pub fn watch(
        &mut self,
        id: u64,
        from: u64,
        mut on_event: impl FnMut(u64, &str),
    ) -> Result<(JobStatus, u64), ServeError> {
        let _ack = self.round_trip(&Request::Watch { id, from })?;
        loop {
            let frame = self.read_event_frame()?;
            match frame.field("event") {
                Ok(Value::Str(kind)) if kind == "progress" => {
                    let seq = u64_field(&frame, "seq")?;
                    let line = str_field(&frame, "line")?;
                    on_event(seq, &line);
                }
                Ok(Value::Str(kind)) if kind == "end" => {
                    let status_name = str_field(&frame, "status")?;
                    let status = JobStatus::parse(&status_name).ok_or_else(|| {
                        ServeError::Protocol(format!("unknown terminal status `{status_name}`"))
                    })?;
                    let dropped = u64_field(&frame, "dropped").unwrap_or(0);
                    return Ok((status, dropped));
                }
                _ => {
                    return Err(ServeError::Protocol(
                        "watch stream produced an unknown frame".to_string(),
                    ))
                }
            }
        }
    }

    /// Fetches a done job's result document — the byte-identical output of
    /// the equivalent one-shot `repro run --json`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] when the job is not done (still queued or
    /// running, failed, cancelled, unknown).
    pub fn result(&mut self, id: u64) -> Result<String, ServeError> {
        let response = self.round_trip(&Request::Result {
            id,
            telemetry: false,
        })?;
        str_field(&response, "result")
    }

    /// [`Client::result`] plus the job's scheduling/runtime telemetry
    /// (queue/budget wait, run time, workers). The telemetry is `None` for
    /// jobs finished by a previous server incarnation; the result document
    /// itself is byte-identical to [`Client::result`]'s either way.
    ///
    /// # Errors
    ///
    /// Exactly [`Client::result`]'s errors.
    pub fn result_with_telemetry(
        &mut self,
        id: u64,
    ) -> Result<(String, Option<Value>), ServeError> {
        let response = self.round_trip(&Request::Result {
            id,
            telemetry: true,
        })?;
        let document = str_field(&response, "result")?;
        let telemetry = match response.field("telemetry") {
            Ok(Value::Null) | Err(_) => None,
            Ok(v) => Some(v.clone()),
        };
        Ok((document, telemetry))
    }

    /// Fetches a snapshot of the server's metrics registry (the `metrics`
    /// frame): counters, gauges and histograms across the executor, store,
    /// and serving layers.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Protocol`] on transport or frame
    /// problems.
    pub fn metrics(&mut self) -> Result<Value, ServeError> {
        let response = self.round_trip(&Request::Metrics)?;
        match response.field("metrics") {
            Ok(v) => Ok(v.clone()),
            Err(_) => Err(ServeError::Protocol(
                "metrics response lacks `metrics`".to_string(),
            )),
        }
    }

    /// Fetches the server's status document (draining flag, job counts,
    /// budget and single-flight stats).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Protocol`] on transport or frame
    /// problems.
    pub fn status(&mut self) -> Result<Value, ServeError> {
        self.round_trip(&Request::Status)
    }

    /// Cancels job `id`; returns its (possibly already terminal) status.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] for unknown jobs.
    pub fn cancel(&mut self, id: u64) -> Result<JobStatus, ServeError> {
        let response = self.round_trip(&Request::Cancel { id })?;
        let name = str_field(&response, "status")?;
        JobStatus::parse(&name)
            .ok_or_else(|| ServeError::Protocol(format!("unknown status `{name}`")))
    }

    /// Requests graceful drain and shutdown; blocks until the server has
    /// drained and returns its summary response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Protocol`] on transport or frame
    /// problems.
    pub fn shutdown(&mut self, deadline_ms: u64) -> Result<Value, ServeError> {
        self.round_trip(&Request::Shutdown { deadline_ms })
    }
}

fn str_field(value: &Value, name: &str) -> Result<String, ServeError> {
    match value.field(name) {
        Ok(Value::Str(s)) => Ok(s.clone()),
        _ => Err(ServeError::Protocol(format!(
            "response lacks string field `{name}`"
        ))),
    }
}

fn u64_field(value: &Value, name: &str) -> Result<u64, ServeError> {
    match value.field(name) {
        Ok(Value::UInt(n)) => Ok(*n),
        _ => Err(ServeError::Protocol(format!(
            "response lacks integer field `{name}`"
        ))),
    }
}
