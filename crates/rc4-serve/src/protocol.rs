//! The `reprod` wire protocol: newline-delimited JSON frames over TCP.
//!
//! Every request is one line holding a JSON object with a `"cmd"` string
//! field; every response is one line holding a JSON object with an `"ok"`
//! boolean. A `watch` request is the one streaming exception: the server
//! answers with any number of `{"event": "progress", ...}` lines followed by
//! exactly one `{"event": "end", ...}` line.
//!
//! The vendored serde subset drives the framing: requests and responses are
//! built and picked apart as [`serde::Value`] trees, so optional fields can
//! be omitted by clients (a missing field falls back to its documented
//! default instead of erroring).
//!
//! # Frame reference
//!
//! One section per frame type. Every JSON example below is produced **by
//! the serde types in this module inside a doc-test** — the assertions run
//! under `cargo test`, so the documented bytes cannot drift from what
//! [`Request::to_line`] actually puts on the wire.
//!
//! ## `list`
//!
//! Lists the registered experiments. No arguments.
//!
//! ```
//! use rc4_serve::protocol::Request;
//! let frame = Request::List;
//! assert_eq!(frame.to_line(), r#"{"cmd":"list"}"#);
//! assert_eq!(Request::parse(&frame.to_line()).unwrap(), frame);
//! ```
//!
//! The response's `experiments` field is an array of `{name, summary}`
//! objects.
//!
//! ## `submit`
//!
//! Admits a job; the response carries its assigned `id`. Only `name` is
//! required — `scale` defaults to `"laptop"`, `seed` to 0, `priority` to 0
//! (higher runs first, ties in submission order) and `workers` to 0 (the
//! server's default budget).
//!
//! ```
//! use rc4_serve::protocol::{JobSpec, Request};
//! let frame = Request::Submit(JobSpec {
//!     name: "fig8".into(),
//!     scale: "quick".into(),
//!     seed: 5,
//!     priority: 1,
//!     workers: 2,
//! });
//! assert_eq!(
//!     frame.to_line(),
//!     r#"{"cmd":"submit","name":"fig8","scale":"quick","seed":5,"priority":1,"workers":2}"#
//! );
//! // Minimal client frame: omitted fields take their documented defaults.
//! let minimal = Request::parse(r#"{"cmd":"submit","name":"fig8"}"#).unwrap();
//! assert_eq!(
//!     minimal,
//!     Request::Submit(JobSpec {
//!         name: "fig8".into(),
//!         scale: "laptop".into(),
//!         seed: 0,
//!         priority: 0,
//!         workers: 0,
//!     })
//! );
//! ```
//!
//! ## `jobs`
//!
//! Summarizes every job the server knows about, including ledger entries
//! reloaded from a previous incarnation.
//!
//! ```
//! use rc4_serve::protocol::Request;
//! assert_eq!(Request::Jobs.to_line(), r#"{"cmd":"jobs"}"#);
//! ```
//!
//! ## `watch`
//!
//! Streams a job's progress events from sequence number `from` (default 0,
//! i.e. replay from the start) until the job reaches a terminal state. The
//! response is the streaming exception described above: `progress` event
//! lines, then exactly one `end` line.
//!
//! ```
//! use rc4_serve::protocol::Request;
//! let frame = Request::Watch { id: 7, from: 12 };
//! assert_eq!(frame.to_line(), r#"{"cmd":"watch","id":7,"from":12}"#);
//! assert_eq!(Request::parse(r#"{"cmd":"watch","id":7}"#).unwrap(),
//!            Request::Watch { id: 7, from: 0 });
//! ```
//!
//! ## `result`
//!
//! Fetches the final result document of a completed job — the stored bytes,
//! verbatim, which is what makes served results byte-identical to one-shot
//! runs. With `telemetry: true` the response additionally carries the job's
//! scheduling/runtime telemetry as a *separate* field; the result document
//! itself is unaffected. Pre-telemetry clients omit the field.
//!
//! ```
//! use rc4_serve::protocol::Request;
//! let frame = Request::Result { id: 7, telemetry: true };
//! assert_eq!(frame.to_line(), r#"{"cmd":"result","id":7,"telemetry":true}"#);
//! assert_eq!(Request::parse(r#"{"cmd":"result","id":7}"#).unwrap(),
//!            Request::Result { id: 7, telemetry: false });
//! ```
//!
//! ## `status`
//!
//! Server introspection: accepting/draining state, queue depth, budget and
//! single-flight statistics.
//!
//! ```
//! use rc4_serve::protocol::Request;
//! assert_eq!(Request::Status.to_line(), r#"{"cmd":"status"}"#);
//! ```
//!
//! ## `metrics`
//!
//! A snapshot of the server's live metrics registry — counters, gauges and
//! histograms across the executor, store and serving layers (the
//! `{"counters": ..., "gauges": ..., "histograms": ...}` document shown by
//! `repro status --metrics`).
//!
//! ```
//! use rc4_serve::protocol::Request;
//! assert_eq!(Request::Metrics.to_line(), r#"{"cmd":"metrics"}"#);
//! ```
//!
//! ## `cancel`
//!
//! Cooperatively cancels a queued or running job.
//!
//! ```
//! use rc4_serve::protocol::Request;
//! assert_eq!(Request::Cancel { id: 3 }.to_line(), r#"{"cmd":"cancel","id":3}"#);
//! ```
//!
//! ## `shutdown`
//!
//! Graceful drain: admission stops, queued jobs are cancelled, running jobs
//! get `deadline_ms` (default 10000) to finish before being cooperatively
//! cancelled; the ledger is persisted and the process exits.
//!
//! ```
//! use rc4_serve::protocol::Request;
//! let frame = Request::Shutdown { deadline_ms: 500 };
//! assert_eq!(frame.to_line(), r#"{"cmd":"shutdown","deadline_ms":500}"#);
//! assert_eq!(Request::parse(r#"{"cmd":"shutdown"}"#).unwrap(),
//!            Request::Shutdown { deadline_ms: 10_000 });
//! ```
//!
//! ## Responses
//!
//! Every non-streaming response is one line with a boolean `ok`; failures
//! carry an `error` string. [`parse_response`] folds `ok: false` frames
//! into [`ServeError::Server`]:
//!
//! ```
//! use rc4_serve::protocol::{error_response, ok_response, parse_response};
//! use rc4_serve::ServeError;
//! use serde::Value;
//!
//! let ok = ok_response(vec![("id".into(), Value::UInt(9))]);
//! assert_eq!(ok, r#"{"ok":true,"id":9}"#);
//! assert_eq!(parse_response(&ok).unwrap().field("id").unwrap(), &Value::UInt(9));
//!
//! let err = error_response("queue is draining");
//! assert_eq!(err, r#"{"ok":false,"error":"queue is draining"}"#);
//! assert_eq!(parse_response(&err), Err(ServeError::Server("queue is draining".into())));
//! ```

use serde::Value;

use crate::ServeError;

/// A client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// List the registered experiments.
    List,
    /// Submit a job; responds with its assigned ID.
    Submit(JobSpec),
    /// Summarize every job the server knows about (including ledger entries
    /// reloaded from a previous incarnation).
    Jobs,
    /// Stream progress events of a job from sequence number `from` until it
    /// reaches a terminal state.
    Watch {
        /// Job ID.
        id: u64,
        /// First event sequence number to deliver (0 replays from the start).
        from: u64,
    },
    /// Fetch the final result document of a completed job.
    Result {
        /// Job ID.
        id: u64,
        /// Attach the job's scheduling/runtime telemetry as a separate
        /// `telemetry` field (the `result` document itself is unaffected).
        telemetry: bool,
    },
    /// Server introspection: queue, budget and single-flight statistics.
    Status,
    /// A snapshot of the server's metrics registry (counters, gauges,
    /// histograms across the executor, store, and serving layers).
    Metrics,
    /// Cancel a queued or running job.
    Cancel {
        /// Job ID.
        id: u64,
    },
    /// Graceful drain: stop admitting, finish or cancel running jobs within
    /// the deadline, persist the ledger, exit.
    Shutdown {
        /// Grace period in milliseconds before running jobs are cancelled.
        deadline_ms: u64,
    },
}

/// What to run and how, as carried by a `submit` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Registry name (or alias) of the experiment.
    pub name: String,
    /// Scale preset name (`quick` | `laptop` | `extended`).
    pub scale: String,
    /// Global seed mix (the `--seed` of a one-shot run).
    pub seed: u64,
    /// Scheduling priority; higher runs first, ties submit-order.
    pub priority: i64,
    /// Worker budget requested for this job (0 = the server default).
    pub workers: u64,
}

/// Reads an optional `u64` field with a default.
fn opt_u64(v: &Value, name: &str, default: u64) -> Result<u64, ServeError> {
    match v.field(name) {
        Ok(Value::UInt(n)) => Ok(*n),
        Ok(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
        Ok(Value::Null) | Err(_) => Ok(default),
        Ok(other) => Err(ServeError::Protocol(format!(
            "field `{name}` must be a non-negative integer, found {}",
            other.kind()
        ))),
    }
}

/// Reads an optional `i64` field with a default.
fn opt_i64(v: &Value, name: &str, default: i64) -> Result<i64, ServeError> {
    match v.field(name) {
        Ok(Value::Int(n)) => Ok(*n),
        Ok(Value::UInt(n)) => i64::try_from(*n)
            .map_err(|_| ServeError::Protocol(format!("field `{name}` out of range"))),
        Ok(Value::Null) | Err(_) => Ok(default),
        Ok(other) => Err(ServeError::Protocol(format!(
            "field `{name}` must be an integer, found {}",
            other.kind()
        ))),
    }
}

/// Reads an optional boolean field with a default.
fn opt_bool(v: &Value, name: &str, default: bool) -> Result<bool, ServeError> {
    match v.field(name) {
        Ok(Value::Bool(b)) => Ok(*b),
        Ok(Value::Null) | Err(_) => Ok(default),
        Ok(other) => Err(ServeError::Protocol(format!(
            "field `{name}` must be a boolean, found {}",
            other.kind()
        ))),
    }
}

/// Reads an optional string field with a default.
fn opt_str(v: &Value, name: &str, default: &str) -> Result<String, ServeError> {
    match v.field(name) {
        Ok(Value::Str(s)) => Ok(s.clone()),
        Ok(Value::Null) | Err(_) => Ok(default.to_string()),
        Ok(other) => Err(ServeError::Protocol(format!(
            "field `{name}` must be a string, found {}",
            other.kind()
        ))),
    }
}

/// Reads a required string field.
fn req_str(v: &Value, name: &str) -> Result<String, ServeError> {
    match v.field(name) {
        Ok(Value::Str(s)) => Ok(s.clone()),
        Ok(other) => Err(ServeError::Protocol(format!(
            "field `{name}` must be a string, found {}",
            other.kind()
        ))),
        Err(e) => Err(ServeError::Protocol(e.0)),
    }
}

/// Reads a required `u64` field.
fn req_u64(v: &Value, name: &str) -> Result<u64, ServeError> {
    match v.field(name) {
        Ok(Value::UInt(n)) => Ok(*n),
        Ok(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
        Ok(other) => Err(ServeError::Protocol(format!(
            "field `{name}` must be a non-negative integer, found {}",
            other.kind()
        ))),
        Err(e) => Err(ServeError::Protocol(e.0)),
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] for malformed JSON, a missing/unknown
    /// `cmd`, or ill-typed fields.
    pub fn parse(line: &str) -> Result<Self, ServeError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| ServeError::Protocol(format!("malformed request JSON: {e}")))?;
        let cmd = req_str(&value, "cmd")?;
        match cmd.as_str() {
            "list" => Ok(Request::List),
            "submit" => Ok(Request::Submit(JobSpec {
                name: req_str(&value, "name")?,
                scale: opt_str(&value, "scale", "laptop")?,
                seed: opt_u64(&value, "seed", 0)?,
                priority: opt_i64(&value, "priority", 0)?,
                workers: opt_u64(&value, "workers", 0)?,
            })),
            "jobs" => Ok(Request::Jobs),
            "watch" => Ok(Request::Watch {
                id: req_u64(&value, "id")?,
                from: opt_u64(&value, "from", 0)?,
            }),
            "result" => Ok(Request::Result {
                id: req_u64(&value, "id")?,
                telemetry: opt_bool(&value, "telemetry", false)?,
            }),
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "cancel" => Ok(Request::Cancel {
                id: req_u64(&value, "id")?,
            }),
            "shutdown" => Ok(Request::Shutdown {
                deadline_ms: opt_u64(&value, "deadline_ms", 10_000)?,
            }),
            other => Err(ServeError::Protocol(format!("unknown cmd `{other}`"))),
        }
    }

    /// Serializes the request to its one-line wire form.
    pub fn to_line(&self) -> String {
        let fields = match self {
            Request::List => vec![cmd("list")],
            Request::Submit(spec) => vec![
                cmd("submit"),
                ("name".into(), Value::Str(spec.name.clone())),
                ("scale".into(), Value::Str(spec.scale.clone())),
                ("seed".into(), Value::UInt(spec.seed)),
                ("priority".into(), Value::Int(spec.priority)),
                ("workers".into(), Value::UInt(spec.workers)),
            ],
            Request::Jobs => vec![cmd("jobs")],
            Request::Watch { id, from } => vec![
                cmd("watch"),
                ("id".into(), Value::UInt(*id)),
                ("from".into(), Value::UInt(*from)),
            ],
            Request::Result { id, telemetry } => vec![
                cmd("result"),
                ("id".into(), Value::UInt(*id)),
                ("telemetry".into(), Value::Bool(*telemetry)),
            ],
            Request::Status => vec![cmd("status")],
            Request::Metrics => vec![cmd("metrics")],
            Request::Cancel { id } => vec![cmd("cancel"), ("id".into(), Value::UInt(*id))],
            Request::Shutdown { deadline_ms } => vec![
                cmd("shutdown"),
                ("deadline_ms".into(), Value::UInt(*deadline_ms)),
            ],
        };
        serde_json::to_string(&Value::Object(fields)).expect("request serializes")
    }
}

fn cmd(name: &str) -> (String, Value) {
    ("cmd".into(), Value::Str(name.into()))
}

/// Builds a success response from extra fields.
pub fn ok_response(mut fields: Vec<(String, Value)>) -> String {
    let mut all = vec![("ok".to_string(), Value::Bool(true))];
    all.append(&mut fields);
    serde_json::to_string(&Value::Object(all)).expect("response serializes")
}

/// Builds an error response.
pub fn error_response(message: &str) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(message.to_string())),
    ]))
    .expect("response serializes")
}

/// Parses a response line into its `Value` tree, folding `ok: false` frames
/// into [`ServeError::Server`].
///
/// # Errors
///
/// [`ServeError::Protocol`] for malformed frames, [`ServeError::Server`] when
/// the server reported a failure.
pub fn parse_response(line: &str) -> Result<Value, ServeError> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| ServeError::Protocol(format!("malformed response JSON: {e}")))?;
    match value.field("ok") {
        Ok(Value::Bool(true)) => Ok(value),
        Ok(Value::Bool(false)) => {
            let message = match value.field("error") {
                Ok(Value::Str(s)) => s.clone(),
                _ => "unspecified server error".to_string(),
            };
            Err(ServeError::Server(message))
        }
        _ => Err(ServeError::Protocol(
            "response lacks a boolean `ok` field".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_wire_form() {
        let requests = vec![
            Request::List,
            Request::Submit(JobSpec {
                name: "fig8".into(),
                scale: "quick".into(),
                seed: 42,
                priority: -3,
                workers: 2,
            }),
            Request::Jobs,
            Request::Watch { id: 7, from: 12 },
            Request::Result {
                id: 7,
                telemetry: false,
            },
            Request::Result {
                id: 8,
                telemetry: true,
            },
            Request::Status,
            Request::Metrics,
            Request::Cancel { id: 3 },
            Request::Shutdown { deadline_ms: 500 },
        ];
        for request in requests {
            let line = request.to_line();
            assert!(!line.contains('\n'), "frames must be single lines");
            assert_eq!(Request::parse(&line).unwrap(), request);
        }
    }

    #[test]
    fn submit_defaults_optional_fields() {
        let parsed = Request::parse(r#"{"cmd":"submit","name":"fig8"}"#).unwrap();
        assert_eq!(
            parsed,
            Request::Submit(JobSpec {
                name: "fig8".into(),
                scale: "laptop".into(),
                seed: 0,
                priority: 0,
                workers: 0,
            })
        );
    }

    #[test]
    fn result_defaults_telemetry_off() {
        // Pre-telemetry clients omit the field; they must keep working.
        let parsed = Request::parse(r#"{"cmd":"result","id":7}"#).unwrap();
        assert_eq!(
            parsed,
            Request::Result {
                id: 7,
                telemetry: false,
            }
        );
        assert!(Request::parse(r#"{"cmd":"result","id":7,"telemetry":3}"#).is_err());
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        assert!(matches!(
            Request::parse("not json"),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"fly"}"#),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"submit"}"#),
            Err(ServeError::Protocol(_)),
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"submit","name":"fig8","seed":"high"}"#),
            Err(ServeError::Protocol(_)),
        ));
    }

    #[test]
    fn response_helpers_round_trip() {
        let ok = ok_response(vec![("id".into(), Value::UInt(9))]);
        let value = parse_response(&ok).unwrap();
        assert_eq!(value.field("id").unwrap(), &Value::UInt(9));

        let err = error_response("queue is draining");
        assert_eq!(
            parse_response(&err),
            Err(ServeError::Server("queue is draining".into()))
        );
        assert!(matches!(
            parse_response(r#"{"id": 9}"#),
            Err(ServeError::Protocol(_))
        ));
    }
}
