//! Attack-as-a-service: the resident `reprod` job server (ROADMAP item 2).
//!
//! Every reproduction used to be a one-shot CLI process. This crate promotes
//! the `rc4-attacks` Experiment registry + `ExperimentContext` into a
//! long-lived server so many clients can share one machine and one dataset
//! cache:
//!
//! * [`protocol`] — newline-delimited JSON frames over TCP (`std::net` plus
//!   the vendored serde subset; no async runtime in this offline workspace).
//! * [`queue`] — a blocking priority queue ordering admission: higher
//!   priority first, submission order within a priority.
//! * [`server`] — the resident process: per-connection handler threads, a
//!   scheduler thread placing jobs onto the shared `rc4-exec` pool under
//!   per-job worker budgets ([`rc4_exec::Budget`]), per-job cooperative
//!   cancellation, throttled progress events streamable through `watch`, a
//!   server-owned single-flight dataset cache
//!   ([`rc4_store::SingleFlight`]), and graceful drain on `shutdown`.
//! * [`ledger`] — the persistent JSON run ledger (job ID, spec, status,
//!   result path), rewritten atomically on every transition so a restarted
//!   server reports completed-job results from previous incarnations.
//! * [`client`] — the blocking client used by the `repro` subcommands
//!   (`serve`, `submit`, `jobs`, `watch`, `result`, `shutdown`).
//!
//! # Determinism contract
//!
//! A job's result document is the byte-identical output of the one-shot
//! `repro run <name> --scale <s> --seed <n> --json` invocation, whatever the
//! server's worker budget or client concurrency: experiments treat workers
//! as a pure thread budget (the PR-5 contract), and the server stores
//! exactly the bytes the CLI would print.
//!
//! # Signals
//!
//! Graceful drain is triggered by the `shutdown` protocol request. A real
//! SIGTERM handler would need `libc`/`signal_hook`, which this offline
//! workspace does not vendor (and `unsafe_code` is denied workspace-wide);
//! front a production deployment with a supervisor that translates SIGTERM
//! into a `shutdown` frame.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod ledger;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::Client;
pub use ledger::{JobRecord, JobStatus, RunLedger};
pub use protocol::{JobSpec, Request};
pub use queue::JobQueue;
pub use server::{Server, ServerConfig};

/// Errors of the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A file-system or socket failure, with context.
    Io(String),
    /// A malformed frame, ledger, or field.
    Protocol(String),
    /// An `ok: false` response reported by the server.
    Server(String),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "io error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}
