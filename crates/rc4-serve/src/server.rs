//! The resident `reprod` server.
//!
//! One process, four kinds of threads:
//!
//! * the **accept loop** (the caller of [`Server::run`]) hands each TCP
//!   connection to a handler thread;
//! * **handler threads** parse newline-delimited request frames and answer
//!   them; `watch` handlers long-poll the job's event log; the `shutdown`
//!   handler performs the whole graceful drain before replying;
//! * the **scheduler thread** pops the admission queue in priority order,
//!   reserves each job's worker budget from the shared [`rc4_exec::Budget`]
//!   (blocking while the pool is full, so admission order is strict), and
//!   spawns a job thread per grant;
//! * **job threads** build the job's [`ExperimentContext`] — seed, leased
//!   worker budget, per-job cancellation, event sink, shared dataset cache +
//!   single-flight table — run the experiment, persist the result document,
//!   and record the terminal state in the run ledger.
//!
//! Every job transition is persisted to the ledger *before* it becomes
//! visible to clients, so the on-disk account is never behind the wire one.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rc4_attacks::{
    context::{CancelHandle, EventSink, ExperimentContext, ProgressEvent},
    experiments::Scale,
    registry::Registry,
};
use rc4_exec::Budget;
use rc4_store::{DatasetCache, SingleFlight};
use serde::Value;

use crate::ledger::{JobRecord, JobStatus, RunLedger};
use crate::protocol::{error_response, ok_response, JobSpec, Request};
use crate::queue::JobQueue;
use crate::ServeError;

/// The event file of job `id` under `state_dir`: one `{"seq": n, "line": s}`
/// JSON object per line, appended as the job emits progress. Spilling to disk
/// keeps memory flat however long a job runs and lets `watch` replay a
/// finished job's events even after a server restart.
pub fn events_path(state_dir: &Path, id: u64) -> PathBuf {
    state_dir.join("events").join(format!("job-{id}.jsonl"))
}

/// Reads the persisted events with sequence number `>= from` of one event
/// file. A missing file reads as empty (a job that never emitted anything);
/// malformed lines (torn final write after a crash) are skipped.
pub fn read_events_from(path: &Path, from: u64) -> Vec<(u64, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| {
            let v: Value = serde_json::from_str(l).ok()?;
            let Ok(Value::UInt(seq)) = v.field("seq") else {
                return None;
            };
            let Ok(Value::Str(line)) = v.field("line") else {
                return None;
            };
            (*seq >= from).then(|| (*seq, line.clone()))
        })
        .collect()
}

/// Static configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// State directory: run ledger, result documents, and the `addr` file.
    pub state_dir: PathBuf,
    /// Total worker slots shared by all concurrently running jobs.
    pub budget: usize,
    /// Worker budget of a job that does not request one (`workers: 0`).
    pub default_workers: usize,
    /// Dataset cache directory shared by all jobs (single-flight protected).
    /// `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl ServerConfig {
    /// A config serving `state_dir` on an ephemeral localhost port with the
    /// machine's parallelism as the budget and a shared cache inside the
    /// state directory.
    pub fn for_state_dir(state_dir: impl Into<PathBuf>) -> Self {
        let state_dir = state_dir.into();
        let budget = std::thread::available_parallelism().map_or(4, usize::from);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: Some(state_dir.join("cache")),
            state_dir,
            budget,
            default_workers: 1,
        }
    }
}

/// The append-only, disk-backed event log of one job plus its terminal
/// latch; `watch` handlers block on it. Events are persisted to the job's
/// [`events_path`] file as they arrive (memory use stays flat for any run
/// length) and survive a server restart for post-hoc `watch` replay.
#[derive(Debug)]
pub struct JobEvents {
    state: Mutex<EventLog>,
    changed: Condvar,
}

#[derive(Debug)]
struct EventLog {
    path: PathBuf,
    /// Events successfully persisted (the next sequence number).
    count: u64,
    /// Events lost to write failures (full disk, revoked permissions).
    dropped: u64,
    terminal: Option<JobStatus>,
}

/// What a `watch` poll yields: fresh `(seq, line)` events, and — once all
/// stored events are delivered — the terminal status with the dropped count.
type EventBatch = (Vec<(u64, String)>, Option<(JobStatus, u64)>);

impl JobEvents {
    /// Creates the log, truncating any stale file under the same path.
    fn create(path: PathBuf) -> Self {
        // An empty file up front means "no events yet" and "no events ever"
        // read identically after a restart.
        let _ = std::fs::write(&path, "");
        JobEvents {
            state: Mutex::new(EventLog {
                path,
                count: 0,
                dropped: 0,
                terminal: None,
            }),
            changed: Condvar::new(),
        }
    }

    fn push(&self, line: String) {
        let mut state = self.state.lock().expect("events lock poisoned");
        if state.terminal.is_some() {
            return;
        }
        let frame = serde_json::to_string(&Value::Object(vec![
            ("seq".into(), Value::UInt(state.count)),
            ("line".into(), Value::Str(line)),
        ]))
        .expect("event record serializes");
        let appended = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&state.path)
            .and_then(|mut f| writeln!(f, "{frame}"));
        match appended {
            Ok(()) => state.count += 1,
            Err(_) => state.dropped += 1,
        }
        drop(state);
        self.changed.notify_all();
    }

    fn finish(&self, status: JobStatus) {
        let mut state = self.state.lock().expect("events lock poisoned");
        if state.terminal.is_none() {
            state.terminal = Some(status);
        }
        drop(state);
        self.changed.notify_all();
    }

    /// Blocks until events past `from` exist or the job is terminal; returns
    /// the new events (with their sequence numbers, re-read from the event
    /// file) and, once everything stored has been delivered, the terminal
    /// status + dropped count.
    fn wait_from(&self, from: u64) -> EventBatch {
        let mut state = self.state.lock().expect("events lock poisoned");
        loop {
            if state.count > from {
                // Writers serialize on the same lock, so the file holds
                // exactly `count` complete records here.
                let fresh = read_events_from(&state.path, from);
                if !fresh.is_empty() {
                    return (fresh, None);
                }
            }
            if let Some(status) = state.terminal {
                return (Vec::new(), Some((status, state.dropped)));
            }
            state = self.changed.wait(state).expect("events lock poisoned");
        }
    }
}

/// Forwards a job's context events into its [`JobEvents`] log, rendered.
struct JobSink {
    events: Arc<JobEvents>,
}

impl EventSink for JobSink {
    fn on_event(&self, event: &ProgressEvent<'_>) {
        self.events.push(event.render());
    }
}

/// A live (this-incarnation) job: its cancellation handle, event log, and
/// per-job telemetry.
struct JobHandle {
    cancel: CancelHandle,
    events: Arc<JobEvents>,
    /// When the job was admitted; queue wait is measured against this.
    submitted_at: Instant,
    /// Scheduling/runtime telemetry recorded when the job finishes; exposed
    /// through `result` with `telemetry: true`. Never part of the result
    /// document itself (which stays byte-identical to the one-shot CLI).
    telemetry: Mutex<Option<Value>>,
}

struct Shared {
    config: ServerConfig,
    addr: SocketAddr,
    queue: JobQueue,
    budget: Arc<Budget>,
    flights: Arc<SingleFlight>,
    cache: Option<Arc<DatasetCache>>,
    ledger: Mutex<RunLedger>,
    jobs: Mutex<HashMap<u64, Arc<JobHandle>>>,
    /// Counter + condvar pair: bumped on every ledger transition so drain
    /// can wait for "all jobs terminal" without polling.
    transitions: Mutex<u64>,
    transitioned: Condvar,
    stop: AtomicBool,
}

impl Shared {
    /// Applies `mutate` to job `id`'s ledger record, persists, and wakes
    /// transition waiters. Returns the updated record.
    fn transition(
        &self,
        id: u64,
        mutate: impl FnOnce(&mut JobRecord),
    ) -> Result<JobRecord, ServeError> {
        let updated = {
            let mut ledger = self.ledger.lock().expect("ledger lock poisoned");
            let mut record = ledger
                .get(id)
                .cloned()
                .ok_or_else(|| ServeError::Protocol(format!("no job {id}")))?;
            mutate(&mut record);
            ledger.update(record.clone())?;
            record
        };
        if updated.status.is_terminal() {
            if let Some(handle) = self.jobs.lock().expect("jobs lock poisoned").get(&id) {
                handle.events.finish(updated.status);
            }
        }
        let mut count = self.transitions.lock().expect("transition lock poisoned");
        *count += 1;
        drop(count);
        self.transitioned.notify_all();
        Ok(updated)
    }

    fn record(&self, id: u64) -> Option<JobRecord> {
        self.ledger
            .lock()
            .expect("ledger lock poisoned")
            .get(id)
            .cloned()
    }

    fn all_terminal(&self) -> bool {
        self.ledger
            .lock()
            .expect("ledger lock poisoned")
            .jobs()
            .iter()
            .all(|j| j.status.is_terminal())
    }

    fn status_counts(&self) -> Vec<(JobStatus, u64)> {
        let ledger = self.ledger.lock().expect("ledger lock poisoned");
        [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ]
        .into_iter()
        .map(|s| {
            (
                s,
                ledger.jobs().iter().filter(|j| j.status == s).count() as u64,
            )
        })
        .collect()
    }
}

/// The resident job server. [`Server::bind`] then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket, prepares the state directory (ledger,
    /// results, `addr` file) and the shared cache, and cancels any
    /// non-terminal ledger records orphaned by a previous incarnation.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] for socket/directory failures,
    /// [`ServeError::Protocol`] for a corrupt ledger.
    pub fn bind(config: ServerConfig) -> Result<Self, ServeError> {
        std::fs::create_dir_all(&config.state_dir).map_err(|e| {
            ServeError::Io(format!(
                "cannot create state dir {}: {e}",
                config.state_dir.display()
            ))
        })?;
        std::fs::create_dir_all(config.state_dir.join("results"))
            .map_err(|e| ServeError::Io(format!("cannot create results dir: {e}")))?;
        std::fs::create_dir_all(config.state_dir.join("events"))
            .map_err(|e| ServeError::Io(format!("cannot create events dir: {e}")))?;
        // The server is a resident process whose whole point is shared
        // observation; metrics are on for its lifetime (tracing stays
        // opt-in via `--trace`). Registry updates are atomic counter writes,
        // so experiment results are unaffected.
        rc4_obs::metrics::enable();
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Io(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("cannot read bound address: {e}")))?;
        // The addr file lets clients (and CI scripts) find an ephemeral port.
        std::fs::write(config.state_dir.join("addr"), format!("{addr}\n"))
            .map_err(|e| ServeError::Io(format!("cannot write addr file: {e}")))?;

        let mut ledger = RunLedger::open(config.state_dir.join("ledger.json"))?;
        // A previous incarnation that died mid-job leaves queued/running
        // records behind; report them as cancelled rather than pretending
        // they are still alive somewhere.
        let orphans: Vec<JobRecord> = ledger
            .jobs()
            .iter()
            .filter(|j| !j.status.is_terminal())
            .cloned()
            .collect();
        for mut record in orphans {
            record.status = JobStatus::Cancelled;
            record.error = Some("orphaned by server restart".to_string());
            ledger.update(record)?;
        }

        let cache = match &config.cache_dir {
            Some(dir) => Some(Arc::new(DatasetCache::open(dir).map_err(|e| {
                ServeError::Io(format!("cannot open cache dir {}: {e}", dir.display()))
            })?)),
            None => None,
        };
        let budget = Arc::new(Budget::new(config.budget));
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                addr,
                queue: JobQueue::new(),
                budget,
                flights: Arc::new(SingleFlight::new()),
                cache,
                ledger: Mutex::new(ledger),
                jobs: Mutex::new(HashMap::new()),
                transitions: Mutex::new(0),
                transitioned: Condvar::new(),
                stop: AtomicBool::new(false),
                config,
            }),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a `shutdown` request completes its drain. Blocks the
    /// calling thread for the server's whole lifetime.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the accept loop fails irrecoverably.
    pub fn run(self) -> Result<(), ServeError> {
        let scheduler = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || scheduler_loop(&shared))
        };
        for stream in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || handle_connection(&shared, stream));
                }
                Err(e) => {
                    // A single failed accept (e.g. the peer vanished between
                    // SYN and accept) must not kill the server.
                    eprintln!("reprod: accept failed: {e}");
                }
            }
        }
        scheduler
            .join()
            .map_err(|_| ServeError::Io("scheduler thread panicked".to_string()))?;
        Ok(())
    }
}

/// The scheduler: strict admission order (priority, then submission), one
/// budget reservation per job, one thread per running job.
fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        // Don't pick a job until at least one slot is free: popping while the
        // pool is full would lock in today's best job and let a higher
        // priority submitted meanwhile be overtaken. The scheduler is the
        // budget's only acquirer, so probe-then-release cannot race.
        drop(shared.budget.acquire_owned(1));
        let Some(id) = shared.queue.pop_next() else {
            return;
        };
        let Some(record) = shared.record(id) else {
            continue;
        };
        if record.status.is_terminal() {
            // Cancelled while queued (the cancel handler already recorded it).
            continue;
        }
        let budget_wait = Instant::now();
        let lease = shared.budget.acquire_owned(record.workers as usize);
        let budget_wait_us = budget_wait.elapsed().as_micros() as u64;
        rc4_obs::metrics::observe_us("serve.budget_wait_us", budget_wait_us);
        if shared.queue.is_draining() {
            // Drain started while this job waited for capacity: never start
            // new work past the drain point.
            let _ = shared.transition(id, |r| {
                r.status = JobStatus::Cancelled;
                r.error = Some("cancelled by drain before start".to_string());
            });
            continue;
        }
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            run_job(&shared, id, lease.workers(), budget_wait_us);
            drop(lease);
        });
    }
}

/// Executes one job under its leased worker budget and records the outcome.
fn run_job(shared: &Arc<Shared>, id: u64, workers: usize, budget_wait_us: u64) {
    let Some(record) = shared.record(id) else {
        return;
    };
    let handle = shared
        .jobs
        .lock()
        .expect("jobs lock poisoned")
        .get(&id)
        .cloned();
    let Some(handle) = handle else {
        return;
    };
    if handle.cancel.is_cancelled() {
        let _ = shared.transition(id, |r| r.status = JobStatus::Cancelled);
        return;
    }
    let queue_wait_us = handle.submitted_at.elapsed().as_micros() as u64;
    rc4_obs::metrics::observe_us("serve.queue_wait_us", queue_wait_us);
    let _ = shared.transition(id, |r| r.status = JobStatus::Running);

    let _span = rc4_obs::Span::enter_with(
        "serve.job",
        rc4_obs::kv! {
            "id" => id,
            "name" => &record.name,
        },
    );
    let run_start = Instant::now();
    let outcome = execute_experiment(shared, &record, workers, &handle);
    let run_us = run_start.elapsed().as_micros() as u64;
    rc4_obs::metrics::observe_us("serve.run_us", run_us);
    let status_counter = match &outcome {
        Ok(_) => "serve.jobs.done",
        Err(ServeError::Server(msg)) if msg == "cancelled" => "serve.jobs.cancelled",
        Err(_) => "serve.jobs.failed",
    };
    rc4_obs::metrics::counter_add(status_counter, 1);
    *handle.telemetry.lock().expect("telemetry lock poisoned") = Some(Value::Object(vec![
        ("queue_wait_us".into(), Value::UInt(queue_wait_us)),
        ("budget_wait_us".into(), Value::UInt(budget_wait_us)),
        ("run_us".into(), Value::UInt(run_us)),
        ("workers".into(), Value::UInt(workers as u64)),
    ]));
    let _ = match outcome {
        Ok(result_path) => shared.transition(id, |r| {
            r.status = JobStatus::Done;
            r.result_path = Some(result_path.clone());
        }),
        Err(ServeError::Server(msg)) if msg == "cancelled" => {
            shared.transition(id, |r| r.status = JobStatus::Cancelled)
        }
        Err(e) => shared.transition(id, |r| {
            r.status = JobStatus::Failed;
            r.error = Some(e.to_string());
        }),
    };
}

/// Runs the experiment of `record` and persists its result document; the
/// document holds exactly the bytes `repro run <name> --json` would print.
fn execute_experiment(
    shared: &Arc<Shared>,
    record: &JobRecord,
    workers: usize,
    handle: &JobHandle,
) -> Result<String, ServeError> {
    let registry = Registry::with_defaults();
    let mut experiment = registry
        .create(&record.name)
        .map_err(|e| ServeError::Server(e.to_string()))?;
    let scale = Scale::parse(&record.scale)
        .ok_or_else(|| ServeError::Server(format!("unknown scale `{}`", record.scale)))?;
    experiment.apply_scale(scale);

    let mut ctx = ExperimentContext::new()
        .with_seed(record.seed)
        .with_workers(workers)
        .with_cancel(handle.cancel.clone())
        .with_sink(Arc::new(JobSink {
            events: Arc::clone(&handle.events),
        }))
        .with_flights(Arc::clone(&shared.flights));
    if let Some(cache) = &shared.cache {
        ctx = ctx.with_cache(Arc::clone(cache));
    }

    let report = experiment.run_observed(&ctx).map_err(|e| {
        if e == rc4_attacks::ExperimentError::Cancelled {
            ServeError::Server("cancelled".to_string())
        } else {
            ServeError::Server(e.to_string())
        }
    })?;
    // Byte-identity with the one-shot CLI: `repro run` prints
    // `to_string_pretty` of the Vec of reports plus a trailing newline.
    let document = format!(
        "{}\n",
        serde_json::to_string_pretty(&vec![report]).expect("report serializes")
    );
    let path = shared
        .config
        .state_dir
        .join("results")
        .join(format!("job-{}.json", record.id));
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, &document)
        .map_err(|e| ServeError::Io(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, &path)
        .map_err(|e| ServeError::Io(format!("cannot rename {}: {e}", tmp.display())))?;
    Ok(path.display().to_string())
}

/// One connection: serve request frames until EOF (or the shutdown frame).
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(peer_reader) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer_reader);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let shutdown = matches!(Request::parse(line.trim()), Ok(Request::Shutdown { .. }));
        let ok = dispatch(shared, line.trim(), &mut writer);
        if !ok {
            return;
        }
        if shutdown {
            // Drain finished and the response is out: wake the accept loop.
            shared.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.addr);
            return;
        }
    }
}

/// Parses and answers one frame; `false` ends the connection.
fn dispatch(shared: &Arc<Shared>, line: &str, writer: &mut TcpStream) -> bool {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(e) => return send(writer, &error_response(&e.to_string())),
    };
    match request {
        Request::List => {
            let registry = Registry::with_defaults();
            let entries: Vec<Value> = registry
                .entries()
                .iter()
                .map(|e| {
                    Value::Object(vec![
                        ("name".into(), Value::Str(e.name().into())),
                        ("summary".into(), Value::Str(e.summary().into())),
                        (
                            "aliases".into(),
                            Value::Array(
                                e.aliases()
                                    .iter()
                                    .map(|a| Value::Str((*a).into()))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            send(
                writer,
                &ok_response(vec![("experiments".into(), Value::Array(entries))]),
            )
        }
        Request::Submit(spec) => match submit(shared, &spec) {
            Ok(record) => send(
                writer,
                &ok_response(vec![
                    ("id".into(), Value::UInt(record.id)),
                    ("name".into(), Value::Str(record.name)),
                    ("workers".into(), Value::UInt(record.workers)),
                ]),
            ),
            Err(e) => send(writer, &error_response(&e.to_string())),
        },
        Request::Jobs => {
            let records: Vec<Value> = shared
                .ledger
                .lock()
                .expect("ledger lock poisoned")
                .jobs()
                .iter()
                .map(JobRecord::to_wire)
                .collect();
            send(
                writer,
                &ok_response(vec![("jobs".into(), Value::Array(records))]),
            )
        }
        Request::Watch { id, from } => watch(shared, id, from, writer),
        Request::Result { id, telemetry } => match job_result(shared, id) {
            Ok((record, document)) => {
                let mut fields = vec![
                    ("id".into(), Value::UInt(id)),
                    ("status".into(), Value::Str(record.status.name().into())),
                    ("result".into(), Value::Str(document)),
                ];
                if telemetry {
                    // Advisory scheduling/runtime numbers, deliberately a
                    // separate field: the `result` document above stays
                    // byte-identical to the one-shot CLI with or without it.
                    // Jobs from a previous incarnation have no live handle,
                    // so their telemetry reads as null.
                    let recorded = shared
                        .jobs
                        .lock()
                        .expect("jobs lock poisoned")
                        .get(&id)
                        .and_then(|h| h.telemetry.lock().expect("telemetry lock poisoned").clone());
                    fields.push(("telemetry".into(), recorded.unwrap_or(Value::Null)));
                }
                send(writer, &ok_response(fields))
            }
            Err(e) => send(writer, &error_response(&e.to_string())),
        },
        Request::Metrics => {
            let snapshot = rc4_obs::metrics::snapshot();
            send(
                writer,
                &ok_response(vec![("metrics".into(), snapshot.to_value())]),
            )
        }
        Request::Status => {
            let budget = shared.budget.stats();
            let flights = shared.flights.stats();
            let jobs = Value::Object(
                shared
                    .status_counts()
                    .into_iter()
                    .map(|(s, n)| (s.name().to_string(), Value::UInt(n)))
                    .collect(),
            );
            send(
                writer,
                &ok_response(vec![
                    ("draining".into(), Value::Bool(shared.queue.is_draining())),
                    ("queued".into(), Value::UInt(shared.queue.len() as u64)),
                    ("jobs".into(), jobs),
                    (
                        "budget".into(),
                        Value::Object(vec![
                            ("total".into(), Value::UInt(budget.total as u64)),
                            ("in_use".into(), Value::UInt(budget.in_use as u64)),
                            ("waiting".into(), Value::UInt(budget.waiting as u64)),
                            ("granted".into(), Value::UInt(budget.granted as u64)),
                        ]),
                    ),
                    (
                        "flights".into(),
                        Value::Object(vec![
                            ("in_flight".into(), Value::UInt(flights.in_flight as u64)),
                            ("begun".into(), Value::UInt(flights.begun as u64)),
                            ("waited".into(), Value::UInt(flights.waited as u64)),
                        ]),
                    ),
                ]),
            )
        }
        Request::Cancel { id } => match cancel(shared, id) {
            Ok(status) => send(
                writer,
                &ok_response(vec![
                    ("id".into(), Value::UInt(id)),
                    ("status".into(), Value::Str(status.name().into())),
                ]),
            ),
            Err(e) => send(writer, &error_response(&e.to_string())),
        },
        Request::Shutdown { deadline_ms } => {
            let summary = drain(shared, Duration::from_millis(deadline_ms));
            let counts = shared.status_counts();
            let mut fields = vec![("drained".into(), Value::Bool(true))];
            fields.push(("cancelled_running".into(), Value::UInt(summary)));
            fields.extend(
                counts
                    .into_iter()
                    .map(|(s, n)| (s.name().to_string(), Value::UInt(n))),
            );
            fields.push((
                "ledger".into(),
                Value::Str(
                    shared
                        .ledger
                        .lock()
                        .expect("ledger lock poisoned")
                        .path()
                        .display()
                        .to_string(),
                ),
            ));
            send(writer, &ok_response(fields))
        }
    }
}

/// Admission: validate against the registry and scales, assign an ID,
/// persist the queued record, enqueue.
fn submit(shared: &Arc<Shared>, spec: &JobSpec) -> Result<JobRecord, ServeError> {
    if shared.queue.is_draining() {
        return Err(ServeError::Server(
            "server is draining; not admitting jobs".to_string(),
        ));
    }
    let registry = Registry::with_defaults();
    let entry = registry.find(&spec.name).ok_or_else(|| {
        ServeError::Server(format!(
            "unknown experiment '{}'; registered: {}",
            spec.name,
            registry.names().join(", ")
        ))
    })?;
    if Scale::parse(&spec.scale).is_none() {
        return Err(ServeError::Server(format!(
            "unknown scale '{}' (quick | laptop | extended)",
            spec.scale
        )));
    }
    let workers = if spec.workers == 0 {
        shared.config.default_workers as u64
    } else {
        spec.workers.min(shared.budget.total() as u64)
    };
    let record = {
        let mut ledger = shared.ledger.lock().expect("ledger lock poisoned");
        let record = JobRecord {
            id: ledger.next_id(),
            name: entry.name().to_string(),
            scale: spec.scale.clone(),
            seed: spec.seed,
            priority: spec.priority,
            workers,
            status: JobStatus::Queued,
            result_path: None,
            error: None,
        };
        ledger.append(record.clone())?;
        record
    };
    rc4_obs::metrics::counter_add("serve.jobs.submitted", 1);
    shared.jobs.lock().expect("jobs lock poisoned").insert(
        record.id,
        Arc::new(JobHandle {
            cancel: CancelHandle::new(),
            events: Arc::new(JobEvents::create(events_path(
                &shared.config.state_dir,
                record.id,
            ))),
            submitted_at: Instant::now(),
            telemetry: Mutex::new(None),
        }),
    );
    if !shared.queue.push(record.id, record.priority) {
        // Drain raced the admission check; record the refusal honestly.
        let _ = shared.transition(record.id, |r| {
            r.status = JobStatus::Cancelled;
            r.error = Some("cancelled by drain at admission".to_string());
        });
        return Err(ServeError::Server(
            "server is draining; not admitting jobs".to_string(),
        ));
    }
    Ok(record)
}

/// Cancels a queued or running job; terminal jobs are left as they are.
fn cancel(shared: &Arc<Shared>, id: u64) -> Result<JobStatus, ServeError> {
    rc4_obs::metrics::counter_add("serve.cancel.requests", 1);
    let record = shared
        .record(id)
        .ok_or_else(|| ServeError::Server(format!("no job {id}")))?;
    if record.status.is_terminal() {
        return Ok(record.status);
    }
    let handle = shared
        .jobs
        .lock()
        .expect("jobs lock poisoned")
        .get(&id)
        .cloned();
    if let Some(handle) = &handle {
        // Raise the flag first: a running job stops at its next checkpoint,
        // and a queued one that slips past the dequeue below exits at its
        // first.
        handle.cancel.cancel();
    }
    if shared.queue.remove(id) {
        let updated = shared.transition(id, |r| r.status = JobStatus::Cancelled)?;
        return Ok(updated.status);
    }
    Ok(shared.record(id).map_or(record.status, |r| r.status))
}

/// Streams a job's progress events from `from` until it is terminal.
fn watch(shared: &Arc<Shared>, id: u64, from: u64, writer: &mut TcpStream) -> bool {
    let Some(record) = shared.record(id) else {
        return send(writer, &error_response(&format!("no job {id}")));
    };
    let handle = shared
        .jobs
        .lock()
        .expect("jobs lock poisoned")
        .get(&id)
        .cloned();
    if !send(
        writer,
        &ok_response(vec![("watching".into(), Value::UInt(id))]),
    ) {
        return false;
    }
    let Some(handle) = handle else {
        // Ledger-only job from a previous incarnation: replay its persisted
        // event file (if any survives), then report the known terminal state.
        for (seq, line) in read_events_from(&events_path(&shared.config.state_dir, id), from) {
            if !send(writer, &progress_frame(seq, line)) {
                return false;
            }
        }
        return send_end(writer, record.status, 0);
    };
    let mut next = from;
    loop {
        let (fresh, terminal) = handle.events.wait_from(next);
        for (seq, line) in fresh {
            if !send(writer, &progress_frame(seq, line)) {
                return false;
            }
            next = seq + 1;
        }
        if let Some((status, dropped)) = terminal {
            return send_end(writer, status, dropped);
        }
    }
}

fn progress_frame(seq: u64, line: String) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("event".into(), Value::Str("progress".into())),
        ("seq".into(), Value::UInt(seq)),
        ("line".into(), Value::Str(line)),
    ]))
    .expect("event frame serializes")
}

fn send_end(writer: &mut TcpStream, status: JobStatus, dropped: u64) -> bool {
    let frame = serde_json::to_string(&Value::Object(vec![
        ("event".into(), Value::Str("end".into())),
        ("status".into(), Value::Str(status.name().into())),
        ("dropped".into(), Value::UInt(dropped)),
    ]))
    .expect("end frame serializes");
    send(writer, &frame)
}

/// Fetches a finished job's record and result document.
fn job_result(shared: &Arc<Shared>, id: u64) -> Result<(JobRecord, String), ServeError> {
    let record = shared
        .record(id)
        .ok_or_else(|| ServeError::Server(format!("no job {id}")))?;
    match record.status {
        JobStatus::Done => {
            let path = record.result_path.clone().ok_or_else(|| {
                ServeError::Server(format!("job {id} is done but has no result path"))
            })?;
            let document = std::fs::read_to_string(&path)
                .map_err(|e| ServeError::Io(format!("cannot read result {path}: {e}")))?;
            Ok((record, document))
        }
        JobStatus::Failed => Err(ServeError::Server(format!(
            "job {id} failed: {}",
            record.error.as_deref().unwrap_or("unknown error")
        ))),
        JobStatus::Cancelled => Err(ServeError::Server(format!("job {id} was cancelled"))),
        JobStatus::Queued | JobStatus::Running => Err(ServeError::Server(format!(
            "job {id} is {}; watch it or try again later",
            record.status.name()
        ))),
    }
}

/// Graceful drain: refuse admissions, cancel queued jobs, give running jobs
/// `deadline` to finish, cancel stragglers, wait for every record to reach a
/// terminal state. Returns how many running jobs had to be cancelled.
fn drain(shared: &Arc<Shared>, deadline: Duration) -> u64 {
    rc4_obs::metrics::counter_add("serve.drains", 1);
    for id in shared.queue.drain() {
        let _ = shared.transition(id, |r| {
            r.status = JobStatus::Cancelled;
            r.error = Some("cancelled by drain".to_string());
        });
    }
    let start = Instant::now();
    while !shared.all_terminal() && start.elapsed() < deadline {
        let remaining = deadline.saturating_sub(start.elapsed());
        let guard = shared.transitions.lock().expect("transition lock poisoned");
        let _ = shared
            .transitioned
            .wait_timeout(guard, remaining.min(Duration::from_millis(100)))
            .expect("transition lock poisoned");
    }
    // Past the deadline: cancel whatever is still alive, then wait for the
    // (prompt, per-batch-polled) cooperative cancellation to land.
    let mut cancelled = 0u64;
    if !shared.all_terminal() {
        let live: Vec<u64> = shared
            .ledger
            .lock()
            .expect("ledger lock poisoned")
            .jobs()
            .iter()
            .filter(|j| !j.status.is_terminal())
            .map(|j| j.id)
            .collect();
        for id in live {
            if let Some(handle) = shared.jobs.lock().expect("jobs lock poisoned").get(&id) {
                handle.cancel.cancel();
                cancelled += 1;
            }
        }
        while !shared.all_terminal() {
            let guard = shared.transitions.lock().expect("transition lock poisoned");
            let _ = shared
                .transitioned
                .wait_timeout(guard, Duration::from_millis(100))
                .expect("transition lock poisoned");
        }
    }
    cancelled
}

/// Writes one frame line; `false` when the peer is gone.
fn send(writer: &mut TcpStream, frame: &str) -> bool {
    writeln!(writer, "{frame}")
        .and_then(|()| writer.flush())
        .is_ok()
}
