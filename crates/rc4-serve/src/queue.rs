//! The server's admission queue: priority-ordered, drain-aware, blocking.
//!
//! Scheduling policy: the runnable job with the highest `priority` goes
//! first; within one priority, submission order (FIFO). The scheduler thread
//! blocks on [`JobQueue::pop_next`] until a job is available or the queue is
//! drained. Capacity is *not* this queue's concern — the scheduler acquires
//! the popped job's worker budget from [`rc4_exec::Budget`] afterwards, so
//! admission order is strict even when a large job has to wait for slots.

use std::sync::{Condvar, Mutex};

/// One queued entry: the job ID plus its scheduling key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    id: u64,
    priority: i64,
    seq: u64,
}

#[derive(Debug, Default)]
struct QueueState {
    pending: Vec<Pending>,
    next_seq: u64,
    draining: bool,
}

/// A blocking, drain-aware priority queue of job IDs.
#[derive(Debug, Default)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    changed: Condvar,
}

impl JobQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    /// Enqueues a job. Returns `false` (and drops the entry) once the queue
    /// is draining — the caller must refuse the submission.
    pub fn push(&self, id: u64, priority: i64) -> bool {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.draining {
            return false;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.pending.push(Pending { id, priority, seq });
        drop(state);
        self.changed.notify_all();
        true
    }

    /// Blocks until a job is available (returning the highest-priority,
    /// earliest-submitted one) or the queue is draining (returning `None`).
    /// Draining takes precedence: once raised, leftover entries are never
    /// popped — the server cancels them instead.
    pub fn pop_next(&self) -> Option<u64> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if state.draining {
                return None;
            }
            if let Some(best) = state
                .pending
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| (p.priority, std::cmp::Reverse(p.seq)))
                .map(|(i, _)| i)
            {
                return Some(state.pending.remove(best).id);
            }
            state = self.changed.wait(state).expect("queue lock poisoned");
        }
    }

    /// Removes a not-yet-popped job; `true` if it was still queued.
    pub fn remove(&self, id: u64) -> bool {
        let mut state = self.state.lock().expect("queue lock poisoned");
        let before = state.pending.len();
        state.pending.retain(|p| p.id != id);
        state.pending.len() != before
    }

    /// Switches to draining: wakes the scheduler, refuses new pushes, and
    /// returns the job IDs still queued (in scheduling order) so the caller
    /// can mark them cancelled.
    pub fn drain(&self) -> Vec<u64> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.draining = true;
        let mut leftover = std::mem::take(&mut state.pending);
        leftover.sort_by_key(|p| (std::cmp::Reverse(p.priority), p.seq));
        drop(state);
        self.changed.notify_all();
        leftover.into_iter().map(|p| p.id).collect()
    }

    /// Whether [`JobQueue::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").draining
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("queue lock poisoned")
            .pending
            .len()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pops_by_priority_then_submission_order() {
        let queue = JobQueue::new();
        assert!(queue.push(1, 0));
        assert!(queue.push(2, 5));
        assert!(queue.push(3, 5));
        assert!(queue.push(4, -1));
        assert_eq!(queue.pop_next(), Some(2));
        assert_eq!(queue.pop_next(), Some(3));
        assert_eq!(queue.pop_next(), Some(1));
        assert_eq!(queue.pop_next(), Some(4));
    }

    #[test]
    fn remove_unqueues_pending_jobs_only() {
        let queue = JobQueue::new();
        queue.push(1, 0);
        queue.push(2, 0);
        assert!(queue.remove(1));
        assert!(!queue.remove(1));
        assert_eq!(queue.pop_next(), Some(2));
    }

    #[test]
    fn drain_wakes_blocked_pop_and_returns_leftovers() {
        let queue = Arc::new(JobQueue::new());
        let popper = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop_next())
        };
        // Let the popper park, then drain with entries still queued.
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.push(7, 1);
        let first = popper.join().expect("popper panicked");
        assert_eq!(first, Some(7));

        queue.push(8, 0);
        queue.push(9, 3);
        let leftover = queue.drain();
        assert_eq!(leftover, vec![9, 8]);
        assert!(queue.is_draining());
        assert!(!queue.push(10, 0), "draining queue must refuse pushes");
        assert_eq!(queue.pop_next(), None);
    }
}
