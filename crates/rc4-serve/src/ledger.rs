//! The persistent run ledger: every job the server ever admitted.
//!
//! One JSON document (`ledger.json` in the server's state directory) holding
//! a record per job — ID, spec, status, result path, error. The server
//! rewrites it atomically (write-to-temp + rename, the same discipline as
//! `rc4-store` shards) on every job transition, so however the process ends
//! the ledger on disk is a complete, parseable account. A restarted server
//! loads it, continues job numbering past the highest recorded ID, and can
//! report completed-job results from a previous incarnation.

use std::path::{Path, PathBuf};

use serde::{DeError, Deserialize, Serialize, Value};

use crate::ServeError;

/// Lifecycle of a job, as recorded in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for the scheduler.
    Queued,
    /// Executing on the pool.
    Running,
    /// Finished successfully; `result_path` holds the report document.
    Done,
    /// Finished with an error; `error` holds the message.
    Failed,
    /// Cancelled before or during execution (including by a drain).
    Cancelled,
}

impl JobStatus {
    /// The wire/ledger name.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Parses a wire/ledger name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "queued" => Some(JobStatus::Queued),
            "running" => Some(JobStatus::Running),
            "done" => Some(JobStatus::Done),
            "failed" => Some(JobStatus::Failed),
            "cancelled" => Some(JobStatus::Cancelled),
            _ => None,
        }
    }

    /// Whether the status is final (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

impl Serialize for JobStatus {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for JobStatus {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                JobStatus::parse(s).ok_or_else(|| DeError(format!("unknown job status `{s}`")))
            }
            other => Err(DeError(format!(
                "job status must be a string, found {}",
                other.kind()
            ))),
        }
    }
}

/// One job's full ledger record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Server-assigned monotonic job ID.
    pub id: u64,
    /// Canonical experiment name.
    pub name: String,
    /// Scale preset name.
    pub scale: String,
    /// Global seed mix.
    pub seed: u64,
    /// Scheduling priority.
    pub priority: i64,
    /// Worker budget the job runs under.
    pub workers: u64,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Path of the result document once `status == done`.
    pub result_path: Option<String>,
    /// Failure message once `status == failed`.
    pub error: Option<String>,
}

impl JobRecord {
    /// The record's wire form for `jobs` responses.
    pub fn to_wire(&self) -> Value {
        self.to_value()
    }
}

/// The on-disk ledger: every record, plus the path it persists to.
#[derive(Debug)]
pub struct RunLedger {
    path: PathBuf,
    jobs: Vec<JobRecord>,
}

/// Ledger format version, bumped on breaking layout changes.
pub const LEDGER_VERSION: u64 = 1;

impl RunLedger {
    /// Opens the ledger at `path`, loading existing records if the file
    /// exists (a missing file is an empty ledger, not an error).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on unreadable files, [`ServeError::Protocol`] on
    /// unparseable or wrong-version content — a corrupt ledger is reported,
    /// never silently discarded.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let path = path.into();
        if !path.exists() {
            return Ok(RunLedger {
                path,
                jobs: Vec::new(),
            });
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ServeError::Io(format!("cannot read ledger {}: {e}", path.display())))?;
        let value: Value = serde_json::from_str(&text).map_err(|e| {
            ServeError::Protocol(format!("ledger {} is not valid JSON: {e}", path.display()))
        })?;
        let version = match value.field("version") {
            Ok(Value::UInt(n)) => *n,
            _ => 0,
        };
        if version != LEDGER_VERSION {
            return Err(ServeError::Protocol(format!(
                "ledger {} has version {version}, expected {LEDGER_VERSION}",
                path.display()
            )));
        }
        let jobs = match value.field("jobs") {
            Ok(Value::Array(items)) => items
                .iter()
                .map(JobRecord::from_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| ServeError::Protocol(format!("ledger {}: {}", path.display(), e.0)))?,
            _ => {
                return Err(ServeError::Protocol(format!(
                    "ledger {} lacks a `jobs` array",
                    path.display()
                )))
            }
        };
        Ok(RunLedger { path, jobs })
    }

    /// The path the ledger persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All records, oldest first.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// The record with `id`, if any.
    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// The next unused job ID (continues past previous incarnations).
    pub fn next_id(&self) -> u64 {
        self.jobs.iter().map(|j| j.id).max().map_or(1, |m| m + 1)
    }

    /// Appends a fresh record and persists.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the write fails.
    pub fn append(&mut self, record: JobRecord) -> Result<(), ServeError> {
        self.jobs.push(record);
        self.save()
    }

    /// Updates the record with `record.id` in place and persists.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for an unknown ID, [`ServeError::Io`] when
    /// the write fails.
    pub fn update(&mut self, record: JobRecord) -> Result<(), ServeError> {
        let slot = self
            .jobs
            .iter_mut()
            .find(|j| j.id == record.id)
            .ok_or_else(|| ServeError::Protocol(format!("ledger has no job {}", record.id)))?;
        *slot = record;
        self.save()
    }

    /// Atomically rewrites the ledger file (temp + rename).
    fn save(&self) -> Result<(), ServeError> {
        let value = Value::Object(vec![
            ("version".to_string(), Value::UInt(LEDGER_VERSION)),
            (
                "jobs".to_string(),
                Value::Array(self.jobs.iter().map(JobRecord::to_value).collect()),
            ),
        ]);
        let text = serde_json::to_string_pretty(&value).expect("ledger serializes");
        let tmp = self.path.with_extension("json.tmp");
        std::fs::write(&tmp, format!("{text}\n"))
            .map_err(|e| ServeError::Io(format!("cannot write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| ServeError::Io(format!("cannot rename {}: {e}", tmp.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, status: JobStatus) -> JobRecord {
        JobRecord {
            id,
            name: "fig8".into(),
            scale: "quick".into(),
            seed: 7,
            priority: 1,
            workers: 2,
            status,
            result_path: None,
            error: None,
        }
    }

    fn temp_ledger(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "rc4-serve-ledger-{tag}-{}.json",
            std::process::id()
        ))
    }

    #[test]
    fn missing_file_is_an_empty_ledger() {
        let path = temp_ledger("missing");
        let _ = std::fs::remove_file(&path);
        let ledger = RunLedger::open(&path).unwrap();
        assert!(ledger.jobs().is_empty());
        assert_eq!(ledger.next_id(), 1);
    }

    #[test]
    fn append_update_and_reload_round_trip() {
        let path = temp_ledger("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut ledger = RunLedger::open(&path).unwrap();
        ledger.append(record(1, JobStatus::Queued)).unwrap();
        ledger.append(record(2, JobStatus::Queued)).unwrap();
        let mut done = record(1, JobStatus::Done);
        done.result_path = Some("results/job-1.json".into());
        ledger.update(done.clone()).unwrap();

        let reloaded = RunLedger::open(&path).unwrap();
        assert_eq!(reloaded.jobs().len(), 2);
        assert_eq!(reloaded.get(1), Some(&done));
        assert_eq!(reloaded.get(2).unwrap().status, JobStatus::Queued);
        assert_eq!(reloaded.next_id(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_ledger_is_a_typed_error() {
        let path = temp_ledger("corrupt");
        std::fs::write(&path, "{ nope").unwrap();
        assert!(matches!(
            RunLedger::open(&path),
            Err(ServeError::Protocol(_))
        ));
        std::fs::write(&path, r#"{"version": 99, "jobs": []}"#).unwrap();
        assert!(matches!(
            RunLedger::open(&path),
            Err(ServeError::Protocol(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn update_of_unknown_id_errors() {
        let path = temp_ledger("unknown");
        let _ = std::fs::remove_file(&path);
        let mut ledger = RunLedger::open(&path).unwrap();
        assert!(ledger.update(record(9, JobStatus::Done)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn status_names_round_trip() {
        for status in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            assert_eq!(JobStatus::parse(status.name()), Some(status));
        }
        assert_eq!(JobStatus::parse("paused"), None);
        assert!(JobStatus::Done.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
    }
}
