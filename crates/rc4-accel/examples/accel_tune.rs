//! Quick timing for the accelerated engines: `cargo run --release -p
//! rc4-accel --example accel_tune`. Compares scalar, the portable batch and
//! AutoBatch (AVX-512 where available) in the two regimes that matter: long
//! streams (PRGA-bound) and rekey-per-68-bytes (KSA-bound, per-TSC-shaped).

use std::time::Instant;

use rc4_accel::{AutoBatch, DefaultBatch, KeystreamBatch};

fn keys(n: usize) -> Vec<u8> {
    (0..n * 16).map(|i| (i * 2654435761) as u8).collect()
}

fn time<F: FnMut()>(mut f: F, iters: u32) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_engine<B: KeystreamBatch>(name: &str, engine: &mut B, per_lane: usize, iters: u32) {
    let n = engine.lanes();
    let keys = keys(n);
    let mut out = vec![0u8; n * per_lane];
    let ns = time(
        || {
            engine.schedule(std::hint::black_box(&keys), 16).unwrap();
            engine.fill(std::hint::black_box(&mut out), per_lane);
        },
        iters,
    );
    let bytes = (n * per_lane) as f64;
    println!(
        "  {name:<22} ({n:>2} lanes): {:7.3} ns/B  {:8.1} ns/key  {:6.3} GiB/s",
        ns / bytes,
        ns / n as f64,
        bytes / ns * 1e9 / (1u64 << 30) as f64
    );
}

fn main() {
    let mut prga = rc4::Prga::new(b"benchmark key 16").unwrap();
    let mut buf = vec![0u8; 65536];
    let scalar = time(|| prga.fill(std::hint::black_box(&mut buf)), 200);
    println!(
        "scalar fill: {:.3} ns/B ({:.3} GiB/s); scalar KSA+68B ≈ {:.0} ns/key",
        scalar / 65536.0,
        65536.0 / scalar * 1e9 / (1u64 << 30) as f64,
        {
            let key = [0xA5u8; 16];
            let mut ks = [0u8; 68];
            time(
                || {
                    let mut p = rc4::Prga::new(std::hint::black_box(&key)).unwrap();
                    p.fill(std::hint::black_box(&mut ks));
                },
                20000,
            )
        }
    );

    println!("long streams (4096 B/lane):");
    bench_engine("portable", &mut DefaultBatch::new(), 4096, 300);
    bench_engine("auto", &mut AutoBatch::new(), 4096, 300);

    println!("short streams (68 B/lane):");
    bench_engine("portable", &mut DefaultBatch::new(), 68, 3000);
    bench_engine("auto", &mut AutoBatch::new(), 68, 3000);
    println!("auto engine: {}", AutoBatch::new().engine_name());
}
