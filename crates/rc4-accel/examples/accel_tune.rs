//! Quick timing for the accelerated engines: `cargo run --release -p
//! rc4-accel --example accel_tune`. Sweeps every engine available on this
//! host (avx512 / avx2 / neon / portable) plus the scalar baseline, in the
//! two regimes that matter: long streams (PRGA-bound) and rekey-per-68-bytes
//! (KSA-bound, per-TSC-shaped). Also times the f64 scoring kernel used by
//! the recovery hot path.

use std::time::Instant;

use rc4_accel::{score, AutoBatch, Engine, KeystreamBatch};

fn keys(n: usize) -> Vec<u8> {
    (0..n * 16).map(|i| (i * 2654435761) as u8).collect()
}

fn time<F: FnMut()>(mut f: F, iters: u32) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_engine<B: KeystreamBatch>(engine: &mut B, per_lane: usize, iters: u32) {
    let name = engine.name();
    let n = engine.lanes();
    let keys = keys(n);
    let mut out = vec![0u8; n * per_lane];
    let ns = time(
        || {
            engine.schedule(std::hint::black_box(&keys), 16).unwrap();
            engine.fill(std::hint::black_box(&mut out), per_lane);
        },
        iters,
    );
    let bytes = (n * per_lane) as f64;
    println!(
        "  {name:<10} ({n:>2} lanes): {:7.3} ns/B  {:8.1} ns/key  {:6.3} GiB/s",
        ns / bytes,
        ns / n as f64,
        bytes / ns * 1e9 / (1u64 << 30) as f64
    );
}

fn sweep(per_lane: usize, iters: u32) {
    let mut scalar = rc4::batch::ScalarBatch::new(8);
    bench_engine(&mut scalar, per_lane, iters.min(600));
    for name in rc4_accel::available_engines() {
        let engine = Engine::parse(name).expect("listed engine parses");
        let mut batch = AutoBatch::with_engine(engine).expect("listed engine constructs");
        bench_engine(&mut batch, per_lane, iters);
    }
}

fn main() {
    let mut prga = rc4::Prga::new(b"benchmark key 16").unwrap();
    let mut buf = vec![0u8; 65536];
    let scalar = time(|| prga.fill(std::hint::black_box(&mut buf)), 200);
    println!(
        "scalar fill: {:.3} ns/B ({:.3} GiB/s); scalar KSA+68B ≈ {:.0} ns/key",
        scalar / 65536.0,
        65536.0 / scalar * 1e9 / (1u64 << 30) as f64,
        {
            let key = [0xA5u8; 16];
            let mut ks = [0u8; 68];
            time(
                || {
                    let mut p = rc4::Prga::new(std::hint::black_box(&key)).unwrap();
                    p.fill(std::hint::black_box(&mut ks));
                },
                20000,
            )
        }
    );

    println!(
        "available engines: {:?}; auto resolves to {}",
        rc4_accel::available_engines(),
        AutoBatch::new().engine_name()
    );

    println!("long streams (4096 B/lane):");
    sweep(4096, 300);

    println!("short streams (68 B/lane, TKIP rekey shape):");
    sweep(68, 3000);

    println!("scoring kernel ({}):", score::kernel_name());
    let table: Vec<f64> = (0..256).map(|i| (i as f64).sin()).collect();
    let mut acc = vec![0.0f64; 256];
    let ns = time(
        || {
            for xor in 0..=255u8 {
                score::xor_mul_add_256(
                    std::hint::black_box(&mut acc),
                    std::hint::black_box(&table),
                    xor,
                    1.0e-3,
                );
            }
        },
        2000,
    );
    println!(
        "  xor_mul_add_256 x256: {:8.1} ns ({:6.3} f64 ops/ns)",
        ns,
        256.0 * 256.0 * 2.0 / ns
    );
}
