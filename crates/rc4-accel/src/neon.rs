//! The NEON batched RC4 engine: 4 lanes, vector index math, scalar gathers.
//!
//! # Layout
//!
//! Same discipline as the x86 engines: the 4 permutations are interleaved as
//! `u32` cells — `s[v * 4 + l]` is `S_l[v]` zero-extended — so row `v` of all
//! lanes is one 16-byte q register. AArch64 NEON has no gather or scatter, so
//! the data-dependent halves of the round are scalar through a spilled index
//! vector, while the index arithmetic (`j` update, `t` computation) and the
//! row load/store run as 128-bit vector operations:
//!
//! ```text
//! row  = vld1q  s[i]                ; 1 q load
//! j    = (j + row) & 0xFF           ; vaddq_u32 + vandq_u32
//! spill j -> j_arr                  ; vst1q
//! sj[l] = s[j_arr[l]*4 + l]         ; 4 scalar loads   (gather)
//! s[j_arr[l]*4 + l] = s[i*4 + l]    ; 4 scalar stores  (S[j] = S[i])
//! vst1q s[i] <- sj                  ; 1 q store        (S[i] = S[j])
//! t    = (row + sj) & 0xFF          ; vaddq_u32 + vandq_u32
//! out[l] = s[t_arr[l]*4 + l]        ; 4 scalar loads
//! ```
//!
//! The ordering rules mirror the other engines: the scalar gather of `S[j]`
//! runs before the scalar stores (a lane with `j == i` must read the pre-swap
//! value), the stores read row `i` before it is overwritten, and the output
//! gather runs after both halves of the swap are committed. Four independent
//! scalar load chains per round give the out-of-order core the memory-level
//! parallelism one chained scalar stream cannot.
//!
//! This module only compiles on `aarch64`; [`crate::AutoBatch`] selects it
//! there (NEON is a baseline aarch64 feature) and the cross-engine
//! differential tests in `tests/differential.rs` pin it against the scalar
//! reference on ARM hosts.
//!
//! # Safety
//!
//! The unsafe surface is exactly: (a) calling `#[target_feature(neon)]`
//! functions, guarded by `is_aarch64_feature_detected!` at construction;
//! (b) `vld1q`/`vst1q` and raw scalar accesses whose addresses are provably
//! in bounds: every row index is masked to `0..256` and lane offsets are
//! `0..4`, so element indices stay within the 1024-element table.

use std::arch::aarch64::*;

use rc4::batch::{check_schedule, KeystreamBatch};
use rc4::KeyError;

/// Lane count of the NEON engine: one `u32` element per q-register slot.
pub const NEON_LANES: usize = 4;

const LANES: usize = NEON_LANES;
const TABLE: usize = 256 * LANES;

/// The two per-engine tables, 16-byte aligned so row loads/stores are aligned
/// q-register accesses.
#[repr(align(16))]
#[derive(Debug, Clone)]
struct Tables {
    /// Lane-interleaved permutations, `u32`-widened: `s[v * 4 + l] = S_l[v]`.
    s: [u32; TABLE],
    /// Lane-interleaved expanded key rows; only the first `key_len` rows are
    /// live after a `schedule` call.
    kt: [u32; TABLE],
}

/// Batched RC4 over NEON index math; 4 independent keystreams.
///
/// Construct through [`NeonBatch::new`] (runtime feature detection) or use
/// [`crate::AutoBatch`] to pick the best engine automatically. Streams are
/// bit-identical to the scalar [`rc4::Prga`] per lane.
#[derive(Debug, Clone)]
pub struct NeonBatch {
    t: Box<Tables>,
    /// Per-lane private index `j` (bottom 8 bits live).
    j: [u32; LANES],
    /// Shared public counter `i`.
    i: u8,
    /// Key length of the last schedule, for the expanded-key row cycle.
    key_len: usize,
    /// Lanes covered by the last `schedule` call.
    scheduled: usize,
}

impl NeonBatch {
    /// Creates the engine if the running CPU supports NEON (always true on
    /// aarch64 Linux, but the check keeps the safety argument local).
    pub fn new() -> Option<Self> {
        if !std::arch::is_aarch64_feature_detected!("neon") {
            return None;
        }
        Some(Self {
            t: Box::new(Tables {
                s: [0; TABLE],
                kt: [0; TABLE],
            }),
            j: [0; LANES],
            i: 0,
            key_len: 1,
            scheduled: 0,
        })
    }

    /// Shared KSA entry: expand the keys into the transposed `kt` table, then
    /// run the vector KSA.
    fn schedule_impl(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        let n = check_schedule(keys, key_len, LANES)?;
        // kt[r * 4 + l] = byte r of lane l's key (unused lanes repeat the
        // last key so every lane always holds a valid scheduled state).
        for lane in 0..LANES {
            let key = &keys[lane.min(n - 1) * key_len..][..key_len];
            for (r, &byte) in key.iter().enumerate() {
                self.t.kt[r * LANES + lane] = u32::from(byte);
            }
        }
        self.key_len = key_len;
        self.scheduled = n;
        // SAFETY: `new` verified neon on this CPU.
        unsafe { self.ksa_neon() };
        Ok(())
    }

    #[target_feature(enable = "neon")]
    unsafe fn ksa_neon(&mut self) {
        let s = self.t.s.as_mut_ptr();
        let kt = self.t.kt.as_ptr();
        // SAFETY: (covers every intrinsic and raw access in this block) `s`
        // and `kt` are 1024 u32, 16-byte aligned; every row index is in
        // 0..256 (i is a loop counter, j is masked with 0xFF, key row r
        // cycles in 0..key_len <= 256), so element indices `row * 4 + lane`
        // are < 1024. neon was verified at construction.
        unsafe {
            for v in 0..256u32 {
                vst1q_u32(s.add(v as usize * LANES), vdupq_n_u32(v));
            }
            let mask = vdupq_n_u32(0xFF);
            let mut j = vdupq_n_u32(0);
            let mut r = 0usize;
            let mut j_arr = [0u32; LANES];
            for i in 0..256 {
                let row = vld1q_u32(s.add(i * LANES).cast_const());
                let key_row = vld1q_u32(kt.add(r * LANES));
                r += 1;
                if r == self.key_len {
                    r = 0;
                }
                j = vandq_u32(vaddq_u32(vaddq_u32(j, row), key_row), mask);
                vst1q_u32(j_arr.as_mut_ptr(), j);
                // Gather before the scalar scatter: a lane with j == i must
                // read the value it is about to overwrite.
                let mut sj = [0u32; LANES];
                for (l, slot) in sj.iter_mut().enumerate() {
                    *slot = *s.add(j_arr[l] as usize * LANES + l);
                }
                for (l, &jl) in j_arr.iter().enumerate() {
                    *s.add(jl as usize * LANES + l) = *s.add(i * LANES + l);
                }
                vst1q_u32(s.add(i * LANES), vld1q_u32(sj.as_ptr()));
            }
        }
        self.j = [0; LANES];
        self.i = 0;
    }

    #[target_feature(enable = "neon")]
    unsafe fn fill_neon(&mut self, out: &mut [u8], len: usize) {
        let n = self.scheduled;
        let s = self.t.s.as_mut_ptr();
        // Output staging mirrors the x86 engines: chunks accumulate at a
        // fixed 256-byte lane stride and are block-copied per lane.
        const CHUNK: usize = 256;
        let mut scratch = [0u8; LANES * CHUNK];

        // SAFETY: (covers every intrinsic and raw access in this block)
        // table element indices are `(v & 0xFF) * 4 + lane < 1024` as in
        // `ksa_neon`; scratch writes are at `l * CHUNK + k` with `l < 4`,
        // `k < CHUNK`. neon was verified at construction.
        unsafe {
            let mask = vdupq_n_u32(0xFF);
            let mut j = vld1q_u32(self.j.as_ptr());
            let mut i = self.i as usize;
            let mut j_arr = [0u32; LANES];
            let mut t_arr = [0u32; LANES];
            let mut round = |i: usize, j: &mut uint32x4_t| -> [u32; LANES] {
                let row = vld1q_u32(s.add(i * LANES).cast_const());
                *j = vandq_u32(vaddq_u32(*j, row), mask);
                vst1q_u32(j_arr.as_mut_ptr(), *j);
                // Gather before the scalar scatter: swap-in-place for lanes
                // with j == i.
                let mut sj = [0u32; LANES];
                for (l, slot) in sj.iter_mut().enumerate() {
                    *slot = *s.add(j_arr[l] as usize * LANES + l);
                }
                for (l, &jl) in j_arr.iter().enumerate() {
                    *s.add(jl as usize * LANES + l) = *s.add(i * LANES + l);
                }
                let sjv = vld1q_u32(sj.as_ptr());
                vst1q_u32(s.add(i * LANES), sjv);
                // Both swap stores are committed before the output gather.
                let t = vandq_u32(vaddq_u32(row, sjv), mask);
                vst1q_u32(t_arr.as_mut_ptr(), t);
                let mut outv = [0u32; LANES];
                for (l, slot) in outv.iter_mut().enumerate() {
                    *slot = *s.add(t_arr[l] as usize * LANES + l);
                }
                outv
            };

            let mut pos = 0usize;
            while pos < len {
                let m = (len - pos).min(CHUNK);
                for k in 0..m {
                    i = (i + 1) & 0xFF;
                    let v = round(i, &mut j);
                    for (l, &word) in v.iter().enumerate() {
                        scratch[l * CHUNK + k] = word as u8;
                    }
                }
                for lane in 0..n {
                    out[lane * len + pos..][..m].copy_from_slice(&scratch[lane * CHUNK..][..m]);
                }
                pos += m;
            }

            vst1q_u32(self.j.as_mut_ptr(), j);
            self.i = i as u8;
        }
    }
}

impl KeystreamBatch for NeonBatch {
    fn lanes(&self) -> usize {
        LANES
    }

    fn scheduled(&self) -> usize {
        self.scheduled
    }

    fn name(&self) -> &'static str {
        "neon"
    }

    fn schedule(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        self.schedule_impl(keys, key_len)
    }

    fn fill(&mut self, out: &mut [u8], len: usize) {
        assert_eq!(
            out.len(),
            self.scheduled * len,
            "output buffer must hold len bytes per scheduled lane"
        );
        if len == 0 {
            return;
        }
        // SAFETY: the engine only exists if neon was detected, and the
        // buffer-shape assertions above establish the bounds the output
        // offsets rely on.
        unsafe { self.fill_neon(out, len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_keys(n: usize, key_len: usize) -> Vec<u8> {
        (0..n * key_len).map(|i| (i * 131 + 7) as u8).collect()
    }

    fn scalar_reference(keys: &[u8], key_len: usize, len: usize) -> Vec<u8> {
        keys.chunks_exact(key_len)
            .flat_map(|key| rc4::keystream(key, len).unwrap())
            .collect()
    }

    #[test]
    fn matches_scalar_full_and_partial_batches() {
        let Some(mut engine) = NeonBatch::new() else {
            return;
        };
        for key_len in [3usize, 16, 256] {
            let keys = test_keys(LANES, key_len);
            engine.schedule(&keys, key_len).unwrap();
            let mut out = vec![0u8; LANES * 300];
            engine.fill(&mut out, 300);
            assert_eq!(
                out,
                scalar_reference(&keys, key_len, 300),
                "key_len {key_len}"
            );
        }
        let keys = test_keys(3, 16);
        for len in [1usize, 5, 67] {
            engine.schedule(&keys, 16).unwrap();
            let mut out = vec![0u8; 3 * len];
            engine.fill(&mut out, len);
            assert_eq!(out, scalar_reference(&keys, 16, len), "len {len}");
        }
    }

    #[test]
    fn chunked_fills_continue_streams() {
        let Some(mut engine) = NeonBatch::new() else {
            return;
        };
        let keys = test_keys(LANES, 16);
        engine.schedule(&keys, 16).unwrap();
        let mut head = vec![0u8; LANES * 13];
        let mut tail = vec![0u8; LANES * 29];
        engine.fill(&mut head, 13);
        engine.fill(&mut tail, 29);
        let whole = scalar_reference(&keys, 16, 42);
        for lane in 0..LANES {
            assert_eq!(&head[lane * 13..(lane + 1) * 13], &whole[lane * 42..][..13]);
            assert_eq!(
                &tail[lane * 29..(lane + 1) * 29],
                &whole[lane * 42 + 13..][..29]
            );
        }
    }
}
