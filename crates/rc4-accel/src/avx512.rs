//! The AVX-512 batched RC4 engine: 16 lanes per gather/scatter instruction.
//!
//! # Layout
//!
//! The 16 permutations are interleaved as `u32` cells — `s[v * 16 + l]` is
//! `S_l[v]` zero-extended — so row `v` of all lanes is one 64-byte zmm
//! register. Per PRGA round the engine executes (vectors hold one 32-bit
//! element per lane):
//!
//! ```text
//! row  = load  s[i]                 ; 1 aligned zmm load
//! j    = (j + row) & 0xFF           ; vpaddd + vpandd
//! idx  = (j << 4) + lane_iota       ; element index of s[j][l]
//! sj   = gather s[idx]              ; vpgatherdd
//! scatter s[idx] <- row             ; vpscatterdd   (S[j] = S[i])
//! store s[i] <- sj                  ; 1 zmm store   (S[i] = S[j])
//! t    = (row + sj) & 0xFF
//! out  = gather s[(t << 4) + iota]  ; vpgatherdd
//! ```
//!
//! Memory-ordering subtleties mirror the portable engine: the gather of
//! `S[j]` runs *before* the scatter (so a lane with `j == i` reads the
//! pre-swap value it is about to overwrite, which is what the swap leaves
//! there), and the output gather runs after both swap stores are committed,
//! so no stale-row select is needed at all. Scatter element order is
//! irrelevant because lane `l` only ever touches column `l`: all 16
//! addresses are distinct by construction.
//!
//! # Safety
//!
//! The unsafe surface is exactly: (a) calling `#[target_feature(avx512f)]`
//! functions, guarded by `is_x86_feature_detected!` at construction — the
//! only way to obtain an [`Avx512Batch`]; (b) gather/scatter/load/store
//! intrinsics whose addresses are provably in bounds: every row index is
//! masked to `0..256` and lane offsets are `0..16`, so element indices stay
//! within the 4096-element table, and output scatters use byte offsets
//! `l * len + pos` with `l < scheduled`, `pos < len`, both checked against
//! `out.len() == scheduled * len` before the unsafe call.

use std::arch::x86_64::*;

use rc4::batch::{check_schedule, KeystreamBatch};
use rc4::KeyError;

/// Lane count of the AVX-512 engine: one `u32` element per zmm slot.
pub const AVX512_LANES: usize = 16;

const LANES: usize = AVX512_LANES;
const TABLE: usize = 256 * LANES;

/// The two per-engine tables, cache-line aligned so row loads/stores are
/// aligned zmm accesses.
#[repr(align(64))]
#[derive(Debug, Clone)]
struct Tables {
    /// Lane-interleaved permutations, `u32`-widened: `s[v * 16 + l] = S_l[v]`.
    s: [u32; TABLE],
    /// Lane-interleaved expanded key rows; only the first `key_len` rows are
    /// live after a `schedule` call.
    kt: [u32; TABLE],
}

/// Batched RC4 over AVX-512F gather/scatter; 16 independent keystreams.
///
/// Construct through [`Avx512Batch::new`] (runtime feature detection) or use
/// [`crate::AutoBatch`] to fall back to the portable engine automatically.
/// Streams are bit-identical to the scalar [`rc4::Prga`] per lane.
#[derive(Debug, Clone)]
pub struct Avx512Batch {
    t: Box<Tables>,
    /// Per-lane private index `j` (bottom 8 bits live), vector-resident
    /// during fills.
    j: [u32; LANES],
    /// Shared public counter `i`.
    i: u8,
    /// Key length of the last schedule, for the expanded-key row cycle.
    key_len: usize,
    /// Lanes covered by the last `schedule` call.
    scheduled: usize,
}

impl Avx512Batch {
    /// Creates the engine if the running CPU supports AVX-512F.
    ///
    /// Returns `None` otherwise; the successful detection here is the safety
    /// guarantee every later `unsafe` intrinsic call rests on.
    pub fn new() -> Option<Self> {
        if !std::arch::is_x86_feature_detected!("avx512f") {
            return None;
        }
        Some(Self {
            t: Box::new(Tables {
                s: [0; TABLE],
                kt: [0; TABLE],
            }),
            j: [0; LANES],
            i: 0,
            key_len: 1,
            scheduled: 0,
        })
    }

    /// Shared KSA entry: expand the keys into the transposed `kt` table, then
    /// run the vector KSA.
    fn schedule_impl(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        let n = check_schedule(keys, key_len, LANES)?;
        // kt[r * 16 + l] = byte r of lane l's key (unused lanes repeat the
        // last key so every lane always holds a valid scheduled state).
        for lane in 0..LANES {
            let key = &keys[lane.min(n - 1) * key_len..][..key_len];
            for (r, &byte) in key.iter().enumerate() {
                self.t.kt[r * LANES + lane] = u32::from(byte);
            }
        }
        self.key_len = key_len;
        self.scheduled = n;
        // SAFETY: `new` verified avx512f on this CPU.
        unsafe { self.ksa_avx512() };
        Ok(())
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn ksa_avx512(&mut self) {
        let s = self.t.s.as_mut_ptr();
        let kt = self.t.kt.as_ptr();
        let iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
        let mask = _mm512_set1_epi32(0xFF);
        // SAFETY: (covers every intrinsic in this block) `s` and `kt` are
        // 4096 u32, 64-byte aligned; every row index is in 0..256 (i is a
        // loop counter, j is masked with 0xFF, key row r cycles in
        // 0..key_len <= 256), so element indices `row * 16 + lane` are
        // < 4096 and dword addresses < 16 KiB past the base. avx512f was
        // verified at construction.
        unsafe {
            for v in 0..256 {
                _mm512_storeu_si512(s.add(v * LANES).cast(), _mm512_set1_epi32(v as i32));
            }
            let mut j = _mm512_setzero_si512();
            let mut r = 0usize;
            for i in 0..256 {
                let row = _mm512_loadu_si512(s.add(i * LANES).cast());
                let key_row = _mm512_loadu_si512(kt.add(r * LANES).cast());
                r += 1;
                if r == self.key_len {
                    r = 0;
                }
                j = _mm512_and_si512(_mm512_add_epi32(_mm512_add_epi32(j, row), key_row), mask);
                let idx = _mm512_add_epi32(_mm512_slli_epi32(j, 4), iota);
                // Gather before scatter: a lane with j == i must read the
                // value it is about to overwrite (swap-in-place semantics).
                let sj = _mm512_i32gather_epi32(idx, s.cast_const().cast(), 4);
                _mm512_i32scatter_epi32(s.cast(), idx, row, 4);
                _mm512_storeu_si512(s.add(i * LANES).cast(), sj);
            }
        }
        self.j = [0; LANES];
        self.i = 0;
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn fill_avx512(&mut self, out: &mut [u8], len: usize) {
        let n = self.scheduled;
        let s = self.t.s.as_mut_ptr();
        let iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
        let mask = _mm512_set1_epi32(0xFF);
        // Output staging: scattering straight into the lane-major `out`
        // would put all 16 dword targets at stride `len` — for the common
        // ~4 KiB streams that is one L1 set and the stores thrash. Instead
        // each chunk scatters into this small buffer at a fixed 256-byte
        // lane stride (16 distinct sets) and the chunk is then block-copied
        // per lane.
        const CHUNK: usize = 256;
        let mut scratch = [0u8; LANES * CHUNK];
        let lane_scratch = _mm512_mullo_epi32(iota, _mm512_set1_epi32(CHUNK as i32));

        // SAFETY: (covers every intrinsic in this block) table element
        // indices are `(v & 0xFF) * 16 + lane < 4096` as in `ksa_avx512`.
        // Output scatters store one dword per lane at byte offset
        // `l * CHUNK + k` with `l < 16` and `k <= CHUNK - 4`, always inside
        // `scratch`; the tail store goes through a 16-byte stack buffer.
        // avx512f was verified at construction.
        unsafe {
            let mut j = _mm512_loadu_si512(self.j.as_ptr().cast());
            let mut i = self.i as usize;
            let round = |i: usize, j: &mut __m512i| -> __m512i {
                let row = _mm512_loadu_si512(s.add(i * LANES).cast_const().cast());
                *j = _mm512_and_si512(_mm512_add_epi32(*j, row), mask);
                let idx = _mm512_add_epi32(_mm512_slli_epi32(*j, 4), iota);
                // Gather before scatter: swap-in-place for lanes with j == i.
                let sj = _mm512_i32gather_epi32(idx, s.cast_const().cast(), 4);
                _mm512_i32scatter_epi32(s.cast(), idx, row, 4);
                _mm512_storeu_si512(s.add(i * LANES).cast(), sj);
                // Both swap stores are committed, so the output gather needs
                // no stale-row fix-up.
                let t = _mm512_and_si512(_mm512_add_epi32(row, sj), mask);
                let tidx = _mm512_add_epi32(_mm512_slli_epi32(t, 4), iota);
                _mm512_i32gather_epi32(tidx, s.cast_const().cast(), 4)
            };

            // Four rounds per group, accumulated little-endian into one
            // dword per lane and scattered into the staging buffer — no
            // per-byte stores, no transpose pass.
            let mut pos = 0usize;
            while pos + 4 <= len {
                let m = (len - pos) & !3;
                let m = m.min(CHUNK);
                let mut k = 0usize;
                while k < m {
                    i = (i + 1) & 0xFF;
                    let mut acc = round(i, &mut j);
                    i = (i + 1) & 0xFF;
                    acc = _mm512_or_si512(acc, _mm512_slli_epi32(round(i, &mut j), 8));
                    i = (i + 1) & 0xFF;
                    acc = _mm512_or_si512(acc, _mm512_slli_epi32(round(i, &mut j), 16));
                    i = (i + 1) & 0xFF;
                    acc = _mm512_or_si512(acc, _mm512_slli_epi32(round(i, &mut j), 24));
                    let off = _mm512_add_epi32(lane_scratch, _mm512_set1_epi32(k as i32));
                    _mm512_i32scatter_epi32(scratch.as_mut_ptr().cast(), off, acc, 1);
                    k += 4;
                }
                for lane in 0..n {
                    out[lane * len + pos..][..m].copy_from_slice(&scratch[lane * CHUNK..][..m]);
                }
                pos += m;
            }
            // Tail positions one at a time through a packed 16-byte buffer.
            while pos < len {
                i = (i + 1) & 0xFF;
                let v = round(i, &mut j);
                let mut packed = [0u8; LANES];
                _mm_storeu_si128(packed.as_mut_ptr().cast(), _mm512_cvtepi32_epi8(v));
                for (lane, &byte) in packed.iter().take(n).enumerate() {
                    out[lane * len + pos] = byte;
                }
                pos += 1;
            }

            _mm512_storeu_si512(self.j.as_mut_ptr().cast(), j);
            self.i = i as u8;
        }
    }
}

impl KeystreamBatch for Avx512Batch {
    fn lanes(&self) -> usize {
        LANES
    }

    fn scheduled(&self) -> usize {
        self.scheduled
    }

    fn name(&self) -> &'static str {
        "avx512"
    }

    fn schedule(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        self.schedule_impl(keys, key_len)
    }

    fn fill(&mut self, out: &mut [u8], len: usize) {
        assert_eq!(
            out.len(),
            self.scheduled * len,
            "output buffer must hold len bytes per scheduled lane"
        );
        if len == 0 {
            return;
        }
        // SAFETY: the engine only exists if avx512f was detected, and the
        // buffer-shape assertions above establish the bounds the scatter
        // offsets rely on.
        unsafe { self.fill_avx512(out, len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Option<Avx512Batch> {
        Avx512Batch::new()
    }

    fn test_keys(n: usize, key_len: usize) -> Vec<u8> {
        (0..n * key_len).map(|i| (i * 131 + 7) as u8).collect()
    }

    fn scalar_reference(keys: &[u8], key_len: usize, len: usize) -> Vec<u8> {
        keys.chunks_exact(key_len)
            .flat_map(|key| rc4::keystream(key, len).unwrap())
            .collect()
    }

    #[test]
    fn matches_scalar_full_batch() {
        let Some(mut engine) = engine() else { return };
        for key_len in [3usize, 5, 16, 31, 256] {
            let keys = test_keys(LANES, key_len);
            engine.schedule(&keys, key_len).unwrap();
            let mut out = vec![0u8; LANES * 300];
            engine.fill(&mut out, 300);
            assert_eq!(
                out,
                scalar_reference(&keys, key_len, 300),
                "key_len {key_len}"
            );
        }
    }

    #[test]
    fn matches_scalar_partial_batch_and_tails() {
        let Some(mut engine) = engine() else { return };
        // 5 lanes, stream length not a multiple of the 4-byte scatter group.
        let keys = test_keys(5, 16);
        engine.schedule(&keys, 16).unwrap();
        assert_eq!(engine.scheduled(), 5);
        for len in [1usize, 2, 3, 5, 67, 70] {
            engine.schedule(&keys, 16).unwrap();
            let mut out = vec![0u8; 5 * len];
            engine.fill(&mut out, len);
            assert_eq!(out, scalar_reference(&keys, 16, len), "len {len}");
        }
    }

    #[test]
    fn chunked_fills_continue_streams() {
        let Some(mut engine) = engine() else { return };
        let keys = test_keys(LANES, 16);
        engine.schedule(&keys, 16).unwrap();
        let mut head = vec![0u8; LANES * 13];
        let mut tail = vec![0u8; LANES * 29];
        engine.fill(&mut head, 13);
        engine.fill(&mut tail, 29);
        let whole = scalar_reference(&keys, 16, 42);
        for lane in 0..LANES {
            assert_eq!(&head[lane * 13..(lane + 1) * 13], &whole[lane * 42..][..13]);
            assert_eq!(
                &tail[lane * 29..(lane + 1) * 29],
                &whole[lane * 42 + 13..][..29]
            );
        }
    }

    #[test]
    fn zero_len_fill_is_a_no_op() {
        let Some(mut engine) = engine() else { return };
        let keys = test_keys(2, 16);
        engine.schedule(&keys, 16).unwrap();
        let mut empty: Vec<u8> = Vec::new();
        engine.fill(&mut empty, 0);
        let mut out = vec![0u8; 2 * 16];
        engine.fill(&mut out, 16);
        assert_eq!(out, scalar_reference(&keys, 16, 16));
    }

    #[test]
    fn rejects_invalid_key_length() {
        let Some(mut engine) = engine() else { return };
        assert!(engine.schedule(&[0u8; 257], 257).is_err());
    }
}
