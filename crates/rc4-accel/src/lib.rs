//! Hardware-accelerated batched RC4 keystream engines.
//!
//! The portable engine ([`rc4::batch::InterleavedBatch`]) is bounded by
//! scalar instruction throughput: every RC4 round costs ~13 µops per lane, so
//! even with perfect ILP the safe code tops out around 2× the scalar PRGA.
//! AVX-512F changes the arithmetic: with the permutations of 16 lanes
//! interleaved as `u32` cells, one *row* of all 16 lanes is exactly one zmm
//! register, and the data-dependent accesses become two `vpgatherdd`s and one
//! `vpscatterdd` per round — a handful of instructions stepping 16 keystreams
//! at once ([`Avx512Batch`]).
//!
//! Everything here implements the same [`KeystreamBatch`] trait as the
//! portable module and is bit-identical to the scalar [`rc4::Prga`] per lane
//! (property-tested against it). [`AutoBatch`] picks the fastest engine the
//! running CPU supports, so consumers just write:
//!
//! ```
//! use rc4_accel::{AutoBatch, KeystreamBatch};
//!
//! let mut engine = AutoBatch::new();
//! let keys = *b"KeyKez"; // flat lane-major key buffer
//! engine.schedule(&keys, 3).unwrap();
//! let mut out = vec![0u8; 2 * 4];
//! engine.fill(&mut out, 4);
//! assert_eq!(&out[..4], &rc4::keystream(b"Key", 4).unwrap()[..]);
//! ```
//!
//! # Why a separate crate
//!
//! The `rc4` crate is `forbid(unsafe_code)` — a guarantee worth keeping for
//! the cipher that every statistic in the reproduction rests on. SIMD
//! gather/scatter intrinsics are unavoidably `unsafe`, so they live here, in
//! a small crate whose entire unsafe surface is one module with documented
//! in-bounds invariants, instead of weakening the core crate.

#![warn(missing_docs)]

pub use rc4::batch::{DefaultBatch, KeystreamBatch};
use rc4::KeyError;

#[cfg(target_arch = "x86_64")]
mod avx512;

#[cfg(target_arch = "x86_64")]
pub use avx512::Avx512Batch;

/// The best batch engine the running CPU supports, behind one type.
///
/// On x86-64 with AVX-512F this is [`Avx512Batch`] (16 lanes); everywhere
/// else it is the portable [`DefaultBatch`]. The variant is chosen once at
/// construction — the hot loops contain no feature checks.
#[derive(Debug, Clone)]
pub enum AutoBatch {
    /// AVX-512 gather/scatter engine (16 lanes).
    #[cfg(target_arch = "x86_64")]
    Avx512(Avx512Batch),
    /// Portable lane-interleaved engine (boxed: the inline state tables
    /// would otherwise dominate the enum's size).
    Portable(Box<DefaultBatch>),
}

impl AutoBatch {
    /// Picks the fastest engine available on this CPU.
    pub fn new() -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(engine) = Avx512Batch::new() {
            return AutoBatch::Avx512(engine);
        }
        AutoBatch::Portable(Box::new(DefaultBatch::new()))
    }

    /// Short name of the selected engine, for logs and bench labels.
    pub fn engine_name(&self) -> &'static str {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(_) => "avx512",
            AutoBatch::Portable(_) => "portable",
        }
    }
}

impl Default for AutoBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl KeystreamBatch for AutoBatch {
    fn lanes(&self) -> usize {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(e) => e.lanes(),
            AutoBatch::Portable(e) => e.lanes(),
        }
    }

    fn scheduled(&self) -> usize {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(e) => e.scheduled(),
            AutoBatch::Portable(e) => e.scheduled(),
        }
    }

    fn schedule(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(e) => e.schedule(keys, key_len),
            AutoBatch::Portable(e) => e.schedule(keys, key_len),
        }
    }

    fn fill(&mut self, out: &mut [u8], len: usize) {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(e) => e.fill(out, len),
            AutoBatch::Portable(e) => e.fill(out, len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_batch_matches_scalar() {
        let mut engine = AutoBatch::new();
        let lanes = engine.lanes();
        let keys: Vec<u8> = (0..lanes * 16).map(|i| (i * 37 + 11) as u8).collect();
        engine.schedule(&keys, 16).unwrap();
        let mut out = vec![0u8; lanes * 80];
        engine.fill(&mut out, 80);
        for (lane, key) in keys.chunks_exact(16).enumerate() {
            let expected = rc4::keystream(key, 80).unwrap();
            assert_eq!(
                &out[lane * 80..(lane + 1) * 80],
                &expected[..],
                "lane {lane} ({})",
                engine.engine_name()
            );
        }
    }

    #[test]
    fn auto_batch_reports_an_engine() {
        let engine = AutoBatch::new();
        assert!(["avx512", "portable"].contains(&engine.engine_name()));
        assert!(engine.lanes() >= 1);
    }
}
