//! Hardware-accelerated batched RC4 keystream engines and SIMD scoring kernels.
//!
//! The portable engine ([`rc4::batch::InterleavedBatch`]) is bounded by
//! scalar instruction throughput: every RC4 round costs ~13 µops per lane, so
//! even with perfect ILP the safe code tops out around 2× the scalar PRGA.
//! Wide SIMD changes the arithmetic: with the permutations of N lanes
//! interleaved as `u32` cells, one *row* of all lanes is exactly one vector
//! register, and the data-dependent accesses become gathers (and scatters
//! where the ISA has them) — a handful of instructions stepping N keystreams
//! at once. Three hardware tiers implement that idea:
//!
//! | engine | ISA | lanes | data-dependent accesses |
//! |---|---|---|---|
//! | [`Avx512Batch`] | x86-64 AVX-512F | 16 | `vpgatherdd` + `vpscatterdd` |
//! | [`Avx2Batch`] | x86-64 AVX2 | 8 | `vpgatherdd` + scalar stores |
//! | `NeonBatch` (aarch64 builds) | NEON | 4 | scalar, vector index math |
//!
//! Everything here implements the same [`KeystreamBatch`] trait as the
//! portable module and is bit-identical to the scalar [`rc4::Prga`] per lane
//! (property-tested against it, and cross-checked engine-vs-engine by the
//! differential suite in `tests/differential.rs`). [`AutoBatch`] picks the
//! fastest engine the running CPU supports — preferring avx512 → avx2 → neon
//! → portable — so consumers just write:
//!
//! ```
//! use rc4_accel::{AutoBatch, KeystreamBatch};
//!
//! let mut engine = AutoBatch::new();
//! let keys = *b"KeyKez"; // flat lane-major key buffer
//! engine.schedule(&keys, 3).unwrap();
//! let mut out = vec![0u8; 2 * 4];
//! engine.fill(&mut out, 4);
//! assert_eq!(&out[..4], &rc4::keystream(b"Key", 4).unwrap()[..]);
//! ```
//!
//! # Forcing an engine
//!
//! Every tier must be measurable on any box, so the dispatch has an override
//! hook: setting `RC4_ACCEL_FORCE=<engine>` (one of [`Engine::CHOICES`])
//! makes [`AutoBatch::new`] select that engine everywhere — including deep
//! inside dataset generation — and `repro bench --engine <engine>` drives the
//! perf smoke suite through it. Forcing an engine the CPU lacks is an error
//! (CLIs validate up front; the library panics rather than silently
//! measuring the wrong engine). Because every engine is bit-identical, the
//! override can never change results — only wall-clock.
//!
//! # Why a separate crate
//!
//! The `rc4` crate is `forbid(unsafe_code)` — a guarantee worth keeping for
//! the cipher that every statistic in the reproduction rests on. SIMD
//! gather/scatter intrinsics are unavoidably `unsafe`, so they live here, in
//! a small crate whose unsafe surface is a few modules with documented
//! in-bounds invariants, instead of weakening the core crate.
//!
//! The same reasoning hosts the [`score`] module: explicitly vectorized
//! f64 accumulation kernels for the plaintext-recovery likelihood hot path,
//! bit-identical to their scalar loops by construction (no FMA contraction,
//! same per-slot accumulation order).

#![warn(missing_docs)]

pub use rc4::batch::{DefaultBatch, KeystreamBatch};
use rc4::KeyError;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
#[cfg(target_arch = "aarch64")]
mod neon;
pub mod score;

#[cfg(target_arch = "x86_64")]
pub use avx2::Avx2Batch;
#[cfg(target_arch = "x86_64")]
pub use avx512::Avx512Batch;
#[cfg(target_arch = "aarch64")]
pub use neon::NeonBatch;

/// Environment variable consulted by [`AutoBatch::new`] to force an engine.
pub const FORCE_ENV: &str = "RC4_ACCEL_FORCE";

/// A batch engine tier, in dispatch-preference order.
///
/// The enum names every tier on every architecture so operator-facing
/// diagnostics (CLI errors, bench labels) are identical across builds;
/// requesting a tier the current CPU or build lacks fails at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Pick the fastest available tier (the default dispatch).
    Auto,
    /// 16-lane AVX-512F gather/scatter engine (x86-64).
    Avx512,
    /// 8-lane AVX2 gather engine (x86-64).
    Avx2,
    /// 4-lane NEON engine (aarch64).
    Neon,
    /// The portable lane-interleaved engine (any CPU).
    Portable,
}

impl Engine {
    /// Every engine name accepted by [`Engine::parse`] / `RC4_ACCEL_FORCE`,
    /// in dispatch-preference order.
    pub const CHOICES: [&'static str; 5] = ["auto", "avx512", "avx2", "neon", "portable"];

    /// The engine's stable name (matches [`KeystreamBatch::name`] of the
    /// engine it selects, except `Auto`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Auto => "auto",
            Engine::Avx512 => "avx512",
            Engine::Avx2 => "avx2",
            Engine::Neon => "neon",
            Engine::Portable => "portable",
        }
    }

    /// Parses an engine name; `None` for anything outside [`Engine::CHOICES`].
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "auto" => Some(Engine::Auto),
            "avx512" => Some(Engine::Avx512),
            "avx2" => Some(Engine::Avx2),
            "neon" => Some(Engine::Neon),
            "portable" => Some(Engine::Portable),
            _ => None,
        }
    }

    /// Reads and validates the `RC4_ACCEL_FORCE` override.
    ///
    /// `Ok(None)` when unset or empty; the error message lists the valid
    /// choices (CLIs print it verbatim and exit 2).
    ///
    /// # Errors
    ///
    /// Returns the diagnostic message when the variable names no known
    /// engine.
    pub fn from_env() -> Result<Option<Engine>, String> {
        match std::env::var(FORCE_ENV) {
            Ok(value) if value.is_empty() => Ok(None),
            Ok(value) => Engine::parse(&value).map(Some).ok_or_else(|| {
                format!(
                    "{FORCE_ENV}={value}: unknown engine (choices: {})",
                    Engine::CHOICES.join(", ")
                )
            }),
            Err(_) => Ok(None),
        }
    }
}

/// Engine names the running CPU (and build target) can instantiate, in
/// dispatch-preference order. Always contains `"portable"`.
pub fn available_engines() -> Vec<&'static str> {
    let mut names = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            names.push("avx512");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            names.push("avx2");
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            names.push("neon");
        }
    }
    names.push("portable");
    names
}

/// The best batch engine the running CPU supports, behind one type.
///
/// Dispatch prefers avx512 → avx2 → neon → portable; the variant is chosen
/// once at construction — the hot loops contain no feature checks. The
/// `RC4_ACCEL_FORCE` environment variable overrides the choice (see the
/// crate docs).
#[derive(Debug, Clone)]
pub enum AutoBatch {
    /// AVX-512 gather/scatter engine (16 lanes).
    #[cfg(target_arch = "x86_64")]
    Avx512(Avx512Batch),
    /// AVX2 gather engine (8 lanes).
    #[cfg(target_arch = "x86_64")]
    Avx2(Avx2Batch),
    /// NEON engine (4 lanes).
    #[cfg(target_arch = "aarch64")]
    Neon(NeonBatch),
    /// Portable lane-interleaved engine (boxed: the inline state tables
    /// would otherwise dominate the enum's size).
    Portable(Box<DefaultBatch>),
}

impl AutoBatch {
    /// Picks the fastest engine available on this CPU, honouring the
    /// `RC4_ACCEL_FORCE` override.
    ///
    /// # Panics
    ///
    /// Panics when `RC4_ACCEL_FORCE` names an unknown engine or one this CPU
    /// cannot run: a forced measurement silently falling back to a different
    /// engine would be worse than stopping. CLI entry points validate the
    /// variable first and turn the same condition into exit code 2.
    pub fn new() -> Self {
        let forced = Engine::from_env().unwrap_or_else(|msg| panic!("{msg}"));
        let engine = forced.unwrap_or(Engine::Auto);
        Self::with_engine(engine).unwrap_or_else(|msg| panic!("{msg}"))
    }

    /// Constructs a specific engine tier ([`Engine::Auto`] picks the fastest
    /// available, never failing — the portable engine always exists).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic message when the requested tier is not available
    /// on this CPU or build target.
    pub fn with_engine(engine: Engine) -> Result<Self, String> {
        let unavailable = |name: &str| {
            format!(
                "engine '{name}' is not available on this CPU (available: {})",
                available_engines().join(", ")
            )
        };
        match engine {
            Engine::Auto => {
                #[cfg(target_arch = "x86_64")]
                if let Some(engine) = Avx512Batch::new() {
                    return Ok(AutoBatch::Avx512(engine));
                }
                #[cfg(target_arch = "x86_64")]
                if let Some(engine) = Avx2Batch::new() {
                    return Ok(AutoBatch::Avx2(engine));
                }
                #[cfg(target_arch = "aarch64")]
                if let Some(engine) = NeonBatch::new() {
                    return Ok(AutoBatch::Neon(engine));
                }
                Ok(AutoBatch::Portable(Box::new(DefaultBatch::new())))
            }
            Engine::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                if let Some(engine) = Avx512Batch::new() {
                    return Ok(AutoBatch::Avx512(engine));
                }
                Err(unavailable("avx512"))
            }
            Engine::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                if let Some(engine) = Avx2Batch::new() {
                    return Ok(AutoBatch::Avx2(engine));
                }
                Err(unavailable("avx2"))
            }
            Engine::Neon => {
                #[cfg(target_arch = "aarch64")]
                if let Some(engine) = NeonBatch::new() {
                    return Ok(AutoBatch::Neon(engine));
                }
                Err(unavailable("neon"))
            }
            Engine::Portable => Ok(AutoBatch::Portable(Box::new(DefaultBatch::new()))),
        }
    }

    /// Short name of the selected engine, for logs and bench labels.
    pub fn engine_name(&self) -> &'static str {
        self.name()
    }
}

impl Default for AutoBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl KeystreamBatch for AutoBatch {
    fn lanes(&self) -> usize {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(e) => e.lanes(),
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx2(e) => e.lanes(),
            #[cfg(target_arch = "aarch64")]
            AutoBatch::Neon(e) => e.lanes(),
            AutoBatch::Portable(e) => e.lanes(),
        }
    }

    fn scheduled(&self) -> usize {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(e) => e.scheduled(),
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx2(e) => e.scheduled(),
            #[cfg(target_arch = "aarch64")]
            AutoBatch::Neon(e) => e.scheduled(),
            AutoBatch::Portable(e) => e.scheduled(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(e) => e.name(),
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx2(e) => e.name(),
            #[cfg(target_arch = "aarch64")]
            AutoBatch::Neon(e) => e.name(),
            AutoBatch::Portable(e) => e.name(),
        }
    }

    fn schedule(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(e) => e.schedule(keys, key_len),
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx2(e) => e.schedule(keys, key_len),
            #[cfg(target_arch = "aarch64")]
            AutoBatch::Neon(e) => e.schedule(keys, key_len),
            AutoBatch::Portable(e) => e.schedule(keys, key_len),
        }
    }

    fn fill(&mut self, out: &mut [u8], len: usize) {
        match self {
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx512(e) => e.fill(out, len),
            #[cfg(target_arch = "x86_64")]
            AutoBatch::Avx2(e) => e.fill(out, len),
            #[cfg(target_arch = "aarch64")]
            AutoBatch::Neon(e) => e.fill(out, len),
            AutoBatch::Portable(e) => e.fill(out, len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_batch_matches_scalar() {
        let mut engine = AutoBatch::new();
        let lanes = engine.lanes();
        let keys: Vec<u8> = (0..lanes * 16).map(|i| (i * 37 + 11) as u8).collect();
        engine.schedule(&keys, 16).unwrap();
        let mut out = vec![0u8; lanes * 80];
        engine.fill(&mut out, 80);
        for (lane, key) in keys.chunks_exact(16).enumerate() {
            let expected = rc4::keystream(key, 80).unwrap();
            assert_eq!(
                &out[lane * 80..(lane + 1) * 80],
                &expected[..],
                "lane {lane} ({})",
                engine.engine_name()
            );
        }
    }

    #[test]
    fn auto_batch_reports_an_engine() {
        let engine = AutoBatch::new();
        assert!(["avx512", "avx2", "neon", "portable"].contains(&engine.engine_name()));
        assert!(engine.lanes() >= 1);
    }

    #[test]
    fn engine_parse_round_trips_choices() {
        for name in Engine::CHOICES {
            let engine = Engine::parse(name).expect("every listed choice parses");
            assert_eq!(engine.name(), name);
        }
        assert_eq!(Engine::parse("sse9"), None);
    }

    #[test]
    fn every_available_engine_constructs_and_matches_scalar() {
        for name in available_engines() {
            let engine_kind = Engine::parse(name).expect("available engines parse");
            let mut engine = AutoBatch::with_engine(engine_kind).expect("listed as available");
            assert_eq!(engine.engine_name(), name);
            let lanes = engine.lanes();
            let keys: Vec<u8> = (0..lanes * 5).map(|i| (i * 91 + 3) as u8).collect();
            engine.schedule(&keys, 5).unwrap();
            let mut out = vec![0u8; lanes * 40];
            engine.fill(&mut out, 40);
            for (lane, key) in keys.chunks_exact(5).enumerate() {
                let expected = rc4::keystream(key, 40).unwrap();
                assert_eq!(&out[lane * 40..(lane + 1) * 40], &expected[..], "{name}");
            }
        }
    }

    #[test]
    fn unavailable_engine_is_a_listed_error() {
        // At most one of avx512/neon can exist per build; whichever the
        // host lacks must produce the diagnostic with the available list.
        for kind in [Engine::Avx512, Engine::Avx2, Engine::Neon] {
            if available_engines().contains(&kind.name()) {
                continue;
            }
            let err = AutoBatch::with_engine(kind).unwrap_err();
            assert!(err.contains("not available"), "{err}");
            assert!(err.contains("portable"), "{err}");
        }
    }
}
