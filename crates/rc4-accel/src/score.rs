//! Explicitly vectorized f64 accumulation kernels for likelihood scoring.
//!
//! The plaintext-recovery hot path (Eq. 11/13/15 of the paper) reduces to one
//! primitive: for a 256-entry table `T` and a 256-slot accumulator row `A`,
//!
//! ```text
//! A[m] += T[xor ^ m] * delta        for m in 0..256
//! ```
//!
//! — the per-candidate XOR re-indexing of a count (or log-probability) table.
//! XOR by a constant permutes each aligned 4-element block as a whole: for
//! output block `q` (slots `4q..4q+4`) the four source values are exactly the
//! aligned source block `(xor >> 2) ^ q`, in an order that depends only on
//! `xor & 3`. So the kernel is a strided sweep of aligned loads, one of four
//! fixed in-register shuffles, a multiply and an add — no gathers needed:
//!
//! ```text
//! v = load T[((xor >> 2) ^ q) * 4 ..]      ; 4 f64
//! v = shuffle(v, xor & 3)                  ; 0:id, 1:swap pairs, 2:swap halves, 3:both
//! A[4q..] += v * delta                     ; vmulpd + vaddpd (NO vfmadd)
//! ```
//!
//! # Bit-identity
//!
//! The scalar fallback and the AVX2 path perform, per slot, the *same single*
//! `A[m] += T[xor ^ m] * delta` operation with the same operands; IEEE-754
//! multiplication and addition are deterministic, slots are independent, and
//! the multiply and add are kept as two separate rounding steps (no FMA
//! contraction — `_mm256_fmadd_pd` would single-round and change results).
//! Callers may therefore mix kernels freely — across CPUs, or with the
//! `RC4_ACCEL_FORCE=portable` override — without changing a single output
//! bit. The differential suite pins this.
//!
//! # Safety
//!
//! The only unsafe surface is the `#[target_feature(avx2)]` function, called
//! iff `is_x86_feature_detected!("avx2")` held at first dispatch; all
//! loads/stores derive from 256-length-asserted slices with block indices in
//! `0..64`, so every address is in bounds.

/// Whether the explicit-SIMD kernel is active (cached detection, honouring
/// `RC4_ACCEL_FORCE=portable` so a forced-portable measurement run really
/// exercises the scalar scoring loops too).
fn simd_enabled() -> bool {
    use std::sync::OnceLock;
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if matches!(crate::Engine::from_env(), Ok(Some(crate::Engine::Portable))) {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Name of the scoring kernel in use (`"avx2"` or `"portable"`), for bench
/// labels and logs.
pub fn kernel_name() -> &'static str {
    if simd_enabled() {
        "avx2"
    } else {
        "portable"
    }
}

/// `acc[m] += table[xor ^ m] * delta` for all `m in 0..256`.
///
/// The one likelihood-scoring primitive (see the module docs); bit-identical
/// between the SIMD and scalar paths by construction.
///
/// # Panics
///
/// Panics unless `acc` and `table` are exactly 256 long.
#[inline]
pub fn xor_mul_add_256(acc: &mut [f64], table: &[f64], xor: u8, delta: f64) {
    assert_eq!(acc.len(), 256, "accumulator row must be 256 slots");
    assert_eq!(table.len(), 256, "table must be 256 entries");
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: avx2 was detected by `simd_enabled`; both slices are
        // exactly 256 long (asserted above).
        unsafe { xor_mul_add_256_avx2(acc, table, xor, delta) };
        return;
    }
    xor_mul_add_256_scalar(acc, table, xor, delta);
}

/// The scalar reference loop — also the non-x86 and forced-portable path.
fn xor_mul_add_256_scalar(acc: &mut [f64], table: &[f64], xor: u8, delta: f64) {
    let xor = xor as usize;
    for (m, slot) in acc.iter_mut().enumerate() {
        *slot += table[xor ^ m] * delta;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn xor_mul_add_256_avx2(acc: &mut [f64], table: &[f64], xor: u8, delta: f64) {
    use std::arch::x86_64::*;
    let xor = xor as usize;
    let hi = xor >> 2;
    let d = _mm256_set1_pd(delta);
    // SAFETY: (covers every intrinsic below) block indices are `q ^ hi < 64`
    // and `q < 64`, so all 4-element f64 loads/stores stay inside the two
    // 256-entry slices; avx2 was verified by the caller.
    unsafe {
        for q in 0..64usize {
            let mut v = _mm256_loadu_pd(table.as_ptr().add((q ^ hi) * 4));
            // The in-block source order is `t ^ (xor & 3)`: bit 1 swaps the
            // 128-bit halves, bit 0 swaps the elements within each half.
            if xor & 2 != 0 {
                v = _mm256_permute2f128_pd(v, v, 0x01);
            }
            if xor & 1 != 0 {
                v = _mm256_permute_pd(v, 0b0101);
            }
            let dst = acc.as_mut_ptr().add(q * 4);
            // Separate multiply and add on purpose: FMA would single-round
            // and break bit-identity with the scalar path.
            let sum = _mm256_add_pd(_mm256_loadu_pd(dst), _mm256_mul_pd(v, d));
            _mm256_storeu_pd(dst, sum);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(seed: u64) -> Vec<f64> {
        (0..256u64)
            .map(|i| {
                let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
                x ^= x >> 33;
                (x % 10_000) as f64 / 977.0 - 4.0
            })
            .collect()
    }

    #[test]
    fn kernel_matches_scalar_reference_for_every_xor() {
        let t = table(7);
        for xor in 0..=255u8 {
            let mut got = table(99);
            let mut want = got.clone();
            xor_mul_add_256(&mut got, &t, xor, -1.25);
            xor_mul_add_256_scalar(&mut want, &t, xor, -1.25);
            // Bit-level comparison, not epsilon: the contract is identity.
            let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "xor {xor}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_matches_scalar_bitwise() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let t = table(3);
        for xor in [0u8, 1, 2, 3, 4, 0x5A, 0xFF] {
            for delta in [0.0, -0.0, 2.5, -1.0e-12, 1.0e300] {
                let mut got = table(11);
                let mut want = got.clone();
                // SAFETY: avx2 detected above; slices are 256 long.
                unsafe { xor_mul_add_256_avx2(&mut got, &t, xor, delta) };
                xor_mul_add_256_scalar(&mut want, &t, xor, delta);
                let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
                let want_bits: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_bits, want_bits, "xor {xor} delta {delta}");
            }
        }
    }

    #[test]
    fn kernel_name_is_one_of_the_two_paths() {
        assert!(["avx2", "portable"].contains(&kernel_name()));
    }
}
