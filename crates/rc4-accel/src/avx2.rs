//! The AVX2 batched RC4 engine: 16 lanes across two ymm halves, gathered
//! loads and scalar swap stores.
//!
//! # Layout
//!
//! Identical discipline to the AVX-512 engine one tier up: the 16
//! permutations are interleaved as `u32` cells — `s[v * 16 + l]` is `S_l[v]`
//! zero-extended — so row `v` of all lanes is one 64-byte line read as two ymm
//! registers (lanes 0..8 and 8..16). Per PRGA round, per half:
//!
//! ```text
//! row  = load  s[i]                  ; 1 aligned ymm load
//! j    = (j + row) & 0xFF            ; vpaddd + vpand
//! idx  = (j << 4) + lane_iota        ; element index of s[j][l]
//! sj   = gather s[idx]               ; vpgatherdd
//! s[idx[l]] <- s[i][l]  (per lane)   ; 8 scalar stores  (S[j] = S[i])
//! store s[i] <- sj                   ; 1 ymm store      (S[i] = S[j])
//! t    = (row + sj) & 0xFF
//! out  = gather s[(t << 4) + iota]   ; vpgatherdd
//! ```
//!
//! Running 16 lanes as two independent 8-lane halves is the point, not an
//! accident: the RC4 round is a serial dependency chain (row load → `j`
//! update → gather → swap stores → next row load), so an 8-lane ymm loop is
//! latency-bound with most ports idle. Two interleaved chains let the
//! out-of-order core overlap their gathers and nearly halve the per-key cost
//! on the rekey-heavy shapes — the same reason the AVX-512 engine runs 16
//! lanes. The halves never alias: lane `l` only ever touches table column
//! `l`, so the low half (columns 0..8) and high half (columns 8..16) are
//! disjoint and their relative order within a round is irrelevant.
//!
//! AVX2 has `vpgatherdd` but **no scatter**, so the `S[j] = S[i]` half of the
//! swap is scalar stores through a spilled index vector. The ordering rules
//! still mirror the portable and AVX-512 engines: the gather of `S[j]` runs
//! *before* the scalar stores (a lane with `j == i` must read the pre-swap
//! value it is about to overwrite), the scalar stores read the row values
//! straight out of the still-unmodified row `i`, and the output gather runs
//! after both halves of the swap are committed.
//!
//! # Safety
//!
//! The unsafe surface is exactly: (a) calling `#[target_feature(avx2)]`
//! functions, guarded by `is_x86_feature_detected!` at construction — the only
//! way to obtain an [`Avx2Batch`]; (b) gather/load/store intrinsics and raw
//! scalar stores whose addresses are provably in bounds: every row index is
//! masked to `0..256` and lane offsets are `0..16`, so element indices stay
//! within the 4096-element table, and output writes use byte offsets
//! `l * len + pos` with `l < scheduled`, `pos < len`, both checked against
//! `out.len() == scheduled * len` before the unsafe call.

use std::arch::x86_64::*;

use rc4::batch::{check_schedule, KeystreamBatch};
use rc4::KeyError;

/// Lane count of the AVX2 engine: two ymm halves of 8 `u32` slots each.
pub const AVX2_LANES: usize = 16;

const LANES: usize = AVX2_LANES;
const HALF: usize = LANES / 2;
const TABLE: usize = 256 * LANES;

/// The two per-engine tables, 32-byte aligned so half-row loads/stores are
/// aligned ymm accesses.
#[repr(align(32))]
#[derive(Debug, Clone)]
struct Tables {
    /// Lane-interleaved permutations, `u32`-widened: `s[v * 16 + l] = S_l[v]`.
    s: [u32; TABLE],
    /// Lane-interleaved expanded key rows; only the first `key_len` rows are
    /// live after a `schedule` call.
    kt: [u32; TABLE],
}

/// Batched RC4 over AVX2 gathers; 16 independent keystreams.
///
/// Construct through [`Avx2Batch::new`] (runtime feature detection) or use
/// [`crate::AutoBatch`] to pick the best engine automatically. Streams are
/// bit-identical to the scalar [`rc4::Prga`] per lane.
#[derive(Debug, Clone)]
pub struct Avx2Batch {
    t: Box<Tables>,
    /// Per-lane private index `j` (bottom 8 bits live), vector-resident
    /// during fills.
    j: [u32; LANES],
    /// Shared public counter `i`.
    i: u8,
    /// Key length of the last schedule, for the expanded-key row cycle.
    key_len: usize,
    /// Lanes covered by the last `schedule` call.
    scheduled: usize,
}

impl Avx2Batch {
    /// Creates the engine if the running CPU supports AVX2.
    ///
    /// Returns `None` otherwise; the successful detection here is the safety
    /// guarantee every later `unsafe` intrinsic call rests on.
    pub fn new() -> Option<Self> {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return None;
        }
        Some(Self {
            t: Box::new(Tables {
                s: [0; TABLE],
                kt: [0; TABLE],
            }),
            j: [0; LANES],
            i: 0,
            key_len: 1,
            scheduled: 0,
        })
    }

    /// Shared KSA entry: expand the keys into the transposed `kt` table, then
    /// run the vector KSA.
    fn schedule_impl(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        let n = check_schedule(keys, key_len, LANES)?;
        // kt[r * 16 + l] = byte r of lane l's key (unused lanes repeat the
        // last key so every lane always holds a valid scheduled state).
        for lane in 0..LANES {
            let key = &keys[lane.min(n - 1) * key_len..][..key_len];
            for (r, &byte) in key.iter().enumerate() {
                self.t.kt[r * LANES + lane] = u32::from(byte);
            }
        }
        self.key_len = key_len;
        self.scheduled = n;
        // SAFETY: `new` verified avx2 on this CPU.
        unsafe { self.ksa_avx2() };
        Ok(())
    }

    #[target_feature(enable = "avx2")]
    unsafe fn ksa_avx2(&mut self) {
        let s = self.t.s.as_mut_ptr();
        let kt = self.t.kt.as_ptr();
        let iota_lo = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let iota_hi = _mm256_setr_epi32(8, 9, 10, 11, 12, 13, 14, 15);
        let mask = _mm256_set1_epi32(0xFF);
        // SAFETY: (covers every intrinsic and raw store in this block) `s`
        // and `kt` are 4096 u32, 32-byte aligned; every row index is in
        // 0..256 (i is a loop counter, j is masked with 0xFF, key row r
        // cycles in 0..key_len <= 256), so element indices `row * 16 + lane`
        // are < 4096 and dword addresses < 16 KiB past the base. avx2 was
        // verified at construction.
        unsafe {
            for v in 0..256 {
                let fill = _mm256_set1_epi32(v as i32);
                _mm256_storeu_si256(s.add(v * LANES).cast(), fill);
                _mm256_storeu_si256(s.add(v * LANES + HALF).cast(), fill);
            }
            let mut j_lo = _mm256_setzero_si256();
            let mut j_hi = _mm256_setzero_si256();
            let mut r = 0usize;
            let mut idx_arr = [0u32; LANES];
            let mut val_arr = [0u32; LANES];
            // Row i lives in registers across iterations. The next row is
            // loaded *before* this round's scalar swap stores — otherwise
            // every round's row load stalls on 16 in-flight 4-byte stores
            // (store-to-load forwarding cannot service a ymm load from
            // scattered dword stores), serializing the whole KSA on the
            // store buffer. The one lane a hoisted load can miss is a swap
            // landing exactly on row i+1 (j == i+1), which is patched in
            // registers from the known store value (row i) below.
            let mut row_lo = _mm256_loadu_si256(s.cast_const().cast());
            let mut row_hi = _mm256_loadu_si256(s.add(HALF).cast_const().cast());
            for i in 0..256 {
                let key_lo = _mm256_loadu_si256(kt.add(r * LANES).cast());
                let key_hi = _mm256_loadu_si256(kt.add(r * LANES + HALF).cast());
                r += 1;
                if r == self.key_len {
                    r = 0;
                }
                j_lo = _mm256_and_si256(
                    _mm256_add_epi32(_mm256_add_epi32(j_lo, row_lo), key_lo),
                    mask,
                );
                j_hi = _mm256_and_si256(
                    _mm256_add_epi32(_mm256_add_epi32(j_hi, row_hi), key_hi),
                    mask,
                );
                let idx_lo = _mm256_add_epi32(_mm256_slli_epi32(j_lo, 4), iota_lo);
                let idx_hi = _mm256_add_epi32(_mm256_slli_epi32(j_hi, 4), iota_hi);
                // Gather before the scalar scatter: a lane with j == i must
                // read the value it is about to overwrite (swap-in-place
                // semantics).
                let sj_lo = _mm256_i32gather_epi32(s.cast_const().cast(), idx_lo, 4);
                let sj_hi = _mm256_i32gather_epi32(s.cast_const().cast(), idx_hi, 4);
                // Hoisted next-row load (i = 255 wraps to row 0; the value
                // is discarded, the load just stays in bounds). Safe with
                // respect to this round's stores: the S[i] = S[j] row store
                // can never hit row i+1, and a swap store hits it only when
                // j == i+1 — exactly the lanes patched here with the value
                // those stores will write (S[i], still in registers).
                let inext = (i + 1) & 0xFF;
                let next = _mm256_set1_epi32(inext as i32);
                let mut nrow_lo = _mm256_loadu_si256(s.add(inext * LANES).cast_const().cast());
                let mut nrow_hi =
                    _mm256_loadu_si256(s.add(inext * LANES + HALF).cast_const().cast());
                nrow_lo = _mm256_blendv_epi8(nrow_lo, row_lo, _mm256_cmpeq_epi32(j_lo, next));
                nrow_hi = _mm256_blendv_epi8(nrow_hi, row_hi, _mm256_cmpeq_epi32(j_hi, next));
                _mm256_storeu_si256(idx_arr.as_mut_ptr().cast(), idx_lo);
                _mm256_storeu_si256(idx_arr.as_mut_ptr().add(HALF).cast(), idx_hi);
                _mm256_storeu_si256(val_arr.as_mut_ptr().cast(), row_lo);
                _mm256_storeu_si256(val_arr.as_mut_ptr().add(HALF).cast(), row_hi);
                // S[j] = S[i], one lane column at a time, values straight
                // from the spilled row registers.
                for (&e, &v) in idx_arr.iter().zip(val_arr.iter()) {
                    *s.add(e as usize) = v;
                }
                _mm256_storeu_si256(s.add(i * LANES).cast(), sj_lo);
                _mm256_storeu_si256(s.add(i * LANES + HALF).cast(), sj_hi);
                row_lo = nrow_lo;
                row_hi = nrow_hi;
            }
        }
        self.j = [0; LANES];
        self.i = 0;
    }

    #[target_feature(enable = "avx2")]
    unsafe fn fill_avx2(&mut self, out: &mut [u8], len: usize) {
        let n = self.scheduled;
        let s = self.t.s.as_mut_ptr();
        let iota_lo = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let iota_hi = _mm256_setr_epi32(8, 9, 10, 11, 12, 13, 14, 15);
        let mask = _mm256_set1_epi32(0xFF);
        // Output staging mirrors the AVX-512 engine: chunks accumulate into
        // this small buffer at a fixed 256-byte lane stride and are then
        // block-copied per lane, avoiding the stride-`len` L1 set aliasing of
        // storing straight into the lane-major `out`.
        const CHUNK: usize = 256;
        let mut scratch = [0u8; LANES * CHUNK];

        // SAFETY: (covers every intrinsic and raw store in this block) table
        // element indices are `(v & 0xFF) * 16 + lane < 4096` as in
        // `ksa_avx2`. Output stores write one dword per lane at byte offset
        // `l * CHUNK + k` with `l < 16` and `k <= CHUNK - 4`, always inside
        // `scratch`. avx2 was verified at construction.
        unsafe {
            let mut j_lo = _mm256_loadu_si256(self.j.as_ptr().cast());
            let mut j_hi = _mm256_loadu_si256(self.j.as_ptr().add(HALF).cast());
            let mut i = self.i as usize;
            let mut idx_arr = [0u32; LANES];
            let mut round = |i: usize, j_lo: &mut __m256i, j_hi: &mut __m256i| {
                let row_lo = _mm256_loadu_si256(s.add(i * LANES).cast_const().cast());
                let row_hi = _mm256_loadu_si256(s.add(i * LANES + HALF).cast_const().cast());
                *j_lo = _mm256_and_si256(_mm256_add_epi32(*j_lo, row_lo), mask);
                *j_hi = _mm256_and_si256(_mm256_add_epi32(*j_hi, row_hi), mask);
                let idx_lo = _mm256_add_epi32(_mm256_slli_epi32(*j_lo, 4), iota_lo);
                let idx_hi = _mm256_add_epi32(_mm256_slli_epi32(*j_hi, 4), iota_hi);
                // Gather before the scalar scatter: swap-in-place for lanes
                // with j == i.
                let sj_lo = _mm256_i32gather_epi32(s.cast_const().cast(), idx_lo, 4);
                let sj_hi = _mm256_i32gather_epi32(s.cast_const().cast(), idx_hi, 4);
                _mm256_storeu_si256(idx_arr.as_mut_ptr().cast(), idx_lo);
                _mm256_storeu_si256(idx_arr.as_mut_ptr().add(HALF).cast(), idx_hi);
                for (l, &e) in idx_arr.iter().enumerate() {
                    *s.add(e as usize) = *s.add(i * LANES + l);
                }
                _mm256_storeu_si256(s.add(i * LANES).cast(), sj_lo);
                _mm256_storeu_si256(s.add(i * LANES + HALF).cast(), sj_hi);
                // Both swap stores are committed, so the output gather needs
                // no stale-row fix-up.
                let t_lo = _mm256_and_si256(_mm256_add_epi32(row_lo, sj_lo), mask);
                let t_hi = _mm256_and_si256(_mm256_add_epi32(row_hi, sj_hi), mask);
                let tidx_lo = _mm256_add_epi32(_mm256_slli_epi32(t_lo, 4), iota_lo);
                let tidx_hi = _mm256_add_epi32(_mm256_slli_epi32(t_hi, 4), iota_hi);
                (
                    _mm256_i32gather_epi32(s.cast_const().cast(), tidx_lo, 4),
                    _mm256_i32gather_epi32(s.cast_const().cast(), tidx_hi, 4),
                )
            };

            // Four rounds per group, accumulated little-endian into one
            // dword per lane and spilled into the staging buffer — no
            // per-byte stores, no transpose pass.
            let mut acc_arr = [0u32; LANES];
            let mut pos = 0usize;
            while pos + 4 <= len {
                let m = (len - pos) & !3;
                let m = m.min(CHUNK);
                let mut k = 0usize;
                while k < m {
                    i = (i + 1) & 0xFF;
                    let (mut acc_lo, mut acc_hi) = round(i, &mut j_lo, &mut j_hi);
                    i = (i + 1) & 0xFF;
                    let (b_lo, b_hi) = round(i, &mut j_lo, &mut j_hi);
                    acc_lo = _mm256_or_si256(acc_lo, _mm256_slli_epi32(b_lo, 8));
                    acc_hi = _mm256_or_si256(acc_hi, _mm256_slli_epi32(b_hi, 8));
                    i = (i + 1) & 0xFF;
                    let (b_lo, b_hi) = round(i, &mut j_lo, &mut j_hi);
                    acc_lo = _mm256_or_si256(acc_lo, _mm256_slli_epi32(b_lo, 16));
                    acc_hi = _mm256_or_si256(acc_hi, _mm256_slli_epi32(b_hi, 16));
                    i = (i + 1) & 0xFF;
                    let (b_lo, b_hi) = round(i, &mut j_lo, &mut j_hi);
                    acc_lo = _mm256_or_si256(acc_lo, _mm256_slli_epi32(b_lo, 24));
                    acc_hi = _mm256_or_si256(acc_hi, _mm256_slli_epi32(b_hi, 24));
                    _mm256_storeu_si256(acc_arr.as_mut_ptr().cast(), acc_lo);
                    _mm256_storeu_si256(acc_arr.as_mut_ptr().add(HALF).cast(), acc_hi);
                    for (l, &dword) in acc_arr.iter().enumerate() {
                        scratch[l * CHUNK + k..l * CHUNK + k + 4]
                            .copy_from_slice(&dword.to_le_bytes());
                    }
                    k += 4;
                }
                for lane in 0..n {
                    out[lane * len + pos..][..m].copy_from_slice(&scratch[lane * CHUNK..][..m]);
                }
                pos += m;
            }
            // Tail positions one at a time through the spilled dwords.
            while pos < len {
                i = (i + 1) & 0xFF;
                let (v_lo, v_hi) = round(i, &mut j_lo, &mut j_hi);
                _mm256_storeu_si256(acc_arr.as_mut_ptr().cast(), v_lo);
                _mm256_storeu_si256(acc_arr.as_mut_ptr().add(HALF).cast(), v_hi);
                for (lane, &dword) in acc_arr.iter().take(n).enumerate() {
                    out[lane * len + pos] = dword as u8;
                }
                pos += 1;
            }

            _mm256_storeu_si256(self.j.as_mut_ptr().cast(), j_lo);
            _mm256_storeu_si256(self.j.as_mut_ptr().add(HALF).cast(), j_hi);
            self.i = i as u8;
        }
    }
}

impl KeystreamBatch for Avx2Batch {
    fn lanes(&self) -> usize {
        LANES
    }

    fn scheduled(&self) -> usize {
        self.scheduled
    }

    fn name(&self) -> &'static str {
        "avx2"
    }

    fn schedule(&mut self, keys: &[u8], key_len: usize) -> Result<(), KeyError> {
        self.schedule_impl(keys, key_len)
    }

    fn fill(&mut self, out: &mut [u8], len: usize) {
        assert_eq!(
            out.len(),
            self.scheduled * len,
            "output buffer must hold len bytes per scheduled lane"
        );
        if len == 0 {
            return;
        }
        // SAFETY: the engine only exists if avx2 was detected, and the
        // buffer-shape assertions above establish the bounds the output
        // offsets rely on.
        unsafe { self.fill_avx2(out, len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Option<Avx2Batch> {
        Avx2Batch::new()
    }

    fn test_keys(n: usize, key_len: usize) -> Vec<u8> {
        (0..n * key_len).map(|i| (i * 131 + 7) as u8).collect()
    }

    fn scalar_reference(keys: &[u8], key_len: usize, len: usize) -> Vec<u8> {
        keys.chunks_exact(key_len)
            .flat_map(|key| rc4::keystream(key, len).unwrap())
            .collect()
    }

    #[test]
    fn matches_scalar_full_batch() {
        let Some(mut engine) = engine() else { return };
        for key_len in [3usize, 5, 16, 31, 256] {
            let keys = test_keys(LANES, key_len);
            engine.schedule(&keys, key_len).unwrap();
            let mut out = vec![0u8; LANES * 300];
            engine.fill(&mut out, 300);
            assert_eq!(
                out,
                scalar_reference(&keys, key_len, 300),
                "key_len {key_len}"
            );
        }
    }

    #[test]
    fn matches_scalar_partial_batch_and_tails() {
        let Some(mut engine) = engine() else { return };
        // Partial batches crossing the half boundary, stream lengths not a
        // multiple of the 4-byte output group.
        for lanes in [5usize, 9, 13] {
            let keys = test_keys(lanes, 16);
            engine.schedule(&keys, 16).unwrap();
            assert_eq!(engine.scheduled(), lanes);
            for len in [1usize, 2, 3, 5, 67, 70] {
                engine.schedule(&keys, 16).unwrap();
                let mut out = vec![0u8; lanes * len];
                engine.fill(&mut out, len);
                assert_eq!(
                    out,
                    scalar_reference(&keys, 16, len),
                    "lanes {lanes} len {len}"
                );
            }
        }
    }

    #[test]
    fn chunked_fills_continue_streams() {
        let Some(mut engine) = engine() else { return };
        let keys = test_keys(LANES, 16);
        engine.schedule(&keys, 16).unwrap();
        let mut head = vec![0u8; LANES * 13];
        let mut tail = vec![0u8; LANES * 29];
        engine.fill(&mut head, 13);
        engine.fill(&mut tail, 29);
        let whole = scalar_reference(&keys, 16, 42);
        for lane in 0..LANES {
            assert_eq!(&head[lane * 13..(lane + 1) * 13], &whole[lane * 42..][..13]);
            assert_eq!(
                &tail[lane * 29..(lane + 1) * 29],
                &whole[lane * 42 + 13..][..29]
            );
        }
    }

    #[test]
    fn zero_len_fill_is_a_no_op() {
        let Some(mut engine) = engine() else { return };
        let keys = test_keys(2, 16);
        engine.schedule(&keys, 16).unwrap();
        let mut empty: Vec<u8> = Vec::new();
        engine.fill(&mut empty, 0);
        let mut out = vec![0u8; 2 * 16];
        engine.fill(&mut out, 16);
        assert_eq!(out, scalar_reference(&keys, 16, 16));
    }

    #[test]
    fn rejects_invalid_key_length() {
        let Some(mut engine) = engine() else { return };
        assert!(engine.schedule(&[0u8; 257], 257).is_err());
    }
}
