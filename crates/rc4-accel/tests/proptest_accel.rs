//! Property tests: every engine `rc4-accel` can select is bit-identical to
//! the scalar `rc4::Prga`, for arbitrary key lengths, batch sizes and stream
//! split points. This is the contract the dataset generators' byte-identity
//! guarantee rests on.

use proptest::prelude::*;
use rc4_accel::{AutoBatch, KeystreamBatch};

fn derive_keys(n: usize, key_len: usize, seed: u64) -> Vec<u8> {
    let mut keys = vec![0u8; n * key_len];
    let mut x = seed | 1;
    for byte in keys.iter_mut() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *byte = (x >> 33) as u8;
    }
    keys
}

proptest! {
    /// AutoBatch (whatever engine the CPU selected) == N scalar streams,
    /// including continuation across an arbitrary split point.
    #[test]
    fn auto_engine_matches_scalar(n in 1usize..=16,
                                  key_len in 3usize..=32,
                                  split in 0usize..160,
                                  len in 1usize..=160,
                                  seed in any::<u64>()) {
        let mut engine = AutoBatch::new();
        let n = n.min(engine.lanes());
        let keys = derive_keys(n, key_len, seed);
        engine.schedule(&keys, key_len).unwrap();
        prop_assert_eq!(engine.scheduled(), n);

        let split = split.min(len);
        let mut head = vec![0u8; n * split];
        let mut tail = vec![0u8; n * (len - split)];
        engine.fill(&mut head, split);
        engine.fill(&mut tail, len - split);

        for (lane, key) in keys.chunks_exact(key_len).enumerate() {
            let whole = rc4::keystream(key, len).unwrap();
            prop_assert_eq!(&head[lane * split..(lane + 1) * split], &whole[..split],
                            "head of lane {} ({})", lane, engine.engine_name());
            prop_assert_eq!(&tail[lane * (len - split)..(lane + 1) * (len - split)],
                            &whole[split..],
                            "tail of lane {} ({})", lane, engine.engine_name());
        }
    }

    /// Rescheduling the same engine leaves no state behind from the previous
    /// batch (fresh engine and reused engine agree).
    #[test]
    fn reused_engine_equals_fresh_engine(n1 in 1usize..=16, n2 in 1usize..=16,
                                         len in 1usize..=96, seed in any::<u64>()) {
        let mut reused = AutoBatch::new();
        let n1 = n1.min(reused.lanes());
        let n2 = n2.min(reused.lanes());
        let first = derive_keys(n1, 16, seed);
        reused.schedule(&first, 16).unwrap();
        let mut scratch = vec![0u8; n1 * 32];
        reused.fill(&mut scratch, 32);

        let second = derive_keys(n2, 16, seed ^ 0xDEAD_BEEF);
        reused.schedule(&second, 16).unwrap();
        let mut a = vec![0u8; n2 * len];
        reused.fill(&mut a, len);

        let mut fresh = AutoBatch::new();
        fresh.schedule(&second, 16).unwrap();
        let mut b = vec![0u8; n2 * len];
        fresh.fill(&mut b, len);
        prop_assert_eq!(a, b);
    }
}
