//! Property-based tests for the statistics datasets.

use proptest::prelude::*;
use rc4_stats::{
    counters::{Batched16Counter, PlainCounter},
    pairs::PairDataset,
    single::SingleByteDataset,
    KeystreamCollector,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recording keystreams preserves totals: every position's counts sum to the
    /// number of keystreams, and merging two datasets adds their counts.
    #[test]
    fn single_byte_totals_and_merge(keystreams in prop::collection::vec(prop::collection::vec(any::<u8>(), 8), 1..64),
                                    split in 0usize..64) {
        let split = split.min(keystreams.len());
        let mut whole = SingleByteDataset::new(8);
        for ks in &keystreams {
            whole.record_keystream(ks);
        }
        let mut a = SingleByteDataset::new(8);
        let mut b = a.clone_empty();
        for ks in &keystreams[..split] {
            a.record_keystream(ks);
        }
        for ks in &keystreams[split..] {
            b.record_keystream(ks);
        }
        a.merge(b).unwrap();
        prop_assert_eq!(a.keystreams(), whole.keystreams());
        for r in 1..=8 {
            prop_assert_eq!(a.counts_at(r), whole.counts_at(r));
            prop_assert_eq!(whole.counts_at(r).iter().sum::<u64>(), keystreams.len() as u64);
        }
    }

    /// JSON round-trips preserve pair-dataset counts exactly.
    #[test]
    fn pair_dataset_json_roundtrip(keystreams in prop::collection::vec(prop::collection::vec(any::<u8>(), 3), 1..32)) {
        let mut ds = PairDataset::consecutive(2).unwrap();
        for ks in &keystreams {
            ds.record_keystream(ks);
        }
        let back = PairDataset::from_json(&ds.to_json().unwrap()).unwrap();
        prop_assert_eq!(back.keystreams(), ds.keystreams());
        for idx in 0..2 {
            prop_assert_eq!(back.joint_counts(idx), ds.joint_counts(idx));
        }
    }

    /// Pair marginals are consistent with the joint counts.
    #[test]
    fn pair_marginals_consistent(keystreams in prop::collection::vec(prop::collection::vec(any::<u8>(), 2), 1..64)) {
        let mut ds = PairDataset::consecutive(1).unwrap();
        for ks in &keystreams {
            ds.record_keystream(ks);
        }
        let joint = ds.joint_counts(0);
        let first = ds.marginal_first(0);
        let second = ds.marginal_second(0);
        prop_assert_eq!(first.iter().sum::<u64>(), keystreams.len() as u64);
        prop_assert_eq!(second.iter().sum::<u64>(), keystreams.len() as u64);
        for x in 0..256usize {
            let row: u64 = (0..256).map(|y| joint[x * 256 + y]).sum();
            prop_assert_eq!(row, first[x]);
        }
    }

    /// The batched 16-bit counter always agrees with a plain u64 counter.
    #[test]
    fn batched_counter_matches_plain(updates in prop::collection::vec(0usize..128, 1..5000),
                                     flush_every in 1u64..5000,
                                     batch in 1usize..256) {
        let mut batched = Batched16Counter::new(128, flush_every.min(65_535), batch).unwrap();
        let mut plain = PlainCounter::new(128);
        for &idx in &updates {
            batched.record(idx);
            plain.record(idx);
        }
        prop_assert_eq!(batched.into_counts(), plain.into_counts());
    }
}
