//! The 16-bit batched counter layout used by the paper's statistics workers.
//!
//! Section 3.2 describes two generation optimizations:
//!
//! 1. Each worker run is capped (at `2^30` keystreams in the paper) so that
//!    16-bit counters suffice even for significantly biased cells, halving the
//!    memory footprint and the cache pressure of the counting loop. Only when
//!    merging worker results are wider integers needed.
//! 2. Several keystreams are buffered and the counter updates applied in a
//!    batch (sorted by the conditioning byte for the `first16` dataset), again
//!    to reduce cache misses.
//!
//! [`Batched16Counter`] implements both ideas behind the same interface as a
//! plain `u64` counter vector so the `counter_layout` benchmark can compare
//! them; the datasets in this crate use plain `u64` counters for simplicity.

use crate::dataset::DatasetError;

/// Maximum number of increments a single cell can safely absorb before
/// [`Batched16Counter::flush`] must be called.
pub const U16_SAFE_LIMIT: u64 = u16::MAX as u64;

/// A counter array that accumulates into `u16` cells and periodically flushes
/// into a `u64` aggregate.
#[derive(Debug, Clone)]
pub struct Batched16Counter {
    local: Vec<u16>,
    aggregate: Vec<u64>,
    /// Increments applied since the last flush.
    since_flush: u64,
    /// Number of increments after which `record` flushes automatically.
    flush_every: u64,
    /// Pending indices waiting to be applied in a batch.
    pending: Vec<u32>,
    batch_size: usize,
}

impl Batched16Counter {
    /// Creates a counter array with `cells` cells.
    ///
    /// `flush_every` bounds how many increments are held in the 16-bit layer
    /// (must be at most [`U16_SAFE_LIMIT`] to rule out overflow even if every
    /// increment hits the same cell); `batch_size` controls how many updates
    /// are buffered before being applied.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `cells == 0`, `batch_size == 0`
    /// or `flush_every` is zero or exceeds the safe limit.
    pub fn new(cells: usize, flush_every: u64, batch_size: usize) -> Result<Self, DatasetError> {
        if cells == 0 {
            return Err(DatasetError::InvalidConfig("cells must be > 0".into()));
        }
        if flush_every == 0 || flush_every > U16_SAFE_LIMIT {
            return Err(DatasetError::InvalidConfig(format!(
                "flush_every must be in 1..={U16_SAFE_LIMIT}"
            )));
        }
        if batch_size == 0 {
            return Err(DatasetError::InvalidConfig("batch_size must be > 0".into()));
        }
        Ok(Self {
            local: vec![0u16; cells],
            aggregate: vec![0u64; cells],
            since_flush: 0,
            flush_every,
            pending: Vec::with_capacity(batch_size),
            batch_size,
        })
    }

    /// Number of counter cells.
    pub fn cells(&self) -> usize {
        self.aggregate.len()
    }

    /// Records an increment of cell `index`.
    ///
    /// The update is buffered; once `batch_size` updates are pending they are
    /// applied to the 16-bit layer (sorted, to improve locality), and the
    /// 16-bit layer is folded into the aggregate every `flush_every` increments.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn record(&mut self, index: usize) {
        assert!(index < self.local.len(), "counter index out of bounds");
        self.pending.push(index as u32);
        if self.pending.len() >= self.batch_size {
            self.apply_pending();
        }
    }

    /// Applies buffered updates to the 16-bit layer.
    fn apply_pending(&mut self) {
        // Sorting the batch groups updates to nearby cells, the same trick the
        // paper uses for the first16 dataset.
        self.pending.sort_unstable();
        for &idx in &self.pending {
            self.local[idx as usize] += 1;
        }
        self.since_flush += self.pending.len() as u64;
        self.pending.clear();
        if self.since_flush >= self.flush_every {
            self.flush();
        }
    }

    /// Folds the 16-bit layer into the 64-bit aggregate.
    pub fn flush(&mut self) {
        if !self.pending.is_empty() {
            // Avoid recursion: apply pending without triggering another flush.
            self.pending.sort_unstable();
            for &idx in &self.pending {
                self.local[idx as usize] += 1;
            }
            self.since_flush += self.pending.len() as u64;
            self.pending.clear();
        }
        for (agg, loc) in self.aggregate.iter_mut().zip(self.local.iter_mut()) {
            *agg += u64::from(*loc);
            *loc = 0;
        }
        self.since_flush = 0;
    }

    /// Finalizes the counter and returns the aggregated `u64` counts.
    pub fn into_counts(mut self) -> Vec<u64> {
        self.flush();
        self.aggregate
    }

    /// Returns the current aggregated value of a cell (flushing first).
    pub fn count(&mut self, index: usize) -> u64 {
        self.flush();
        self.aggregate[index]
    }
}

/// A plain `u64` counter array with the same interface, used as the baseline
/// in the `counter_layout` benchmark.
#[derive(Debug, Clone)]
pub struct PlainCounter {
    counts: Vec<u64>,
}

impl PlainCounter {
    /// Creates a counter array with `cells` cells.
    pub fn new(cells: usize) -> Self {
        Self {
            counts: vec![0u64; cells],
        }
    }

    /// Increments cell `index`.
    pub fn record(&mut self, index: usize) {
        self.counts[index] += 1;
    }

    /// Returns the counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Batched16Counter::new(0, 100, 10).is_err());
        assert!(Batched16Counter::new(10, 0, 10).is_err());
        assert!(Batched16Counter::new(10, 100_000, 10).is_err());
        assert!(Batched16Counter::new(10, 100, 0).is_err());
        assert!(Batched16Counter::new(10, 100, 10).is_ok());
    }

    #[test]
    fn matches_plain_counter() {
        let cells = 1024;
        let mut batched = Batched16Counter::new(cells, 5_000, 64).unwrap();
        let mut plain = PlainCounter::new(cells);
        // A deterministic but scattered update pattern.
        let mut x = 12345u64;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let idx = (x >> 33) as usize % cells;
            batched.record(idx);
            plain.record(idx);
        }
        assert_eq!(batched.into_counts(), plain.into_counts());
    }

    #[test]
    fn hot_cell_does_not_overflow_u16_layer() {
        // All updates hit one cell; flush_every bounds the 16-bit accumulation.
        let mut c = Batched16Counter::new(4, 1_000, 16).unwrap();
        for _ in 0..200_000u32 {
            c.record(2);
        }
        assert_eq!(c.count(2), 200_000);
        assert_eq!(c.count(0), 0);
    }

    #[test]
    fn count_after_partial_batch() {
        let mut c = Batched16Counter::new(8, 100, 64).unwrap();
        c.record(3);
        c.record(3);
        // Batch not full yet; count() must still see both updates.
        assert_eq!(c.count(3), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut c = Batched16Counter::new(4, 100, 4).unwrap();
        c.record(4);
    }
}
