//! Deterministic random RC4 key generation for the statistics workers.
//!
//! In the paper each worker draws a cryptographically random AES key at
//! start-up and derives its RC4 keys with AES in counter mode. For the
//! reproduction the property that matters is that keys are (a) independent and
//! uniformly distributed for the purposes of the statistics, and (b)
//! *reproducible* so that dataset generation is deterministic for a given seed.
//! We therefore derive keys from `rand`'s ChaCha-based [`rand::rngs::StdRng`],
//! seeded per worker from the master seed and the worker index.

use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

/// A deterministic generator of random RC4 keys.
///
/// # Examples
///
/// ```
/// use rc4_stats::KeyGenerator;
///
/// let mut gen_a = KeyGenerator::new(7, 0, 16);
/// let mut gen_b = KeyGenerator::new(7, 0, 16);
/// assert_eq!(gen_a.next_key(), gen_b.next_key());
///
/// let mut other_worker = KeyGenerator::new(7, 1, 16);
/// assert_ne!(gen_a.next_key(), other_worker.next_key());
/// ```
#[derive(Debug, Clone)]
pub struct KeyGenerator {
    rng: StdRng,
    key_len: usize,
}

impl KeyGenerator {
    /// Creates a key generator for `(master_seed, worker_index)` producing keys of `key_len` bytes.
    pub fn new(master_seed: u64, worker_index: u64, key_len: usize) -> Self {
        // Mix the worker index into the seed with a splitmix64 step so that
        // nearby (seed, index) pairs do not produce correlated RNG streams.
        let mixed =
            splitmix64(master_seed ^ splitmix64(worker_index.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        let mut seed_bytes = [0u8; 32];
        let mut x = mixed;
        for chunk in seed_bytes.chunks_mut(8) {
            x = splitmix64(x);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        Self {
            rng: StdRng::from_seed(seed_bytes),
            key_len,
        }
    }

    /// Returns the next random RC4 key.
    pub fn next_key(&mut self) -> Vec<u8> {
        let mut key = vec![0u8; self.key_len];
        self.rng.fill_bytes(&mut key);
        key
    }

    /// Fills `key` with the next random key material (avoids allocation in hot loops).
    pub fn fill_key(&mut self, key: &mut [u8]) {
        self.rng.fill_bytes(key);
    }

    /// Returns a random value in `[0, bound)`, used e.g. to draw TSC values.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound)
    }

    /// Key length this generator produces.
    pub fn key_len(&self) -> usize {
        self.key_len
    }
}

/// The splitmix64 mixing function (public-domain constant set).
///
/// Exported because it is the workspace's one seed-derivation primitive:
/// besides the per-worker key streams here, `rc4-attacks` derives its
/// per-trial Monte-Carlo RNG streams from it (`sampling::stream_seed`).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_worker() {
        let mut a = KeyGenerator::new(123, 5, 16);
        let mut b = KeyGenerator::new(123, 5, 16);
        for _ in 0..10 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }

    #[test]
    fn different_workers_differ() {
        let mut a = KeyGenerator::new(123, 0, 16);
        let mut b = KeyGenerator::new(123, 1, 16);
        assert_ne!(a.next_key(), b.next_key());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = KeyGenerator::new(1, 0, 16);
        let mut b = KeyGenerator::new(2, 0, 16);
        assert_ne!(a.next_key(), b.next_key());
    }

    #[test]
    fn key_length_respected() {
        let mut g = KeyGenerator::new(0, 0, 5);
        assert_eq!(g.next_key().len(), 5);
        assert_eq!(g.key_len(), 5);
        let mut buf = [0u8; 5];
        g.fill_key(&mut buf);
    }

    #[test]
    fn keys_look_uniform() {
        // Quick sanity check: over many keys, the first byte should hit most values.
        let mut g = KeyGenerator::new(99, 3, 16);
        let mut seen = [false; 256];
        for _ in 0..8192 {
            seen[g.next_key()[0] as usize] = true;
        }
        let count = seen.iter().filter(|&&s| s).count();
        assert!(count > 250, "only {count} distinct first bytes observed");
    }

    #[test]
    fn next_below_in_range() {
        let mut g = KeyGenerator::new(5, 5, 16);
        for _ in 0..1000 {
            assert!(g.next_below(65536) < 65536);
        }
    }
}
