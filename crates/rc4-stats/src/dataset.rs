//! Common dataset abstractions: the collector trait, generation configuration
//! and error type shared by every dataset.

use serde::{Deserialize, Serialize};

/// Errors produced while generating or loading keystream datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A configuration value is invalid (zero keys, zero positions, ...).
    InvalidConfig(String),
    /// Two datasets with incompatible shapes were combined.
    ShapeMismatch(String),
    /// Serialization or deserialization failed.
    Serialization(String),
    /// A file operation failed. The message names the path involved.
    Io(String),
    /// An on-disk dataset failed validation (bad magic, unsupported format
    /// version, truncation, CRC mismatch, inconsistent header). The message
    /// names the path involved.
    Corrupt(String),
    /// Generation was cancelled through a cooperative cancellation flag before
    /// it completed; any partially-filled collector must be discarded.
    Cancelled,
}

impl DatasetError {
    /// An [`DatasetError::Io`] that names the offending path.
    pub fn io(path: &std::path::Path, err: impl core::fmt::Display) -> Self {
        DatasetError::Io(format!("{}: {err}", path.display()))
    }

    /// A [`DatasetError::Corrupt`] that names the offending path.
    pub fn corrupt(path: &std::path::Path, what: impl core::fmt::Display) -> Self {
        DatasetError::Corrupt(format!("{}: {what}", path.display()))
    }
}

impl core::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DatasetError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DatasetError::ShapeMismatch(msg) => write!(f, "dataset shape mismatch: {msg}"),
            DatasetError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            DatasetError::Io(msg) => write!(f, "I/O error: {msg}"),
            DatasetError::Corrupt(msg) => write!(f, "corrupt dataset: {msg}"),
            DatasetError::Cancelled => write!(f, "generation cancelled"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Executor outcomes fold back into the dataset error model: a cancelled
/// parallel call IS a cancelled generation, and a task failure surfaces as
/// the task's own `DatasetError`.
impl From<rc4_exec::ExecError<DatasetError>> for DatasetError {
    fn from(e: rc4_exec::ExecError<DatasetError>) -> Self {
        match e {
            rc4_exec::ExecError::Cancelled => DatasetError::Cancelled,
            rc4_exec::ExecError::Task { error, .. } => error,
        }
    }
}

/// Configuration for a keystream generation run.
///
/// The defaults are laptop-scale (a few seconds); the paper-scale values are
/// documented on each field so benchmarks can opt into larger sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationConfig {
    /// Number of random RC4 keys (keystreams) to generate.
    ///
    /// Paper scale: `2^44` for `first16`, `2^45` for `consec512`, `2^47` for
    /// the aggregated single-byte statistics.
    pub keys: u64,
    /// Number of worker threads. The paper used roughly 80 machines; we use
    /// threads on one machine.
    pub workers: usize,
    /// Master seed. Each worker derives an independent deterministic stream
    /// from `(seed, worker_index)`, so results are reproducible for a fixed
    /// configuration.
    pub seed: u64,
    /// RC4 key length in bytes. All paper datasets use 16-byte (128-bit) keys,
    /// which is also what TLS and TKIP use.
    pub key_len: usize,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        Self {
            keys: 1 << 18,
            workers: 1,
            seed: 0x05EE_D0FA_C4B1_A5E5,
            key_len: 16,
        }
    }
}

impl GenerationConfig {
    /// Creates a config generating `keys` keystreams with the default seed and key length.
    pub fn with_keys(keys: u64) -> Self {
        Self {
            keys,
            ..Self::default()
        }
    }

    /// Sets the number of worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of keys logical worker `w` contributes: an even split with the
    /// first `keys % workers` workers taking one extra key.
    ///
    /// This is THE key-space partition rule — the in-memory worker pool, the
    /// per-TSC generator and the on-disk store (`rc4-store`) all share it, so
    /// a shard merged from per-worker files is cell-for-cell identical to an
    /// uninterrupted in-memory run.
    pub fn keys_for_worker(&self, w: u64) -> u64 {
        let per_worker = self.keys / self.workers as u64;
        let remainder = self.keys % self.workers as u64;
        per_worker + u64::from(w < remainder)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if any field is zero or the key
    /// length is outside RC4's legal range.
    pub fn validate(&self) -> Result<(), DatasetError> {
        if self.keys == 0 {
            return Err(DatasetError::InvalidConfig("keys must be > 0".into()));
        }
        if self.workers == 0 {
            return Err(DatasetError::InvalidConfig("workers must be > 0".into()));
        }
        if self.key_len == 0 || self.key_len > 256 {
            return Err(DatasetError::InvalidConfig(format!(
                "key_len {} outside 1..=256",
                self.key_len
            )));
        }
        Ok(())
    }
}

/// A dataset that accumulates statistics from individual keystreams.
///
/// Implementors are driven either single-threaded (call
/// [`KeystreamCollector::record_keystream`] in a loop) or by the
/// [`crate::worker`] pool, which clones an empty collector per worker and
/// merges the results.
pub trait KeystreamCollector: Send {
    /// How many keystream bytes per key this collector needs to observe.
    fn required_len(&self) -> usize;

    /// Updates the statistics with one keystream (of at least `required_len` bytes).
    fn record_keystream(&mut self, keystream: &[u8]);

    /// Creates an empty collector with the same shape/configuration.
    fn clone_empty(&self) -> Self
    where
        Self: Sized;

    /// Merges the counts of `other` (a collector produced by `clone_empty`) into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ShapeMismatch`] if the two collectors are incompatible.
    fn merge(&mut self, other: Self) -> Result<(), DatasetError>
    where
        Self: Sized;

    /// Total number of keystreams recorded so far.
    fn keystreams(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(GenerationConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_detected() {
        assert!(GenerationConfig::with_keys(0).validate().is_err());
        assert!(GenerationConfig::default().workers(0).validate().is_err());
        let c = GenerationConfig {
            key_len: 0,
            ..GenerationConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GenerationConfig {
            key_len: 300,
            ..GenerationConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_methods_chain() {
        let c = GenerationConfig::with_keys(1000).workers(4).seed(42);
        assert_eq!(c.keys, 1000);
        assert_eq!(c.workers, 4);
        assert_eq!(c.seed, 42);
        assert_eq!(c.key_len, 16);
    }

    #[test]
    fn error_display() {
        let e = DatasetError::ShapeMismatch("256 vs 512 positions".into());
        assert!(e.to_string().contains("256 vs 512"));
    }
}
