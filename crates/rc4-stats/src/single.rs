//! Single-byte keystream statistics: `Pr[Z_r = x]` for the initial positions.
//!
//! This is the aggregated dataset behind Fig. 6 of the paper (single-byte
//! biases up to position 513) and the per-position distributions consumed by
//! the single-byte likelihood estimator of Section 4.1.

use serde::{Deserialize, Serialize};

use crate::{
    dataset::{DatasetError, KeystreamCollector},
    storable::StorableDataset,
    NUM_VALUES,
};

/// Counts of keystream byte values per position.
///
/// `counts[(r - 1) * 256 + x]` is the number of keystreams in which `Z_r = x`,
/// with `r` the 1-based keystream position used throughout the paper.
///
/// # Examples
///
/// ```
/// use rc4_stats::{single::SingleByteDataset, KeystreamCollector};
///
/// let mut ds = SingleByteDataset::new(4);
/// ds.record_keystream(&[0x10, 0x00, 0x37, 0x42]);
/// ds.record_keystream(&[0x10, 0x99, 0x37, 0x43]);
/// assert_eq!(ds.count(1, 0x10), 2);
/// assert_eq!(ds.count(2, 0x00), 1);
/// assert_eq!(ds.keystreams(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleByteDataset {
    positions: usize,
    keystreams: u64,
    counts: Vec<u64>,
}

impl SingleByteDataset {
    /// Creates an empty dataset covering positions `1..=positions`.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is zero.
    pub fn new(positions: usize) -> Self {
        assert!(positions > 0, "dataset must cover at least one position");
        Self {
            positions,
            keystreams: 0,
            counts: vec![0u64; positions * NUM_VALUES],
        }
    }

    /// Number of positions covered (positions `1..=positions()`).
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Raw count of `Z_r = value` over all recorded keystreams.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero or beyond the covered range.
    pub fn count(&self, r: usize, value: u8) -> u64 {
        assert!(r >= 1 && r <= self.positions, "position {r} out of range");
        self.counts[(r - 1) * NUM_VALUES + value as usize]
    }

    /// The 256 counts for position `r`, as a slice.
    pub fn counts_at(&self, r: usize) -> &[u64] {
        assert!(r >= 1 && r <= self.positions, "position {r} out of range");
        &self.counts[(r - 1) * NUM_VALUES..r * NUM_VALUES]
    }

    /// Empirical probability estimate `Pr[Z_r = value]`.
    pub fn probability(&self, r: usize, value: u8) -> f64 {
        if self.keystreams == 0 {
            return 0.0;
        }
        self.count(r, value) as f64 / self.keystreams as f64
    }

    /// Empirical distribution of `Z_r` as a 256-entry probability vector.
    pub fn distribution(&self, r: usize) -> Vec<f64> {
        let n = self.keystreams.max(1) as f64;
        self.counts_at(r).iter().map(|&c| c as f64 / n).collect()
    }

    /// Adds an externally produced count (used by the model-sampled generation mode).
    pub fn add_count(&mut self, r: usize, value: u8, count: u64) {
        assert!(r >= 1 && r <= self.positions, "position {r} out of range");
        self.counts[(r - 1) * NUM_VALUES + value as usize] += count;
    }

    /// Declares that `keystreams` additional keystreams contributed to the counts
    /// added via [`SingleByteDataset::add_count`].
    pub fn add_keystreams(&mut self, keystreams: u64) {
        self.keystreams += keystreams;
    }

    /// Serializes the dataset to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Serialization`] if encoding fails.
    pub fn to_json(&self) -> Result<String, DatasetError> {
        serde_json::to_string(self).map_err(|e| DatasetError::Serialization(e.to_string()))
    }

    /// Restores a dataset from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Serialization`] if decoding fails.
    pub fn from_json(json: &str) -> Result<Self, DatasetError> {
        serde_json::from_str(json).map_err(|e| DatasetError::Serialization(e.to_string()))
    }
}

impl KeystreamCollector for SingleByteDataset {
    fn required_len(&self) -> usize {
        self.positions
    }

    fn record_keystream(&mut self, keystream: &[u8]) {
        debug_assert!(keystream.len() >= self.positions);
        for (idx, &z) in keystream.iter().take(self.positions).enumerate() {
            self.counts[idx * NUM_VALUES + z as usize] += 1;
        }
        self.keystreams += 1;
    }

    fn clone_empty(&self) -> Self {
        Self::new(self.positions)
    }

    fn merge(&mut self, other: Self) -> Result<(), DatasetError> {
        if other.positions != self.positions {
            return Err(DatasetError::ShapeMismatch(format!(
                "{} vs {} positions",
                self.positions, other.positions
            )));
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
        self.keystreams += other.keystreams;
        Ok(())
    }

    fn keystreams(&self) -> u64 {
        self.keystreams
    }
}

impl StorableDataset for SingleByteDataset {
    fn kind() -> &'static str {
        "single"
    }

    fn shape_params(&self) -> Vec<u64> {
        vec![self.positions as u64]
    }

    fn empty_with_shape(params: &[u64]) -> Result<Self, DatasetError> {
        let [positions] = params else {
            return Err(DatasetError::ShapeMismatch(format!(
                "single-byte shape needs 1 parameter, got {}",
                params.len()
            )));
        };
        if *positions == 0 {
            return Err(DatasetError::InvalidConfig(
                "single-byte dataset needs at least one position".into(),
            ));
        }
        Ok(Self::new(*positions as usize))
    }

    fn cell_count_for_shape(params: &[u64]) -> Result<u64, DatasetError> {
        let [positions] = params else {
            return Err(DatasetError::ShapeMismatch(format!(
                "single-byte shape needs 1 parameter, got {}",
                params.len()
            )));
        };
        if *positions == 0 {
            return Err(DatasetError::InvalidConfig(
                "single-byte dataset needs at least one position".into(),
            ));
        }
        positions.checked_mul(NUM_VALUES as u64).ok_or_else(|| {
            DatasetError::InvalidConfig(format!("{positions} positions overflow the cell count"))
        })
    }

    fn cell_slices(&self) -> Vec<&[u64]> {
        vec![&self.counts]
    }

    fn cell_slices_mut(&mut self) -> Vec<&mut [u64]> {
        vec![&mut self.counts]
    }

    fn recorded_keystreams(&self) -> u64 {
        self.keystreams
    }

    fn set_recorded_keystreams(&mut self, keystreams: u64) {
        self.keystreams = keystreams;
    }

    fn required_keystream_len(&self) -> usize {
        self.positions
    }

    fn record_stream(&mut self, _meta: u64, ks: &[u8]) {
        self.record_keystream(ks);
    }

    fn merge_same_shape(&mut self, other: Self) -> Result<(), DatasetError> {
        self.merge(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut ds = SingleByteDataset::new(8);
        let ks = rc4::keystream(b"0123456789abcdef", 8).unwrap();
        ds.record_keystream(&ks);
        for (i, &z) in ks.iter().enumerate() {
            assert_eq!(ds.count(i + 1, z), 1);
        }
        assert_eq!(ds.keystreams(), 1);
        // All other values have count zero.
        assert_eq!(ds.counts_at(1).iter().sum::<u64>(), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut ds = SingleByteDataset::new(4);
        for i in 0u32..200 {
            let key = i.to_le_bytes();
            let ks = rc4::keystream(&key, 4).unwrap();
            ds.record_keystream(&ks);
        }
        for r in 1..=4 {
            let sum: f64 = ds.distribution(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SingleByteDataset::new(4);
        let mut b = a.clone_empty();
        a.record_keystream(&[1, 2, 3, 4]);
        b.record_keystream(&[1, 9, 9, 9]);
        a.merge(b).unwrap();
        assert_eq!(a.keystreams(), 2);
        assert_eq!(a.count(1, 1), 2);
        assert_eq!(a.count(2, 2), 1);
        assert_eq!(a.count(2, 9), 1);
    }

    #[test]
    fn merge_rejects_shape_mismatch() {
        let mut a = SingleByteDataset::new(4);
        let b = SingleByteDataset::new(8);
        assert!(matches!(a.merge(b), Err(DatasetError::ShapeMismatch(_))));
    }

    #[test]
    fn json_roundtrip() {
        let mut ds = SingleByteDataset::new(2);
        ds.record_keystream(&[7, 8]);
        let json = ds.to_json().unwrap();
        let back = SingleByteDataset::from_json(&json).unwrap();
        assert_eq!(back.count(1, 7), 1);
        assert_eq!(back.keystreams(), 1);
    }

    #[test]
    fn manual_counts_for_sampled_mode() {
        let mut ds = SingleByteDataset::new(1);
        ds.add_count(1, 0, 100);
        ds.add_count(1, 1, 50);
        ds.add_keystreams(150);
        assert!((ds.probability(1, 0) - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        let ds = SingleByteDataset::new(4);
        let _ = ds.count(5, 0);
    }

    #[test]
    fn mantin_shamir_bias_visible_at_small_scale() {
        // With ~50k random keys, Pr[Z_2 = 0] ≈ 2/256 is clearly above 1/256.
        let mut ds = SingleByteDataset::new(2);
        let mut gen = crate::KeyGenerator::new(42, 0, 16);
        let mut key = [0u8; 16];
        for _ in 0..50_000 {
            gen.fill_key(&mut key);
            let ks = rc4::keystream(&key, 2).unwrap();
            ds.record_keystream(&ks);
        }
        let p = ds.probability(2, 0);
        assert!(p > 1.6 / 256.0, "Pr[Z2=0] = {p}, expected ~2/256");
        assert!(p < 2.4 / 256.0, "Pr[Z2=0] = {p}, expected ~2/256");
    }
}
