//! Double-byte keystream statistics: `Pr[Z_a = x ∧ Z_b = y]` over position pairs.
//!
//! One generic dataset covers both of the paper's main datasets:
//!
//! * `consec512` — consecutive pairs `(r, r+1)` for `1 <= r <= 512`
//!   (paper: `2^45` keys, 16 CPU-years), built by [`PairDataset::consecutive`].
//! * `first16` — pairs `(a, b)` with `1 <= a <= 16` and `a < b <= 256`
//!   (paper: `2^44` keys, 9 CPU-years), built by [`PairDataset::first16`].
//!
//! The reproduction keeps the shape configurable so laptop-scale runs can
//! restrict the covered positions while exercising exactly the same code path.

use serde::{Deserialize, Serialize};

use crate::{
    dataset::{DatasetError, KeystreamCollector},
    storable::StorableDataset,
    NUM_PAIRS, NUM_VALUES,
};

/// A pair of (1-based) keystream positions whose joint distribution is tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PositionPair {
    /// First position `a` (1-based).
    pub a: usize,
    /// Second position `b` (1-based), with `a != b`.
    pub b: usize,
}

/// Joint counts of keystream byte values over a list of position pairs.
///
/// For pair index `p` and values `(x, y)`, the count lives at
/// `counts[p * 65536 + x * 256 + y]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairDataset {
    pairs: Vec<PositionPair>,
    max_position: usize,
    keystreams: u64,
    counts: Vec<u64>,
}

impl PairDataset {
    /// Creates an empty dataset over an explicit list of position pairs.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the list is empty or any
    /// pair has `a == b` or a zero position.
    pub fn new(pairs: Vec<PositionPair>) -> Result<Self, DatasetError> {
        if pairs.is_empty() {
            return Err(DatasetError::InvalidConfig(
                "at least one position pair is required".into(),
            ));
        }
        let mut max_position = 0usize;
        for p in &pairs {
            if p.a == 0 || p.b == 0 || p.a == p.b {
                return Err(DatasetError::InvalidConfig(format!(
                    "invalid position pair ({}, {})",
                    p.a, p.b
                )));
            }
            max_position = max_position.max(p.a).max(p.b);
        }
        let counts = vec![0u64; pairs.len() * NUM_PAIRS];
        Ok(Self {
            pairs,
            max_position,
            keystreams: 0,
            counts,
        })
    }

    /// The `consec512`-style dataset: consecutive pairs `(r, r+1)` for `1 <= r <= max_r`.
    ///
    /// The paper uses `max_r = 512`; laptop-scale runs typically use 32–256.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `max_r == 0`.
    pub fn consecutive(max_r: usize) -> Result<Self, DatasetError> {
        if max_r == 0 {
            return Err(DatasetError::InvalidConfig("max_r must be > 0".into()));
        }
        Self::new(
            (1..=max_r)
                .map(|r| PositionPair { a: r, b: r + 1 })
                .collect(),
        )
    }

    /// The `first16`-style dataset: pairs `(a, b)` for `1 <= a <= first`, `a < b <= max_b`.
    ///
    /// The paper uses `first = 16`, `max_b = 256`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the ranges are empty.
    pub fn first16(first: usize, max_b: usize) -> Result<Self, DatasetError> {
        if first == 0 || max_b <= 1 {
            return Err(DatasetError::InvalidConfig(
                "first and max_b must allow at least one pair".into(),
            ));
        }
        let mut pairs = Vec::new();
        for a in 1..=first {
            for b in (a + 1)..=max_b {
                pairs.push(PositionPair { a, b });
            }
        }
        Self::new(pairs)
    }

    /// The position pairs covered, in index order.
    pub fn pairs(&self) -> &[PositionPair] {
        &self.pairs
    }

    /// Finds the index of a position pair, if covered.
    pub fn pair_index(&self, a: usize, b: usize) -> Option<usize> {
        self.pairs.iter().position(|p| p.a == a && p.b == b)
    }

    /// Raw joint count for pair index `pair_idx` and values `(x, y)`.
    pub fn count(&self, pair_idx: usize, x: u8, y: u8) -> u64 {
        self.counts[pair_idx * NUM_PAIRS + x as usize * NUM_VALUES + y as usize]
    }

    /// The full 65536-entry joint count table for a pair.
    pub fn joint_counts(&self, pair_idx: usize) -> &[u64] {
        &self.counts[pair_idx * NUM_PAIRS..(pair_idx + 1) * NUM_PAIRS]
    }

    /// Empirical joint probability `Pr[Z_a = x ∧ Z_b = y]`.
    pub fn joint_probability(&self, pair_idx: usize, x: u8, y: u8) -> f64 {
        if self.keystreams == 0 {
            return 0.0;
        }
        self.count(pair_idx, x, y) as f64 / self.keystreams as f64
    }

    /// Empirical joint distribution as a 65536-entry probability vector.
    pub fn joint_distribution(&self, pair_idx: usize) -> Vec<f64> {
        let n = self.keystreams.max(1) as f64;
        self.joint_counts(pair_idx)
            .iter()
            .map(|&c| c as f64 / n)
            .collect()
    }

    /// Marginal counts of the first byte of a pair (256 entries).
    pub fn marginal_first(&self, pair_idx: usize) -> Vec<u64> {
        let mut out = vec![0u64; NUM_VALUES];
        let table = self.joint_counts(pair_idx);
        for x in 0..NUM_VALUES {
            let mut sum = 0u64;
            for y in 0..NUM_VALUES {
                sum += table[x * NUM_VALUES + y];
            }
            out[x] = sum;
        }
        out
    }

    /// Marginal counts of the second byte of a pair (256 entries).
    pub fn marginal_second(&self, pair_idx: usize) -> Vec<u64> {
        let mut out = vec![0u64; NUM_VALUES];
        let table = self.joint_counts(pair_idx);
        for y in 0..NUM_VALUES {
            let mut sum = 0u64;
            for x in 0..NUM_VALUES {
                sum += table[x * NUM_VALUES + y];
            }
            out[y] = sum;
        }
        out
    }

    /// The paper's relative bias `q` of a value pair: `s = p (1 + q)` where `s`
    /// is the observed pair probability and `p` the product of the empirical
    /// single-byte probabilities.
    ///
    /// Returns `None` if either marginal probability is zero (no information).
    pub fn relative_bias(&self, pair_idx: usize, x: u8, y: u8) -> Option<f64> {
        if self.keystreams == 0 {
            return None;
        }
        let n = self.keystreams as f64;
        let p_first = self.marginal_first(pair_idx)[x as usize] as f64 / n;
        let p_second = self.marginal_second(pair_idx)[y as usize] as f64 / n;
        if p_first == 0.0 || p_second == 0.0 {
            return None;
        }
        let expected = p_first * p_second;
        let observed = self.joint_probability(pair_idx, x, y);
        Some(observed / expected - 1.0)
    }

    /// Largest keystream position referenced by any pair.
    pub fn max_position(&self) -> usize {
        self.max_position
    }

    /// Serializes the dataset to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Serialization`] if encoding fails.
    pub fn to_json(&self) -> Result<String, DatasetError> {
        serde_json::to_string(self).map_err(|e| DatasetError::Serialization(e.to_string()))
    }

    /// Restores a dataset from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Serialization`] if decoding fails.
    pub fn from_json(json: &str) -> Result<Self, DatasetError> {
        serde_json::from_str(json).map_err(|e| DatasetError::Serialization(e.to_string()))
    }
}

impl KeystreamCollector for PairDataset {
    fn required_len(&self) -> usize {
        self.max_position
    }

    fn record_keystream(&mut self, keystream: &[u8]) {
        debug_assert!(keystream.len() >= self.max_position);
        for (idx, pair) in self.pairs.iter().enumerate() {
            let x = keystream[pair.a - 1] as usize;
            let y = keystream[pair.b - 1] as usize;
            self.counts[idx * NUM_PAIRS + x * NUM_VALUES + y] += 1;
        }
        self.keystreams += 1;
    }

    fn clone_empty(&self) -> Self {
        Self {
            pairs: self.pairs.clone(),
            max_position: self.max_position,
            keystreams: 0,
            counts: vec![0u64; self.counts.len()],
        }
    }

    fn merge(&mut self, other: Self) -> Result<(), DatasetError> {
        if other.pairs != self.pairs {
            return Err(DatasetError::ShapeMismatch(
                "pair datasets cover different position pairs".into(),
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
        self.keystreams += other.keystreams;
        Ok(())
    }

    fn keystreams(&self) -> u64 {
        self.keystreams
    }
}

impl StorableDataset for PairDataset {
    fn kind() -> &'static str {
        "pairs"
    }

    /// Shape is the flattened pair list `[a1, b1, a2, b2, ...]`, which covers
    /// the explicit-list, `consecutive` and `first16` constructors uniformly.
    fn shape_params(&self) -> Vec<u64> {
        let mut params = Vec::with_capacity(self.pairs.len() * 2);
        for p in &self.pairs {
            params.push(p.a as u64);
            params.push(p.b as u64);
        }
        params
    }

    fn empty_with_shape(params: &[u64]) -> Result<Self, DatasetError> {
        if params.is_empty() || params.len() % 2 != 0 {
            return Err(DatasetError::ShapeMismatch(format!(
                "pair shape needs an even, non-zero parameter count, got {}",
                params.len()
            )));
        }
        let pairs = params
            .chunks_exact(2)
            .map(|c| PositionPair {
                a: c[0] as usize,
                b: c[1] as usize,
            })
            .collect();
        Self::new(pairs)
    }

    fn cell_count_for_shape(params: &[u64]) -> Result<u64, DatasetError> {
        if params.is_empty() || params.len() % 2 != 0 {
            return Err(DatasetError::ShapeMismatch(format!(
                "pair shape needs an even, non-zero parameter count, got {}",
                params.len()
            )));
        }
        for c in params.chunks_exact(2) {
            if c[0] == 0 || c[1] == 0 || c[0] == c[1] {
                return Err(DatasetError::InvalidConfig(format!(
                    "invalid position pair ({}, {})",
                    c[0], c[1]
                )));
            }
        }
        Ok((params.len() as u64 / 2) * NUM_PAIRS as u64)
    }

    fn cell_slices(&self) -> Vec<&[u64]> {
        vec![&self.counts]
    }

    fn cell_slices_mut(&mut self) -> Vec<&mut [u64]> {
        vec![&mut self.counts]
    }

    fn recorded_keystreams(&self) -> u64 {
        self.keystreams
    }

    fn set_recorded_keystreams(&mut self, keystreams: u64) {
        self.keystreams = keystreams;
    }

    fn required_keystream_len(&self) -> usize {
        self.max_position
    }

    fn record_stream(&mut self, _meta: u64, ks: &[u8]) {
        self.record_keystream(ks);
    }

    fn merge_same_shape(&mut self, other: Self) -> Result<(), DatasetError> {
        self.merge(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_constructor_shape() {
        let ds = PairDataset::consecutive(8).unwrap();
        assert_eq!(ds.pairs().len(), 8);
        assert_eq!(ds.pairs()[0], PositionPair { a: 1, b: 2 });
        assert_eq!(ds.pairs()[7], PositionPair { a: 8, b: 9 });
        assert_eq!(ds.max_position(), 9);
        assert_eq!(ds.required_len(), 9);
    }

    #[test]
    fn first16_constructor_shape() {
        let ds = PairDataset::first16(2, 5).unwrap();
        // (1,2) (1,3) (1,4) (1,5) (2,3) (2,4) (2,5)
        assert_eq!(ds.pairs().len(), 7);
        assert_eq!(ds.pair_index(1, 2), Some(0));
        assert_eq!(ds.pair_index(2, 5), Some(6));
        assert_eq!(ds.pair_index(3, 4), None);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(PairDataset::new(vec![]).is_err());
        assert!(PairDataset::new(vec![PositionPair { a: 3, b: 3 }]).is_err());
        assert!(PairDataset::new(vec![PositionPair { a: 0, b: 1 }]).is_err());
        assert!(PairDataset::consecutive(0).is_err());
        assert!(PairDataset::first16(0, 16).is_err());
    }

    #[test]
    fn recording_updates_joint_and_marginals() {
        let mut ds = PairDataset::consecutive(2).unwrap();
        ds.record_keystream(&[10, 20, 30]);
        ds.record_keystream(&[10, 21, 30]);
        let idx = ds.pair_index(1, 2).unwrap();
        assert_eq!(ds.count(idx, 10, 20), 1);
        assert_eq!(ds.count(idx, 10, 21), 1);
        assert_eq!(ds.marginal_first(idx)[10], 2);
        assert_eq!(ds.marginal_second(idx)[20], 1);
        assert_eq!(ds.keystreams(), 2);
    }

    #[test]
    fn joint_distribution_sums_to_one() {
        let mut ds = PairDataset::consecutive(1).unwrap();
        for i in 0u32..100 {
            let ks = rc4::keystream(&i.to_le_bytes(), 2).unwrap();
            ds.record_keystream(&ks);
        }
        let sum: f64 = ds.joint_distribution(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relative_bias_zero_for_independent_values() {
        // Construct counts where the pair occurs exactly as the margins predict.
        let mut ds = PairDataset::consecutive(1).unwrap();
        // Record keystreams so that Z1 in {0,1}, Z2 in {0,1}, independently.
        for x in 0..2u8 {
            for y in 0..2u8 {
                for _ in 0..25 {
                    ds.record_keystream(&[x, y]);
                }
            }
        }
        let q = ds.relative_bias(0, 0, 0).unwrap();
        assert!(q.abs() < 1e-12);
    }

    #[test]
    fn relative_bias_detects_dependence() {
        let mut ds = PairDataset::consecutive(1).unwrap();
        // Z1 == Z2 always: strong positive dependence on the diagonal.
        for v in 0..=255u8 {
            ds.record_keystream(&[v, v]);
        }
        let q = ds.relative_bias(0, 7, 7).unwrap();
        assert!(q > 100.0, "diagonal relative bias should be large, got {q}");
        assert!(ds.relative_bias(0, 7, 8).is_none() || ds.joint_probability(0, 7, 8) == 0.0);
    }

    #[test]
    fn merge_and_json_roundtrip() {
        let mut a = PairDataset::consecutive(2).unwrap();
        let mut b = a.clone_empty();
        a.record_keystream(&[1, 2, 3]);
        b.record_keystream(&[1, 2, 4]);
        a.merge(b).unwrap();
        assert_eq!(a.keystreams(), 2);
        assert_eq!(a.count(0, 1, 2), 2);

        let json = a.to_json().unwrap();
        let back = PairDataset::from_json(&json).unwrap();
        assert_eq!(back.count(0, 1, 2), 2);

        let other = PairDataset::consecutive(3).unwrap();
        assert!(a.merge(other).is_err());
    }
}
