//! Per-TSC keystream statistics for WPA-TKIP keys.
//!
//! TKIP derives a fresh 16-byte RC4 key per packet, but its first three bytes
//! are a public function of the TKIP sequence counter (TSC):
//!
//! ```text
//! K0 = TSC1          K1 = (TSC1 | 0x20) & 0x7f          K2 = TSC0
//! ```
//!
//! Because the attacker knows the TSC of every captured packet, plaintext
//! likelihoods can be computed against keystream distributions *conditioned on
//! the TSC*, which are much more sharply biased than the unconditioned ones
//! (Paterson et al.; Section 5.1 of the paper). This module generates those
//! conditioned distributions.
//!
//! Paper scale conditions on the full `(TSC0, TSC1)` pair (65536 classes,
//! `2^32` keys per class, 10 CPU-years); the reproduction defaults to
//! conditioning on `TSC1` only (256 classes), which preserves the structure of
//! the attack at laptop scale. Both modes use the same code path.

use serde::{Deserialize, Serialize};

use crate::{
    dataset::{DatasetError, GenerationConfig},
    keygen::KeyGenerator,
    storable::StorableDataset,
    NUM_VALUES,
};

/// How captured packets / generated keys are grouped into TSC classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TscConditioning {
    /// Condition on `TSC1` only: 256 classes. Laptop-scale default.
    Tsc1,
    /// Condition on the `(TSC0, TSC1)` pair: 65536 classes. Paper scale.
    Tsc0Tsc1,
}

impl TscConditioning {
    /// Number of classes induced by this conditioning.
    pub fn classes(self) -> usize {
        match self {
            TscConditioning::Tsc1 => 256,
            TscConditioning::Tsc0Tsc1 => 65536,
        }
    }

    /// Maps a `(TSC0, TSC1)` pair to its class index.
    pub fn class_of(self, tsc0: u8, tsc1: u8) -> usize {
        match self {
            TscConditioning::Tsc1 => tsc1 as usize,
            TscConditioning::Tsc0Tsc1 => ((tsc1 as usize) << 8) | tsc0 as usize,
        }
    }
}

/// Builds the first three bytes of a TKIP per-packet RC4 key from the two
/// least-significant TSC bytes (IEEE 802.11 §11.4.2.1.1).
pub fn tkip_key_prefix(tsc0: u8, tsc1: u8) -> [u8; 3] {
    [tsc1, (tsc1 | 0x20) & 0x7f, tsc0]
}

/// Per-TSC-class single-byte keystream statistics.
///
/// `counts[class][pos][value]` (flattened) counts how often keystream byte
/// `Z_{pos+1}` equalled `value` for keys whose TSC fell in `class`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerTscDataset {
    conditioning: TscConditioning,
    positions: usize,
    keystreams: u64,
    /// Keystreams recorded per class.
    class_keystreams: Vec<u64>,
    counts: Vec<u64>,
}

impl PerTscDataset {
    /// Creates an empty per-TSC dataset covering positions `1..=positions`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `positions == 0`, or if the
    /// requested shape would exceed 2^31 counters (guarding against accidental
    /// paper-scale allocations in tests).
    pub fn new(conditioning: TscConditioning, positions: usize) -> Result<Self, DatasetError> {
        if positions == 0 {
            return Err(DatasetError::InvalidConfig("positions must be > 0".into()));
        }
        let cells = conditioning.classes() * positions * NUM_VALUES;
        if cells > (1usize << 31) {
            return Err(DatasetError::InvalidConfig(format!(
                "per-TSC dataset with {cells} cells is too large; reduce positions or conditioning"
            )));
        }
        Ok(Self {
            conditioning,
            positions,
            keystreams: 0,
            class_keystreams: vec![0u64; conditioning.classes()],
            counts: vec![0u64; cells],
        })
    }

    /// The conditioning mode of this dataset.
    pub fn conditioning(&self) -> TscConditioning {
        self.conditioning
    }

    /// Number of covered positions.
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Records one keystream generated under the given TSC bytes.
    pub fn record(&mut self, tsc0: u8, tsc1: u8, keystream: &[u8]) {
        debug_assert!(keystream.len() >= self.positions);
        let class = self.conditioning.class_of(tsc0, tsc1);
        let base = class * self.positions * NUM_VALUES;
        for (idx, &z) in keystream.iter().take(self.positions).enumerate() {
            self.counts[base + idx * NUM_VALUES + z as usize] += 1;
        }
        self.class_keystreams[class] += 1;
        self.keystreams += 1;
    }

    /// Raw count of `Z_r = value` within a TSC class.
    pub fn count(&self, class: usize, r: usize, value: u8) -> u64 {
        assert!(r >= 1 && r <= self.positions, "position {r} out of range");
        let base = class * self.positions * NUM_VALUES;
        self.counts[base + (r - 1) * NUM_VALUES + value as usize]
    }

    /// Number of keystreams recorded in a TSC class.
    pub fn class_keystreams(&self, class: usize) -> u64 {
        self.class_keystreams[class]
    }

    /// Empirical keystream distribution of `Z_r` conditioned on the TSC class.
    ///
    /// Falls back to the uniform distribution when the class has no samples,
    /// so likelihood code never divides by zero on an unobserved class.
    pub fn distribution(&self, class: usize, r: usize) -> Vec<f64> {
        let n = self.class_keystreams[class];
        if n == 0 {
            return vec![1.0 / NUM_VALUES as f64; NUM_VALUES];
        }
        let base = class * self.positions * NUM_VALUES + (r - 1) * NUM_VALUES;
        self.counts[base..base + NUM_VALUES]
            .iter()
            .map(|&c| c as f64 / n as f64)
            .collect()
    }

    /// Generates a per-TSC dataset by running TKIP-structured keys through RC4.
    ///
    /// For each generated key the TSC is drawn uniformly, the first three key
    /// bytes are set to the public TKIP prefix and the remaining bytes are
    /// random (the output of the TKIP key-mixing function is modelled as
    /// uniform, as in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] on an invalid configuration.
    pub fn generate(
        conditioning: TscConditioning,
        positions: usize,
        config: &GenerationConfig,
    ) -> Result<Self, DatasetError> {
        Self::generate_with_cancel(conditioning, positions, config, None)
    }

    /// [`PerTscDataset::generate`] with a cooperative cancellation flag,
    /// polled every few hundred keys.
    ///
    /// Execution is single-threaded (use
    /// [`PerTscDataset::generate_into_with_exec`] for a thread budget), but
    /// the *key space* is still partitioned across `config.workers`
    /// deterministic streams exactly like the generic worker pool: logical
    /// worker `w` draws its keys (and TSC bytes) from
    /// `KeyGenerator::new(config.seed, w, ..)`. A one-worker configuration —
    /// the default everywhere — reproduces the historical single-stream
    /// behaviour bit for bit, while multi-worker configurations define the
    /// per-worker shards the on-disk store (`rc4-store`) generates and merges.
    ///
    /// # Errors
    ///
    /// Everything [`PerTscDataset::generate`] returns, plus
    /// [`DatasetError::Cancelled`] when the flag was observed set.
    pub fn generate_with_cancel(
        conditioning: TscConditioning,
        positions: usize,
        config: &GenerationConfig,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> Result<Self, DatasetError> {
        let mut ds = Self::new(conditioning, positions)?;
        ds.generate_into(config, cancel)?;
        Ok(ds)
    }

    /// Generates into an *existing empty* dataset — the allocation-free body
    /// of [`PerTscDataset::generate_with_cancel`], used directly by callers
    /// (like the experiment dataset cache) that already hold the empty
    /// dataset, so no second table set is ever allocated.
    ///
    /// # Errors
    ///
    /// Everything [`PerTscDataset::generate_with_cancel`] returns, plus
    /// [`DatasetError::InvalidConfig`] when `self` is not empty.
    pub fn generate_into(
        &mut self,
        config: &GenerationConfig,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> Result<(), DatasetError> {
        self.generate_into_with_exec(config, &rc4_exec::Executor::serial().with_cancel(cancel))
    }

    /// [`PerTscDataset::generate_into`] on an explicit [`rc4_exec::Executor`]:
    /// the thread budget comes from the executor while the key space stays
    /// partitioned across `config.workers` logical streams, so the resulting
    /// cells are identical for every thread budget (see
    /// [`crate::storable::generate_storable_with_exec`], which this wraps —
    /// including its fallback to sequential recording when the per-class
    /// tables are too large to clone per thread).
    ///
    /// # Errors
    ///
    /// Everything [`PerTscDataset::generate_into`] returns.
    pub fn generate_into_with_exec(
        &mut self,
        config: &GenerationConfig,
        exec: &rc4_exec::Executor<'_>,
    ) -> Result<(), DatasetError> {
        if self.keystreams != 0 {
            return Err(DatasetError::InvalidConfig(
                "generate_into needs an empty dataset".into(),
            ));
        }
        crate::storable::generate_storable_with_exec(self, config, exec)
    }

    /// Merges another per-TSC dataset of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ShapeMismatch`] when shapes differ.
    pub fn merge(&mut self, other: Self) -> Result<(), DatasetError> {
        if other.conditioning != self.conditioning || other.positions != self.positions {
            return Err(DatasetError::ShapeMismatch(
                "per-TSC datasets have different conditioning or positions".into(),
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
        for (a, b) in self.class_keystreams.iter_mut().zip(other.class_keystreams) {
            *a += b;
        }
        self.keystreams += other.keystreams;
        Ok(())
    }

    /// Total keystreams recorded across all classes.
    pub fn keystreams(&self) -> u64 {
        self.keystreams
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Serialization`] if encoding fails.
    pub fn to_json(&self) -> Result<String, DatasetError> {
        serde_json::to_string(self).map_err(|e| DatasetError::Serialization(e.to_string()))
    }

    /// Restores from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Serialization`] if decoding fails.
    pub fn from_json(json: &str) -> Result<Self, DatasetError> {
        serde_json::from_str(json).map_err(|e| DatasetError::Serialization(e.to_string()))
    }
}

impl StorableDataset for PerTscDataset {
    fn kind() -> &'static str {
        "per-tsc"
    }

    /// Shape is `[conditioning, positions]` with `conditioning` encoded as
    /// `0 = Tsc1`, `1 = Tsc0Tsc1`.
    fn shape_params(&self) -> Vec<u64> {
        let cond = match self.conditioning {
            TscConditioning::Tsc1 => 0,
            TscConditioning::Tsc0Tsc1 => 1,
        };
        vec![cond, self.positions as u64]
    }

    fn empty_with_shape(params: &[u64]) -> Result<Self, DatasetError> {
        let [cond, positions] = params else {
            return Err(DatasetError::ShapeMismatch(format!(
                "per-TSC shape needs 2 parameters, got {}",
                params.len()
            )));
        };
        let conditioning = match cond {
            0 => TscConditioning::Tsc1,
            1 => TscConditioning::Tsc0Tsc1,
            other => {
                return Err(DatasetError::ShapeMismatch(format!(
                    "unknown TSC conditioning code {other} (expected 0 or 1)"
                )))
            }
        };
        Self::new(conditioning, *positions as usize)
    }

    fn cell_count_for_shape(params: &[u64]) -> Result<u64, DatasetError> {
        let [cond, positions] = params else {
            return Err(DatasetError::ShapeMismatch(format!(
                "per-TSC shape needs 2 parameters, got {}",
                params.len()
            )));
        };
        let conditioning = match cond {
            0 => TscConditioning::Tsc1,
            1 => TscConditioning::Tsc0Tsc1,
            other => {
                return Err(DatasetError::ShapeMismatch(format!(
                    "unknown TSC conditioning code {other} (expected 0 or 1)"
                )))
            }
        };
        if *positions == 0 {
            return Err(DatasetError::InvalidConfig("positions must be > 0".into()));
        }
        let classes = conditioning.classes() as u64;
        let cells = positions
            .checked_mul(classes * NUM_VALUES as u64)
            .unwrap_or(u64::MAX);
        if cells > (1u64 << 31) {
            return Err(DatasetError::InvalidConfig(format!(
                "per-TSC dataset with {cells} cells is too large; reduce positions or conditioning"
            )));
        }
        // Per-class count tables + per-class keystream totals.
        Ok(cells + classes)
    }

    /// Cells are the per-class count tables followed by the per-class
    /// keystream totals.
    fn cell_slices(&self) -> Vec<&[u64]> {
        vec![&self.counts, &self.class_keystreams]
    }

    fn cell_slices_mut(&mut self) -> Vec<&mut [u64]> {
        let Self {
            counts,
            class_keystreams,
            ..
        } = self;
        vec![counts.as_mut_slice(), class_keystreams.as_mut_slice()]
    }

    fn recorded_keystreams(&self) -> u64 {
        self.keystreams
    }

    fn set_recorded_keystreams(&mut self, keystreams: u64) {
        self.keystreams = keystreams;
    }

    fn required_keystream_len(&self) -> usize {
        self.positions
    }

    /// One TKIP-structured key: uniform key material, a uniformly drawn TSC
    /// pair, the public 3-byte prefix. The TSC pair travels to
    /// [`StorableDataset::record_stream`] as the metadata word
    /// (`tsc0 | tsc1 << 8`). This is the shared key walk of
    /// [`PerTscDataset::generate_with_cancel`] and the store's
    /// shard-generation engine, so both observe identical key sequences.
    fn prepare_next(&self, gen: &mut KeyGenerator, key: &mut [u8]) -> u64 {
        gen.fill_key(key);
        let tsc0 = gen.next_below(256) as u8;
        let tsc1 = gen.next_below(256) as u8;
        key[..3].copy_from_slice(&tkip_key_prefix(tsc0, tsc1));
        u64::from(tsc0) | (u64::from(tsc1) << 8)
    }

    fn record_stream(&mut self, meta: u64, ks: &[u8]) {
        self.record(meta as u8, (meta >> 8) as u8, ks);
    }

    fn skip_next(&self, gen: &mut KeyGenerator, key: &mut [u8]) {
        gen.fill_key(key);
        let _ = gen.next_below(256);
        let _ = gen.next_below(256);
    }

    /// TKIP keys carry a 3-byte public prefix, so `record_next` needs
    /// `key_len >= 3`.
    fn validate_config(&self, config: &GenerationConfig) -> Result<(), DatasetError> {
        config.validate()?;
        if config.key_len < 3 {
            return Err(DatasetError::InvalidConfig(
                "TKIP keys must be at least 3 bytes".into(),
            ));
        }
        Ok(())
    }

    fn merge_same_shape(&mut self, other: Self) -> Result<(), DatasetError> {
        self.merge(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_set_cancel_flag_aborts_generation() {
        let cancel = std::sync::atomic::AtomicBool::new(true);
        let result = PerTscDataset::generate_with_cancel(
            TscConditioning::Tsc1,
            8,
            &GenerationConfig::with_keys(1_000_000),
            Some(&cancel),
        );
        assert!(matches!(result, Err(DatasetError::Cancelled)));
    }

    #[test]
    fn key_prefix_matches_spec() {
        assert_eq!(tkip_key_prefix(0x34, 0x12), [0x12, 0x32, 0x34]);
        // K1 = (TSC1 | 0x20) & 0x7f clears the top bit and sets bit 5.
        assert_eq!(tkip_key_prefix(0x00, 0xFF), [0xFF, 0x7F, 0x00]);
        assert_eq!(tkip_key_prefix(0xAB, 0x80), [0x80, 0x20, 0xAB]);
    }

    #[test]
    fn conditioning_classes() {
        assert_eq!(TscConditioning::Tsc1.classes(), 256);
        assert_eq!(TscConditioning::Tsc0Tsc1.classes(), 65536);
        assert_eq!(TscConditioning::Tsc1.class_of(0x12, 0x34), 0x34);
        assert_eq!(TscConditioning::Tsc0Tsc1.class_of(0x12, 0x34), 0x3412);
    }

    #[test]
    fn record_and_distribution() {
        let mut ds = PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap();
        ds.record(0x00, 0x05, &[1, 2, 3, 4]);
        ds.record(0x01, 0x05, &[1, 2, 3, 5]);
        ds.record(0x00, 0x06, &[9, 9, 9, 9]);
        assert_eq!(ds.count(0x05, 1, 1), 2);
        assert_eq!(ds.count(0x06, 1, 9), 1);
        assert_eq!(ds.class_keystreams(0x05), 2);
        let dist = ds.distribution(0x05, 4);
        assert!((dist[4] - 0.5).abs() < 1e-12);
        assert!((dist[5] - 0.5).abs() < 1e-12);
        // Unobserved class falls back to uniform.
        let uniform = ds.distribution(0x44, 1);
        assert!((uniform[17] - 1.0 / 256.0).abs() < 1e-15);
    }

    #[test]
    fn shape_guard() {
        assert!(PerTscDataset::new(TscConditioning::Tsc1, 0).is_err());
        // 65536 classes * 200000 positions would exceed the guard.
        assert!(PerTscDataset::new(TscConditioning::Tsc0Tsc1, 200_000).is_err());
    }

    #[test]
    fn generate_small_dataset_shows_tkip_structure() {
        // With the TKIP key prefix, keystream byte 1 is strongly biased per class;
        // just verify generation runs and records into multiple classes.
        let config = GenerationConfig::with_keys(2_000).seed(7);
        let ds = PerTscDataset::generate(TscConditioning::Tsc1, 8, &config).unwrap();
        assert_eq!(ds.keystreams(), 2_000);
        let populated = (0..256).filter(|&c| ds.class_keystreams(c) > 0).count();
        assert!(populated > 200, "only {populated} TSC classes populated");
    }

    #[test]
    fn merge_and_json() {
        let mut a = PerTscDataset::new(TscConditioning::Tsc1, 2).unwrap();
        let mut b = PerTscDataset::new(TscConditioning::Tsc1, 2).unwrap();
        a.record(0, 0, &[1, 1]);
        b.record(0, 0, &[1, 2]);
        a.merge(b).unwrap();
        assert_eq!(a.count(0, 1, 1), 2);
        assert_eq!(a.keystreams(), 2);

        let json = a.to_json().unwrap();
        let back = PerTscDataset::from_json(&json).unwrap();
        assert_eq!(back.count(0, 1, 1), 2);

        let mismatch = PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap();
        assert!(a.merge(mismatch).is_err());
    }
}
