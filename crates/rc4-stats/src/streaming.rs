//! In-place accumulating count tables for streaming ingestion.
//!
//! The fixed-grid experiments materialize one count table per ciphertext
//! budget and score it once. Streaming mode (ROADMAP item 4) instead ingests
//! ciphertext copies batch by batch and re-scores the *accumulated* table
//! after every batch. These accumulators are the ingestion side of that
//! loop: absorb a batch's cell counts (or, for ABSAB differentials, a
//! batch's real-valued vote weights) into a running table without
//! reallocating, and keep the running totals the likelihood engines need.
//!
//! Log-likelihoods are linear in counts, so scoring the accumulated table is
//! statistically identical to scoring one table drawn at the accumulated
//! size — which is what makes per-batch re-scoring both cheap and faithful.

use crate::dataset::DatasetError;

/// A count table that accumulates integer batch counts in place.
///
/// # Examples
///
/// ```
/// use rc4_stats::streaming::StreamingCounts;
///
/// let mut acc = StreamingCounts::new(4).unwrap();
/// acc.absorb(&[1, 0, 2, 0]).unwrap();
/// acc.absorb(&[0, 3, 1, 0]).unwrap();
/// assert_eq!(acc.counts(), &[1, 3, 3, 0]);
/// assert_eq!(acc.total(), 7);
/// assert_eq!(acc.batches(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingCounts {
    cells: Vec<u64>,
    total: u64,
    batches: u64,
}

impl StreamingCounts {
    /// Creates a zeroed accumulator with `cells` cells.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when `cells` is zero.
    pub fn new(cells: usize) -> Result<Self, DatasetError> {
        if cells == 0 {
            return Err(DatasetError::InvalidConfig(
                "a streaming count table needs at least one cell".into(),
            ));
        }
        Ok(Self {
            cells: vec![0; cells],
            total: 0,
            batches: 0,
        })
    }

    /// Adds one batch of per-cell counts to the table in place.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when the batch length does not
    /// match the table; the table is left untouched in that case.
    pub fn absorb(&mut self, batch: &[u64]) -> Result<(), DatasetError> {
        if batch.len() != self.cells.len() {
            return Err(DatasetError::InvalidConfig(format!(
                "batch has {} cells, the table has {}",
                batch.len(),
                self.cells.len()
            )));
        }
        for (cell, &add) in self.cells.iter_mut().zip(batch) {
            *cell += add;
            self.total += add;
        }
        self.batches += 1;
        Ok(())
    }

    /// The accumulated per-cell counts.
    pub fn counts(&self) -> &[u64] {
        &self.cells
    }

    /// Sum of every absorbed count (the `|C|` constant of the likelihoods).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of batches absorbed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Number of cells in the table.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the table has zero cells (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A real-valued vote table that accumulates batch weights in place —
/// the ABSAB differential statistics accumulate `weight · count` votes per
/// candidate rather than raw counts.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingVotes {
    cells: Vec<f64>,
    batches: u64,
}

impl StreamingVotes {
    /// Creates a zeroed vote accumulator with `cells` cells.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when `cells` is zero.
    pub fn new(cells: usize) -> Result<Self, DatasetError> {
        if cells == 0 {
            return Err(DatasetError::InvalidConfig(
                "a streaming vote table needs at least one cell".into(),
            ));
        }
        Ok(Self {
            cells: vec![0.0; cells],
            batches: 0,
        })
    }

    /// Adds one batch of per-cell vote weights to the table in place.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when the batch length does not
    /// match the table; the table is left untouched in that case.
    pub fn absorb(&mut self, batch: &[f64]) -> Result<(), DatasetError> {
        if batch.len() != self.cells.len() {
            return Err(DatasetError::InvalidConfig(format!(
                "batch has {} cells, the table has {}",
                batch.len(),
                self.cells.len()
            )));
        }
        for (cell, &add) in self.cells.iter_mut().zip(batch) {
            *cell += add;
        }
        self.batches += 1;
        Ok(())
    }

    /// The accumulated per-cell votes.
    pub fn votes(&self) -> &[f64] {
        &self.cells
    }

    /// Number of batches absorbed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Number of cells in the table.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the table has zero cells (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_in_place_and_track_totals() {
        let mut acc = StreamingCounts::new(3).unwrap();
        assert_eq!(acc.counts(), &[0, 0, 0]);
        assert_eq!(acc.total(), 0);
        acc.absorb(&[5, 0, 1]).unwrap();
        acc.absorb(&[2, 2, 2]).unwrap();
        acc.absorb(&[0, 0, 0]).unwrap();
        assert_eq!(acc.counts(), &[7, 2, 3]);
        assert_eq!(acc.total(), 12);
        assert_eq!(acc.batches(), 3);
        assert_eq!(acc.len(), 3);
        assert!(!acc.is_empty());
    }

    #[test]
    fn accumulated_counts_equal_elementwise_batch_sum() {
        let batches: Vec<Vec<u64>> = (0..10u64)
            .map(|b| (0..16u64).map(|c| (b * 17 + c * 3) % 7).collect())
            .collect();
        let mut acc = StreamingCounts::new(16).unwrap();
        for batch in &batches {
            acc.absorb(batch).unwrap();
        }
        for cell in 0..16 {
            let expect: u64 = batches.iter().map(|b| b[cell]).sum();
            assert_eq!(acc.counts()[cell], expect);
        }
        let grand: u64 = batches.iter().flatten().sum();
        assert_eq!(acc.total(), grand);
    }

    #[test]
    fn mismatched_batch_is_rejected_and_leaves_table_untouched() {
        let mut acc = StreamingCounts::new(4).unwrap();
        acc.absorb(&[1, 1, 1, 1]).unwrap();
        assert!(acc.absorb(&[1, 2]).is_err());
        assert_eq!(acc.counts(), &[1, 1, 1, 1]);
        assert_eq!(acc.total(), 4);
        assert_eq!(acc.batches(), 1);
    }

    #[test]
    fn zero_cell_tables_are_rejected() {
        assert!(StreamingCounts::new(0).is_err());
        assert!(StreamingVotes::new(0).is_err());
    }

    #[test]
    fn votes_accumulate_in_place() {
        let mut acc = StreamingVotes::new(2).unwrap();
        acc.absorb(&[0.5, -1.0]).unwrap();
        acc.absorb(&[0.25, 2.0]).unwrap();
        assert!((acc.votes()[0] - 0.75).abs() < 1e-12);
        assert!((acc.votes()[1] - 1.0).abs() < 1e-12);
        assert_eq!(acc.batches(), 2);
        assert!(acc.absorb(&[1.0]).is_err());
        assert_eq!(acc.batches(), 2);
    }
}
