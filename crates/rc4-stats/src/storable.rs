//! The [`StorableDataset`] trait: everything the on-disk dataset store
//! (`rc4-store`) needs from a counter dataset.
//!
//! The store persists a dataset as a *kind* tag, a flat `Vec<u64>` shape
//! descriptor, the recorded-keystream total, and an ordered sequence of `u64`
//! counter cells. Each dataset type maps its internal state onto that model:
//!
//! * [`crate::single::SingleByteDataset`] — kind `"single"`, shape
//!   `[positions]`, cells = the per-position count table.
//! * [`crate::pairs::PairDataset`] — kind `"pairs"`, shape
//!   `[a1, b1, a2, b2, ...]`, cells = the per-pair joint count tables.
//! * [`crate::longterm::LongTermDataset`] — kind `"longterm"`, shape
//!   `[drop, block_len]`, cells = digraph counts, aligned counts and the two
//!   derived totals.
//! * [`crate::tsc::PerTscDataset`] — kind `"per-tsc"`, shape
//!   `[conditioning, positions]`, cells = per-class counts plus the per-class
//!   keystream totals.
//!
//! The trait also owns the *key-space walk*: [`StorableDataset::record_next`]
//! consumes exactly one key's worth of RNG state from a [`KeyGenerator`] and
//! records the resulting keystream, and [`StorableDataset::skip_next`]
//! consumes the same RNG state without doing the RC4 work. Per-kind skip
//! matters because the kinds draw differently (per-TSC keys also draw two TSC
//! bytes per key); it is what lets a resumed generation fast-forward a worker
//! stream to the checkpointed position at a fraction of the generation cost.

use crate::{dataset::DatasetError, keygen::KeyGenerator};

/// A dataset that can be persisted by the `rc4-store` shard format and
/// (re)generated deterministically from per-worker key streams.
///
/// # Contract
///
/// * `empty_with_shape(shape_params())` must reconstruct an empty dataset of
///   identical shape, and `cell_slices()` must return the same slice lengths
///   in the same order for any two datasets of equal shape.
/// * `record_next` and `skip_next` must consume *exactly* the same amount of
///   RNG state from the generator, so that a skip-reconstructed stream
///   position is indistinguishable from a recorded one.
/// * All cell values must be additive: summing the cells of two datasets over
///   disjoint key sets must equal the cells of one dataset over the union.
///   This is what makes shard merging exact.
pub trait StorableDataset: Send + Sized {
    /// Stable kind tag written into shard headers (also the CLI name).
    fn kind() -> &'static str;

    /// Flat shape descriptor, sufficient for [`StorableDataset::empty_with_shape`].
    fn shape_params(&self) -> Vec<u64>;

    /// Reconstructs an empty dataset from a shape descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Corrupt`]-free validation errors
    /// ([`DatasetError::InvalidConfig`] or [`DatasetError::ShapeMismatch`])
    /// when the descriptor does not describe a valid shape.
    fn empty_with_shape(params: &[u64]) -> Result<Self, DatasetError>;

    /// The dataset's counter state as an ordered list of `u64` slices. The
    /// store writes them back-to-back; the total length is the shard's cell
    /// count.
    fn cell_slices(&self) -> Vec<&[u64]>;

    /// Mutable view of the same slices, in the same order, for loading.
    fn cell_slices_mut(&mut self) -> Vec<&mut [u64]>;

    /// Total number of keystreams recorded (one per generated key).
    fn recorded_keystreams(&self) -> u64;

    /// Sets the recorded-keystream total after the cells were loaded from a
    /// shard (cells carry every other piece of state).
    fn set_recorded_keystreams(&mut self, keystreams: u64);

    /// Keystream bytes needed per key; the store sizes its scratch buffer
    /// (`ks` in [`StorableDataset::record_next`]) to this.
    fn required_keystream_len(&self) -> usize;

    /// Generates one key from `gen`, runs RC4 and records the keystream.
    /// `key` has the configured key length, `ks` has
    /// [`StorableDataset::required_keystream_len`] bytes.
    fn record_next(&mut self, gen: &mut KeyGenerator, key: &mut [u8], ks: &mut [u8]);

    /// Consumes one key's worth of RNG state from `gen` without recording.
    fn skip_next(&self, gen: &mut KeyGenerator, key: &mut [u8]);

    /// Merges a dataset of identical shape into `self`, summing all cells and
    /// keystream totals.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ShapeMismatch`] when shapes differ.
    fn merge_same_shape(&mut self, other: Self) -> Result<(), DatasetError>;

    /// Total number of cells (provided; the sum of the slice lengths).
    fn cell_count(&self) -> usize {
        self.cell_slices().iter().map(|s| s.len()).sum()
    }

    /// Kind-specific generation-config validation, called by drivers before
    /// any key is generated. The default accepts everything
    /// [`crate::dataset::GenerationConfig::validate`] accepts; kinds with
    /// extra requirements (per-TSC needs room for the 3-byte TKIP prefix)
    /// override this so misconfigurations fail typed instead of panicking in
    /// the record loop.
    fn validate_config(
        &self,
        config: &crate::dataset::GenerationConfig,
    ) -> Result<(), DatasetError> {
        config.validate()
    }
}

/// Shared `record_next` body for datasets fed by the generic worker pool: one
/// uniformly random key, one keystream, one `record_keystream` call. This is
/// bit-for-bit the inner loop of `crate::worker::run_worker`, so store-driven
/// and in-memory generation observe identical key sequences.
pub(crate) fn record_next_generic<C: crate::dataset::KeystreamCollector>(
    collector: &mut C,
    gen: &mut KeyGenerator,
    key: &mut [u8],
    ks: &mut [u8],
) {
    gen.fill_key(key);
    let mut prga = rc4::Prga::new(key).expect("worker key length is valid");
    prga.fill(ks);
    collector.record_keystream(ks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        longterm::LongTermDataset,
        pairs::{PairDataset, PositionPair},
        single::SingleByteDataset,
        tsc::{PerTscDataset, TscConditioning},
    };

    /// Exercise the shape/cells/skip contract uniformly over every kind.
    fn roundtrip_shape<D: StorableDataset>(ds: &D) {
        let shape = ds.shape_params();
        let empty = D::empty_with_shape(&shape).expect("shape descriptor reconstructs");
        assert_eq!(empty.shape_params(), shape);
        assert_eq!(empty.cell_count(), ds.cell_count());
        let lens_a: Vec<usize> = ds.cell_slices().iter().map(|s| s.len()).collect();
        let lens_b: Vec<usize> = empty.cell_slices().iter().map(|s| s.len()).collect();
        assert_eq!(lens_a, lens_b);
        assert_eq!(empty.recorded_keystreams(), 0);
    }

    #[test]
    fn shape_roundtrip_for_every_kind() {
        roundtrip_shape(&SingleByteDataset::new(7));
        roundtrip_shape(
            &PairDataset::new(vec![
                PositionPair { a: 1, b: 3 },
                PositionPair { a: 2, b: 9 },
            ])
            .unwrap(),
        );
        roundtrip_shape(&LongTermDataset::new(3, 16).unwrap());
        roundtrip_shape(&PerTscDataset::new(TscConditioning::Tsc1, 5).unwrap());
    }

    #[test]
    fn invalid_shape_descriptors_are_rejected() {
        assert!(SingleByteDataset::empty_with_shape(&[]).is_err());
        assert!(SingleByteDataset::empty_with_shape(&[0]).is_err());
        assert!(PairDataset::empty_with_shape(&[1]).is_err());
        assert!(PairDataset::empty_with_shape(&[3, 3]).is_err());
        assert!(LongTermDataset::empty_with_shape(&[0, 1]).is_err());
        assert!(PerTscDataset::empty_with_shape(&[2, 8]).is_err());
        assert!(PerTscDataset::empty_with_shape(&[0, 0]).is_err());
    }

    /// `skip_next` must consume exactly the RNG state `record_next` does:
    /// skipping `k` keys and recording the rest equals recording everything
    /// and subtracting the first `k` (verified via a fresh recorder).
    fn skip_matches_record<D: StorableDataset>(mut full: D, mut tail: D, key_len: usize) {
        let mut gen_a = KeyGenerator::new(42, 0, key_len);
        let mut gen_b = KeyGenerator::new(42, 0, key_len);
        let mut key = vec![0u8; key_len];
        let mut ks = vec![0u8; full.required_keystream_len()];
        for _ in 0..10 {
            full.record_next(&mut gen_a, &mut key, &mut ks);
        }
        for _ in 0..4 {
            tail.skip_next(&mut gen_b, &mut key);
        }
        for _ in 0..6 {
            tail.record_next(&mut gen_b, &mut key, &mut ks);
        }
        // The tail dataset saw keys 4..10 of the same stream; its cells must
        // be the suffix contribution, i.e. merging the first four keys into a
        // fresh dataset reproduces `full`.
        let mut head = D::empty_with_shape(&full.shape_params()).unwrap();
        let mut gen_c = KeyGenerator::new(42, 0, key_len);
        for _ in 0..4 {
            head.record_next(&mut gen_c, &mut key, &mut ks);
        }
        head.merge_same_shape(tail).unwrap();
        assert_eq!(head.recorded_keystreams(), full.recorded_keystreams());
        let a: Vec<u64> = head.cell_slices().concat();
        let b: Vec<u64> = full.cell_slices().concat();
        assert_eq!(a, b);
    }

    #[test]
    fn skip_consumes_identical_rng_state_for_every_kind() {
        skip_matches_record(SingleByteDataset::new(4), SingleByteDataset::new(4), 16);
        skip_matches_record(
            PairDataset::consecutive(2).unwrap(),
            PairDataset::consecutive(2).unwrap(),
            16,
        );
        skip_matches_record(
            LongTermDataset::new(1, 8).unwrap(),
            LongTermDataset::new(1, 8).unwrap(),
            16,
        );
        skip_matches_record(
            PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap(),
            PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap(),
            16,
        );
    }
}
