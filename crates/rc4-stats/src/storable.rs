//! The [`StorableDataset`] trait: everything the on-disk dataset store
//! (`rc4-store`) needs from a counter dataset.
//!
//! The store persists a dataset as a *kind* tag, a flat `Vec<u64>` shape
//! descriptor, the recorded-keystream total, and an ordered sequence of `u64`
//! counter cells. Each dataset type maps its internal state onto that model:
//!
//! * [`crate::single::SingleByteDataset`] — kind `"single"`, shape
//!   `[positions]`, cells = the per-position count table.
//! * [`crate::pairs::PairDataset`] — kind `"pairs"`, shape
//!   `[a1, b1, a2, b2, ...]`, cells = the per-pair joint count tables.
//! * [`crate::longterm::LongTermDataset`] — kind `"longterm"`, shape
//!   `[drop, block_len]`, cells = digraph counts, aligned counts and the two
//!   derived totals.
//! * [`crate::tsc::PerTscDataset`] — kind `"per-tsc"`, shape
//!   `[conditioning, positions]`, cells = per-class counts plus the per-class
//!   keystream totals.
//!
//! The trait also owns the *key-space walk*, split into two halves so drivers
//! can batch the RC4 work between them: [`StorableDataset::prepare_next`]
//! consumes exactly one key's worth of RNG state from a [`KeyGenerator`]
//! (returning any per-key metadata, e.g. the drawn TSC bytes), and
//! [`StorableDataset::record_stream`] counts the finished keystream.
//! [`StorableDataset::skip_next`] consumes the same RNG state as
//! `prepare_next` without doing the RC4 work. Per-kind skip matters because
//! the kinds draw differently (per-TSC keys also draw two TSC bytes per key);
//! it is what lets a resumed generation fast-forward a worker stream to the
//! checkpointed position at a fraction of the generation cost.
//!
//! [`record_keys_batched`] is the shared hot loop: it walks a worker's key
//! stream in engine-sized batches through [`rc4_accel::AutoBatch`], which
//! steps 8–16 independent RC4 states per loop iteration (AVX-512
//! gather/scatter where available). Because per-key streams are independent
//! and all counter cells are additive, the resulting dataset is cell-for-cell
//! identical to the scalar one-key-at-a-time walk — a property pinned by this
//! module's tests and by `tests/proptest_datasets.rs`.

use std::sync::atomic::{AtomicBool, Ordering};

use rc4_accel::{AutoBatch, KeystreamBatch};

use crate::{dataset::DatasetError, keygen::KeyGenerator, worker::CANCEL_POLL_INTERVAL};

/// A dataset that can be persisted by the `rc4-store` shard format and
/// (re)generated deterministically from per-worker key streams.
///
/// # Contract
///
/// * `empty_with_shape(shape_params())` must reconstruct an empty dataset of
///   identical shape, and `cell_slices()` must return the same slice lengths
///   in the same order for any two datasets of equal shape.
/// * `prepare_next` and `skip_next` must consume *exactly* the same amount
///   of RNG state from the generator, so that a skip-reconstructed stream
///   position is indistinguishable from a recorded one.
/// * `record_stream(meta, ks)` must depend only on `meta` and `ks` — never on
///   generator state — so the RC4 work between the two halves can be batched.
/// * All cell values must be additive: summing the cells of two datasets over
///   disjoint key sets must equal the cells of one dataset over the union.
///   This is what makes shard merging exact and batch-order irrelevant.
pub trait StorableDataset: Send + Sized {
    /// Stable kind tag written into shard headers (also the CLI name).
    fn kind() -> &'static str;

    /// Flat shape descriptor, sufficient for [`StorableDataset::empty_with_shape`].
    fn shape_params(&self) -> Vec<u64>;

    /// Reconstructs an empty dataset from a shape descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Corrupt`]-free validation errors
    /// ([`DatasetError::InvalidConfig`] or [`DatasetError::ShapeMismatch`])
    /// when the descriptor does not describe a valid shape.
    fn empty_with_shape(params: &[u64]) -> Result<Self, DatasetError>;

    /// The dataset's counter state as an ordered list of `u64` slices. The
    /// store writes them back-to-back; the total length is the shard's cell
    /// count.
    fn cell_slices(&self) -> Vec<&[u64]>;

    /// Mutable view of the same slices, in the same order, for loading.
    fn cell_slices_mut(&mut self) -> Vec<&mut [u64]>;

    /// Total number of keystreams recorded (one per generated key).
    fn recorded_keystreams(&self) -> u64;

    /// Sets the recorded-keystream total after the cells were loaded from a
    /// shard (cells carry every other piece of state).
    fn set_recorded_keystreams(&mut self, keystreams: u64);

    /// Keystream bytes needed per key; the store sizes its scratch buffer
    /// (`ks` in [`StorableDataset::record_next`]) to this.
    fn required_keystream_len(&self) -> usize;

    /// Draws the next key from `gen` into `key` and returns the per-key
    /// metadata [`StorableDataset::record_stream`] needs (0 where none).
    ///
    /// The default draws one uniformly random key. Kinds with structured
    /// keys (per-TSC draws TSC bytes and stamps the public TKIP prefix)
    /// override it; overrides must keep [`StorableDataset::skip_next`]
    /// consuming identical RNG state.
    fn prepare_next(&self, gen: &mut KeyGenerator, key: &mut [u8]) -> u64 {
        gen.fill_key(key);
        0
    }

    /// Counts one keystream generated for a key drawn by
    /// [`StorableDataset::prepare_next`]; `meta` is that call's return value.
    fn record_stream(&mut self, meta: u64, ks: &[u8]);

    /// Generates one key from `gen`, runs scalar RC4 and records the
    /// keystream. `key` has the configured key length, `ks` has
    /// [`StorableDataset::required_keystream_len`] bytes.
    ///
    /// This one-key-at-a-time walk is the reference path; bulk drivers use
    /// [`record_keys_batched`] instead, which produces identical cells.
    fn record_next(&mut self, gen: &mut KeyGenerator, key: &mut [u8], ks: &mut [u8]) {
        let meta = self.prepare_next(gen, key);
        let mut prga = rc4::Prga::new(key).expect("worker key length is valid");
        prga.fill(ks);
        self.record_stream(meta, ks);
    }

    /// Consumes one key's worth of RNG state from `gen` without recording.
    /// Must mirror [`StorableDataset::prepare_next`] draw for draw.
    fn skip_next(&self, gen: &mut KeyGenerator, key: &mut [u8]) {
        gen.fill_key(key);
    }

    /// Merges a dataset of identical shape into `self`, summing all cells and
    /// keystream totals.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ShapeMismatch`] when shapes differ.
    fn merge_same_shape(&mut self, other: Self) -> Result<(), DatasetError>;

    /// Total number of cells (provided; the sum of the slice lengths).
    fn cell_count(&self) -> usize {
        self.cell_slices().iter().map(|s| s.len()).sum()
    }

    /// Number of cells a dataset of shape `params` holds, *without*
    /// materialising one.
    ///
    /// The out-of-core shard merge validates inputs and sizes its streaming
    /// windows against this before allocating anything; the default
    /// constructs an empty dataset and counts its cells, which is correct
    /// but allocates the full table — every kind in this crate overrides it
    /// with the closed-form count so multi-GiB shapes (e.g. TSC-conditioned
    /// tables) stay allocation-free.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as
    /// [`StorableDataset::empty_with_shape`] for descriptors that do not
    /// describe a valid shape.
    fn cell_count_for_shape(params: &[u64]) -> Result<u64, DatasetError> {
        Ok(Self::empty_with_shape(params)?.cell_count() as u64)
    }

    /// Kind-specific generation-config validation, called by drivers before
    /// any key is generated. The default accepts everything
    /// [`crate::dataset::GenerationConfig::validate`] accepts; kinds with
    /// extra requirements (per-TSC needs room for the 3-byte TKIP prefix)
    /// override this so misconfigurations fail typed instead of panicking in
    /// the record loop.
    fn validate_config(
        &self,
        config: &crate::dataset::GenerationConfig,
    ) -> Result<(), DatasetError> {
        config.validate()
    }
}

/// The two hooks the shared batched key walk needs from a consumer: draw one
/// key (+ metadata) and count one finished keystream. Implemented by thin
/// adapters over [`StorableDataset`] (here) and
/// [`crate::dataset::KeystreamCollector`] (the worker pool), so both paths
/// run the SAME batch-sizing and cancellation-poll loop — the invariants the
/// determinism guarantees rest on live in exactly one place.
pub(crate) trait BatchSink {
    /// Keystream bytes needed per key.
    fn needed(&self) -> usize;
    /// Draws the next key into `key`, returning per-key metadata.
    fn prepare(&mut self, gen: &mut KeyGenerator, key: &mut [u8]) -> u64;
    /// Counts one keystream generated for a prepared key.
    fn record(&mut self, meta: u64, ks: &[u8]);
}

/// Walks `count` keys of `gen`'s stream into `sink` through the batched
/// multi-key RC4 engine ([`AutoBatch`]), polling `cancel` every
/// [`CANCEL_POLL_INTERVAL`] keys.
///
/// Keys are drawn (and counted) in exactly the order a scalar
/// one-key-at-a-time loop draws them; the engine only batches the
/// independent KSA/PRGA work between draw and count. Returns the number of
/// keys recorded — equal to `count` unless the cancellation flag was
/// observed, in which case the sink holds exactly the first `done` keys'
/// contributions and the generator sits after the `done`-th draw.
pub(crate) fn walk_keys_batched<S: BatchSink>(
    sink: &mut S,
    gen: &mut KeyGenerator,
    key_len: usize,
    count: u64,
    cancel: Option<&AtomicBool>,
) -> u64 {
    let mut engine = AutoBatch::new();
    let lanes = engine.lanes();
    let needed = sink.needed();
    let mut keys = vec![0u8; lanes * key_len];
    let mut metas = vec![0u64; lanes];
    let mut out = vec![0u8; lanes * needed];
    let mut done = 0u64;
    let mut until_poll = 0u64;
    while done < count {
        if until_poll == 0 {
            if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                return done;
            }
            until_poll = CANCEL_POLL_INTERVAL;
        }
        let n = (count - done).min(until_poll).min(lanes as u64) as usize;
        for (lane, key) in keys[..n * key_len].chunks_exact_mut(key_len).enumerate() {
            metas[lane] = sink.prepare(gen, key);
        }
        engine
            .schedule(&keys[..n * key_len], key_len)
            .expect("config-validated key length");
        engine.fill(&mut out[..n * needed], needed);
        for lane in 0..n {
            sink.record(metas[lane], &out[lane * needed..(lane + 1) * needed]);
        }
        done += n as u64;
        until_poll -= n as u64;
    }
    count
}

/// Adapter running a [`StorableDataset`]'s key walk through
/// [`walk_keys_batched`].
struct DatasetSink<'a, D: StorableDataset>(&'a mut D);

impl<D: StorableDataset> BatchSink for DatasetSink<'_, D> {
    fn needed(&self) -> usize {
        self.0.required_keystream_len()
    }

    fn prepare(&mut self, gen: &mut KeyGenerator, key: &mut [u8]) -> u64 {
        self.0.prepare_next(gen, key)
    }

    fn record(&mut self, meta: u64, ks: &[u8]) {
        self.0.record_stream(meta, ks);
    }
}

/// Walks `count` keys of `gen`'s stream into `dataset` through the batched
/// multi-key RC4 engine, polling `cancel` every [`CANCEL_POLL_INTERVAL`]
/// keys.
///
/// The resulting cells are identical to the scalar
/// [`StorableDataset::record_next`] walk over the same stream. Returns the
/// number of keys recorded — equal to `count` unless the cancellation flag
/// was observed, in which case the dataset holds exactly the first `done`
/// keys' contributions and the generator sits after the `done`-th draw.
pub fn record_keys_batched<D: StorableDataset>(
    dataset: &mut D,
    gen: &mut KeyGenerator,
    key_len: usize,
    count: u64,
    cancel: Option<&AtomicBool>,
) -> u64 {
    walk_keys_batched(&mut DatasetSink(dataset), gen, key_len, count, cancel)
}

/// Per-thread dataset clones above this cell count are considered ruinous
/// (a per-TSC `Tsc0Tsc1` table is gigabytes); such datasets are generated
/// sequentially even when the executor has threads to spare. Exported so
/// `rc4-store`'s round loop applies the SAME guard to the same kinds.
pub const PARALLEL_CLONE_MAX_CELLS: usize = 1 << 24;

/// Generates `config`'s full key space into `dataset` on an explicit
/// [`rc4_exec::Executor`], decoupling the thread budget from the logical
/// stream count — the [`StorableDataset`] twin of
/// [`crate::worker::generate_with_exec`], needed because storable kinds may
/// draw structured keys ([`StorableDataset::prepare_next`]) and therefore
/// skip with [`StorableDataset::skip_next`].
///
/// The resulting cells depend only on `config` (never on the thread budget):
/// a one-thread executor records every stream in order straight into
/// `dataset`; a larger budget splits streams into contiguous segments, each
/// fast-forwarded via `skip_next` and recorded into a private same-shape
/// clone, merged in deterministic segment order. Datasets whose tables are
/// too large to clone per thread fall back to the sequential path.
///
/// # Errors
///
/// * [`DatasetError::InvalidConfig`] — invalid configuration for this kind.
/// * [`DatasetError::Cancelled`] — the executor's flag was observed set; the
///   dataset must be discarded (the one-thread path leaves it partially
///   filled, the parallel path leaves it untouched).
pub fn generate_storable_with_exec<D: StorableDataset>(
    dataset: &mut D,
    config: &crate::dataset::GenerationConfig,
    exec: &rc4_exec::Executor<'_>,
) -> Result<(), DatasetError> {
    dataset.validate_config(config)?;
    let cancel = exec.cancel_flag();
    if exec.is_cancelled() {
        return Err(DatasetError::Cancelled);
    }

    if exec.workers() == 1 || dataset.cell_count() > PARALLEL_CLONE_MAX_CELLS {
        for w in 0..config.workers as u64 {
            let keys = config.keys_for_worker(w);
            let mut gen = KeyGenerator::new(config.seed, w, config.key_len);
            let done = record_keys_batched(dataset, &mut gen, config.key_len, keys, cancel);
            if done < keys || exec.is_cancelled() {
                return Err(DatasetError::Cancelled);
            }
        }
        return Ok(());
    }

    let shape = dataset.shape_params();
    let plan = crate::worker::segment_plan(config, exec.workers());
    let partials: Vec<D> = exec
        .map(plan, |_, segment| {
            let mut partial = D::empty_with_shape(&shape)?;
            let mut gen = KeyGenerator::new(config.seed, segment.worker, config.key_len);
            let mut scratch = vec![0u8; config.key_len];
            for _ in 0..segment.skip {
                partial.skip_next(&mut gen, &mut scratch);
            }
            let done =
                record_keys_batched(&mut partial, &mut gen, config.key_len, segment.keys, cancel);
            if done < segment.keys {
                return Err(DatasetError::Cancelled);
            }
            Ok(partial)
        })
        .map_err(DatasetError::from)?;
    if exec.is_cancelled() {
        return Err(DatasetError::Cancelled);
    }
    for partial in partials {
        dataset.merge_same_shape(partial)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        longterm::LongTermDataset,
        pairs::{PairDataset, PositionPair},
        single::SingleByteDataset,
        tsc::{PerTscDataset, TscConditioning},
    };

    /// Exercise the shape/cells/skip contract uniformly over every kind.
    fn roundtrip_shape<D: StorableDataset>(ds: &D) {
        let shape = ds.shape_params();
        let empty = D::empty_with_shape(&shape).expect("shape descriptor reconstructs");
        assert_eq!(empty.shape_params(), shape);
        assert_eq!(empty.cell_count(), ds.cell_count());
        let lens_a: Vec<usize> = ds.cell_slices().iter().map(|s| s.len()).collect();
        let lens_b: Vec<usize> = empty.cell_slices().iter().map(|s| s.len()).collect();
        assert_eq!(lens_a, lens_b);
        assert_eq!(empty.recorded_keystreams(), 0);
    }

    #[test]
    fn shape_roundtrip_for_every_kind() {
        roundtrip_shape(&SingleByteDataset::new(7));
        roundtrip_shape(
            &PairDataset::new(vec![
                PositionPair { a: 1, b: 3 },
                PositionPair { a: 2, b: 9 },
            ])
            .unwrap(),
        );
        roundtrip_shape(&LongTermDataset::new(3, 16).unwrap());
        roundtrip_shape(&PerTscDataset::new(TscConditioning::Tsc1, 5).unwrap());
    }

    #[test]
    fn invalid_shape_descriptors_are_rejected() {
        assert!(SingleByteDataset::empty_with_shape(&[]).is_err());
        assert!(SingleByteDataset::empty_with_shape(&[0]).is_err());
        assert!(PairDataset::empty_with_shape(&[1]).is_err());
        assert!(PairDataset::empty_with_shape(&[3, 3]).is_err());
        assert!(LongTermDataset::empty_with_shape(&[0, 1]).is_err());
        assert!(PerTscDataset::empty_with_shape(&[2, 8]).is_err());
        assert!(PerTscDataset::empty_with_shape(&[0, 0]).is_err());
    }

    /// `skip_next` must consume exactly the RNG state `record_next` does:
    /// skipping `k` keys and recording the rest equals recording everything
    /// and subtracting the first `k` (verified via a fresh recorder).
    fn skip_matches_record<D: StorableDataset>(mut full: D, mut tail: D, key_len: usize) {
        let mut gen_a = KeyGenerator::new(42, 0, key_len);
        let mut gen_b = KeyGenerator::new(42, 0, key_len);
        let mut key = vec![0u8; key_len];
        let mut ks = vec![0u8; full.required_keystream_len()];
        for _ in 0..10 {
            full.record_next(&mut gen_a, &mut key, &mut ks);
        }
        for _ in 0..4 {
            tail.skip_next(&mut gen_b, &mut key);
        }
        for _ in 0..6 {
            tail.record_next(&mut gen_b, &mut key, &mut ks);
        }
        // The tail dataset saw keys 4..10 of the same stream; its cells must
        // be the suffix contribution, i.e. merging the first four keys into a
        // fresh dataset reproduces `full`.
        let mut head = D::empty_with_shape(&full.shape_params()).unwrap();
        let mut gen_c = KeyGenerator::new(42, 0, key_len);
        for _ in 0..4 {
            head.record_next(&mut gen_c, &mut key, &mut ks);
        }
        head.merge_same_shape(tail).unwrap();
        assert_eq!(head.recorded_keystreams(), full.recorded_keystreams());
        let a: Vec<u64> = head.cell_slices().concat();
        let b: Vec<u64> = full.cell_slices().concat();
        assert_eq!(a, b);
    }

    /// The batched walk must be cell-for-cell identical to the scalar
    /// `record_next` walk over the same generator stream — the property the
    /// dataset byte-identity guarantee rests on.
    fn batched_matches_scalar<D: StorableDataset>(mut batched: D, mut scalar: D, count: u64) {
        let key_len = 16usize;
        let mut gen_a = KeyGenerator::new(7, 3, key_len);
        let done = record_keys_batched(&mut batched, &mut gen_a, key_len, count, None);
        assert_eq!(done, count);

        let mut gen_b = KeyGenerator::new(7, 3, key_len);
        let mut key = vec![0u8; key_len];
        let mut ks = vec![0u8; scalar.required_keystream_len()];
        for _ in 0..count {
            scalar.record_next(&mut gen_b, &mut key, &mut ks);
        }

        assert_eq!(batched.recorded_keystreams(), scalar.recorded_keystreams());
        let a: Vec<u64> = batched.cell_slices().concat();
        let b: Vec<u64> = scalar.cell_slices().concat();
        assert_eq!(a, b);
    }

    #[test]
    fn batched_walk_matches_scalar_walk_for_every_kind() {
        // 530 keys: a non-multiple of every engine lane count, crossing one
        // cancellation-poll boundary (512).
        batched_matches_scalar(SingleByteDataset::new(6), SingleByteDataset::new(6), 530);
        batched_matches_scalar(
            PairDataset::consecutive(4).unwrap(),
            PairDataset::consecutive(4).unwrap(),
            530,
        );
        batched_matches_scalar(
            LongTermDataset::new(5, 8).unwrap(),
            LongTermDataset::new(5, 8).unwrap(),
            130,
        );
        batched_matches_scalar(
            PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap(),
            PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap(),
            530,
        );
    }

    #[test]
    fn batched_walk_leaves_generator_at_scalar_position() {
        // After recording k keys, the generator must sit exactly where the
        // scalar walk leaves it, so interleaving batched rounds with skips
        // (the store's resume path) stays deterministic.
        let mut ds = PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap();
        let mut gen_a = KeyGenerator::new(11, 0, 16);
        record_keys_batched(&mut ds, &mut gen_a, 16, 37, None);

        let scalar = PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap();
        let mut gen_b = KeyGenerator::new(11, 0, 16);
        let mut key = [0u8; 16];
        for _ in 0..37 {
            scalar.skip_next(&mut gen_b, &mut key);
        }
        assert_eq!(gen_a.next_key(), gen_b.next_key());
    }

    #[test]
    fn batched_walk_observes_preset_cancel_flag() {
        let cancel = AtomicBool::new(true);
        let mut ds = SingleByteDataset::new(4);
        let mut gen = KeyGenerator::new(1, 0, 16);
        let done = record_keys_batched(&mut ds, &mut gen, 16, 1000, Some(&cancel));
        assert_eq!(done, 0);
        assert_eq!(ds.recorded_keystreams(), 0);
    }

    #[test]
    fn storable_exec_generation_is_thread_invariant() {
        // Structured-key kind (per-TSC draws TSC bytes per key): the thread
        // budget must not change a single cell, only who computes it.
        let config = crate::dataset::GenerationConfig::with_keys(700)
            .workers(2)
            .seed(31);
        let mut reference = PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap();
        generate_storable_with_exec(&mut reference, &config, &rc4_exec::Executor::serial())
            .unwrap();
        for threads in [2usize, 4, 5] {
            let mut ds = PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap();
            generate_storable_with_exec(&mut ds, &config, &rc4_exec::Executor::new(threads))
                .unwrap();
            assert_eq!(ds.recorded_keystreams(), reference.recorded_keystreams());
            assert_eq!(
                ds.cell_slices().concat(),
                reference.cell_slices().concat(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn skip_consumes_identical_rng_state_for_every_kind() {
        skip_matches_record(SingleByteDataset::new(4), SingleByteDataset::new(4), 16);
        skip_matches_record(
            PairDataset::consecutive(2).unwrap(),
            PairDataset::consecutive(2).unwrap(),
            16,
        );
        skip_matches_record(
            LongTermDataset::new(1, 8).unwrap(),
            LongTermDataset::new(1, 8).unwrap(),
            16,
        );
        skip_matches_record(
            PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap(),
            PerTscDataset::new(TscConditioning::Tsc1, 4).unwrap(),
            16,
        );
    }
}
