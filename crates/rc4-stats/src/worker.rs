//! The keystream-generation worker pool.
//!
//! Stands in for the paper's distributed setup (roughly 80 desktop machines
//! plus three servers driven by Python): each worker thread owns a private
//! collector and a deterministic key generator, generates its share of
//! keystreams, and the per-worker collectors are merged at the end. Because
//! workers never share mutable state during generation, the pool scales
//! linearly with cores and the result is identical to a single-threaded run
//! over the union of the per-worker key sequences.

use crossbeam::thread;

use crate::{
    dataset::{DatasetError, GenerationConfig, KeystreamCollector},
    keygen::KeyGenerator,
};

/// Generates `config.keys` keystreams and accumulates them into `collector`.
///
/// The keys are split evenly across `config.workers` threads; worker `w`
/// derives its keys from `(config.seed, w)`, so the generated set of keys —
/// and therefore the resulting statistics — depend only on the configuration,
/// not on scheduling.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] for invalid configurations and
/// propagates [`DatasetError::ShapeMismatch`] if merging fails (which would
/// indicate a bug in the collector's `clone_empty`).
///
/// # Examples
///
/// ```
/// use rc4_stats::{single::SingleByteDataset, worker::generate, GenerationConfig, KeystreamCollector};
///
/// let mut ds = SingleByteDataset::new(4);
/// generate(&mut ds, &GenerationConfig::with_keys(1_000).workers(2)).unwrap();
/// assert_eq!(ds.keystreams(), 1_000);
/// ```
pub fn generate<C>(collector: &mut C, config: &GenerationConfig) -> Result<(), DatasetError>
where
    C: KeystreamCollector,
{
    config.validate()?;
    let needed = collector.required_len();

    if config.workers == 1 {
        let mut gen = KeyGenerator::new(config.seed, 0, config.key_len);
        run_worker(collector, &mut gen, config.keys, needed);
        return Ok(());
    }

    // Split the work as evenly as possible; the first `remainder` workers get one extra key.
    let per_worker = config.keys / config.workers as u64;
    let remainder = config.keys % config.workers as u64;

    let partials: Vec<C> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let mut local = collector.clone_empty();
            let keys = per_worker + u64::from((w as u64) < remainder);
            let seed = config.seed;
            let key_len = config.key_len;
            handles.push(scope.spawn(move |_| {
                let mut gen = KeyGenerator::new(seed, w as u64, key_len);
                run_worker(&mut local, &mut gen, keys, needed);
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("statistics worker panicked"))
            .collect()
    })
    .expect("worker scope panicked");

    for partial in partials {
        collector.merge(partial)?;
    }
    Ok(())
}

/// Inner loop of one worker: generate `keys` keystreams of `needed` bytes.
fn run_worker<C: KeystreamCollector>(
    collector: &mut C,
    gen: &mut KeyGenerator,
    keys: u64,
    needed: usize,
) {
    let mut key = vec![0u8; gen.key_len()];
    let mut ks = vec![0u8; needed];
    for _ in 0..keys {
        gen.fill_key(&mut key);
        let mut prga = rc4::Prga::new(&key).expect("worker key length is valid");
        prga.fill(&mut ks);
        collector.record_keystream(&ks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pairs::PairDataset, single::SingleByteDataset};

    #[test]
    fn single_worker_generates_requested_keys() {
        let mut ds = SingleByteDataset::new(4);
        generate(&mut ds, &GenerationConfig::with_keys(500)).unwrap();
        assert_eq!(ds.keystreams(), 500);
        // Each position saw exactly 500 samples.
        assert_eq!(ds.counts_at(1).iter().sum::<u64>(), 500);
    }

    #[test]
    fn multi_worker_key_count_is_exact() {
        let mut ds = SingleByteDataset::new(2);
        generate(&mut ds, &GenerationConfig::with_keys(1_003).workers(4)).unwrap();
        assert_eq!(ds.keystreams(), 1_003);
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let config = GenerationConfig::with_keys(400).workers(3).seed(99);
        let mut a = SingleByteDataset::new(8);
        let mut b = SingleByteDataset::new(8);
        generate(&mut a, &config).unwrap();
        generate(&mut b, &config).unwrap();
        for r in 1..=8 {
            assert_eq!(a.counts_at(r), b.counts_at(r));
        }
    }

    #[test]
    fn worker_count_does_not_change_totals() {
        // Different worker counts generate different key sets, but the number of
        // samples and overall normalization must match.
        let mut one = PairDataset::consecutive(3).unwrap();
        let mut four = one.clone_empty();
        generate(&mut one, &GenerationConfig::with_keys(600).workers(1)).unwrap();
        generate(&mut four, &GenerationConfig::with_keys(600).workers(4)).unwrap();
        assert_eq!(one.keystreams(), four.keystreams());
        assert_eq!(
            one.joint_counts(0).iter().sum::<u64>(),
            four.joint_counts(0).iter().sum::<u64>()
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut ds = SingleByteDataset::new(2);
        assert!(generate(&mut ds, &GenerationConfig::with_keys(0)).is_err());
    }
}
